//! Serve-layer durability: the server's workload state — the folded
//! [`ServiceTotals`] aggregate — persisted through `itdb-store` on a
//! background writer, so a SIGKILL'd server resumes its counters on
//! restart instead of reporting a fresh process as a fresh history.
//!
//! The write path is entirely off the request threads: after each query a
//! worker hands the current totals to a [`BackgroundWriter`] (coalescing,
//! latest-wins), which encodes nothing on the hot path — encoding happens
//! here, but it is a few hundred bytes of counters, not a model image.
//! On bind, [`Durability::open`] walks the store's generations
//! newest-first and restores the newest totals snapshot that validates,
//! exactly like engine checkpoints recover past torn writes.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_core::{EvalStats, ServiceTotals};
use itdb_store::{
    BackgroundWriter, BgWriterStats, ByteReader, ByteWriter, CodecError, PreWriteHook, Section,
    SnapshotStore,
};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Section tag holding the encoded totals.
pub const SEC_TOTALS: u8 = 1;

/// Encodes the totals as store sections (format: version byte, then the
/// counters in declaration order; strata are a per-evaluation notion and
/// stay empty, matching [`ServiceTotals::stats`]'s contract).
pub fn encode_totals(t: &ServiceTotals) -> Vec<Section> {
    let mut w = ByteWriter::new();
    w.put_u8(1); // payload version
    w.put_u64(t.queries);
    w.put_u64(t.interrupted);
    w.put_u64(t.stats.tuples_derived);
    w.put_u64(t.stats.tuples_inserted);
    w.put_u64(t.stats.tuples_subsumed);
    let c = &t.stats.counters;
    w.put_u64(c.canonicalize_calls);
    w.put_u64(c.canonical_cache_hits);
    w.put_u64(c.canonical_cache_misses);
    w.put_u64(c.empty_cache_hits);
    w.put_u64(c.empty_cache_misses);
    w.put_u64(c.subsumption_checks);
    w.put_u64(c.index_candidates);
    w.put_u64(c.index_scanned_naive);
    w.put_u64(u64::try_from(t.stats.elapsed.as_micros()).unwrap_or(u64::MAX));
    vec![Section::new(SEC_TOTALS, w.into_bytes())]
}

/// Decodes totals encoded by [`encode_totals`].
pub fn decode_totals(sections: &[Section]) -> Result<ServiceTotals, CodecError> {
    let section = sections
        .iter()
        .find(|s| s.tag == SEC_TOTALS)
        .ok_or_else(|| CodecError("missing totals section".into()))?;
    let mut r = ByteReader::new(&section.payload);
    let version = r.get_u8()?;
    if version != 1 {
        return Err(CodecError(format!("unknown totals version {version}")));
    }
    let queries = r.get_u64()?;
    let interrupted = r.get_u64()?;
    let mut stats = EvalStats {
        tuples_derived: r.get_u64()?,
        tuples_inserted: r.get_u64()?,
        tuples_subsumed: r.get_u64()?,
        ..EvalStats::default()
    };
    stats.counters.canonicalize_calls = r.get_u64()?;
    stats.counters.canonical_cache_hits = r.get_u64()?;
    stats.counters.canonical_cache_misses = r.get_u64()?;
    stats.counters.empty_cache_hits = r.get_u64()?;
    stats.counters.empty_cache_misses = r.get_u64()?;
    stats.counters.subsumption_checks = r.get_u64()?;
    stats.counters.index_candidates = r.get_u64()?;
    stats.counters.index_scanned_naive = r.get_u64()?;
    stats.elapsed = Duration::from_micros(r.get_u64()?);
    Ok(ServiceTotals {
        queries,
        interrupted,
        stats,
    })
}

/// The serve-layer checkpoint machinery: a snapshot store plus its
/// background writer.
pub struct Durability {
    writer: BackgroundWriter,
}

impl Durability {
    /// Opens (or creates) the checkpoint directory, restores the newest
    /// valid totals snapshot if one exists, and spawns the background
    /// writer. Damaged generations are skipped, not fatal.
    pub fn open(dir: &Path) -> io::Result<(Durability, Option<ServiceTotals>)> {
        Self::open_with_hook(dir, None)
    }

    /// Like [`open`](Self::open), with a pre-write hook run on the writer
    /// thread before each write (the chaos harness arms store fault plans
    /// through this).
    pub fn open_with_hook(
        dir: &Path,
        hook: Option<PreWriteHook>,
    ) -> io::Result<(Durability, Option<ServiceTotals>)> {
        let store = Arc::new(SnapshotStore::open(dir).map_err(io::Error::other)?);
        let restored = match store.load_latest() {
            Ok(rec) => rec
                .snapshot
                .and_then(|(_, sections)| decode_totals(&sections).ok()),
            Err(_) => None,
        };
        let writer = BackgroundWriter::spawn_with_hook(store, hook)?;
        Ok((Durability { writer }, restored))
    }

    /// Hands the current totals to the background writer (latest-wins
    /// coalescing; never blocks on I/O).
    pub fn submit(&self, totals: &ServiceTotals) {
        self.writer.submit(encode_totals(totals));
    }

    /// Waits for the slot to drain (graceful shutdown).
    pub fn flush(&self, timeout: Duration) -> bool {
        self.writer.flush(timeout)
    }

    /// The background writer's counters.
    pub fn stats(&self) -> BgWriterStats {
        self.writer.stats()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_totals() -> ServiceTotals {
        let mut t = ServiceTotals {
            queries: 7,
            interrupted: 2,
            ..ServiceTotals::default()
        };
        t.stats.tuples_derived = 100;
        t.stats.tuples_inserted = 60;
        t.stats.tuples_subsumed = 40;
        t.stats.counters.subsumption_checks = 500;
        t.stats.counters.index_candidates = 9;
        t.stats.elapsed = Duration::from_micros(123_456);
        t
    }

    #[test]
    fn totals_round_trip_through_sections() {
        let t = sample_totals();
        let decoded = decode_totals(&encode_totals(&t)).unwrap();
        assert_eq!(decoded.queries, t.queries);
        assert_eq!(decoded.interrupted, t.interrupted);
        assert_eq!(decoded.stats.tuples_derived, t.stats.tuples_derived);
        assert_eq!(decoded.stats.counters, t.stats.counters);
        assert_eq!(decoded.stats.elapsed, t.stats.elapsed);
    }

    #[test]
    fn open_restores_what_a_previous_writer_persisted() {
        let dir = std::env::temp_dir().join(format!("itdb_serve_dur_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (d, restored) = Durability::open(&dir).unwrap();
            assert!(restored.is_none(), "fresh dir has nothing to restore");
            d.submit(&sample_totals());
            assert!(d.flush(Duration::from_secs(10)));
        }
        let (_d, restored) = Durability::open(&dir).unwrap();
        let restored = restored.unwrap();
        assert_eq!(restored.queries, 7);
        assert_eq!(restored.stats.counters.subsumption_checks, 500);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
