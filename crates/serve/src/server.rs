//! The serve loop: a `TcpListener`, a supervised worker pool, and the
//! four endpoints (`/healthz`, `/metrics`, `/query`, `/events`).
//!
//! ## Concurrency model
//!
//! One acceptor thread hands sockets to a bounded queue drained by
//! `workers` threads; when the queue is full the acceptor answers `503`
//! immediately instead of letting connections pile up. Each worker
//! installs the shared [`FanoutSink`] on its **own** thread — the trace
//! registry is thread-local, so installation from the acceptor would
//! observe nothing — which is how `/events` subscribers see the typed
//! events of evaluations running on any worker.
//!
//! ## Self-healing
//!
//! The acceptor doubles as a **supervisor**: every pass over the accept
//! loop it checks each worker's `JoinHandle::is_finished()` and respawns
//! dead workers in place (counted in `itdb_worker_respawns_total`, traced
//! as `worker_respawn`). Inside a worker, each connection is handled
//! under `catch_unwind`: a panicking handler answers `500`, bumps
//! `itdb_worker_panics_total`, and the worker lives on. A panic can
//! therefore degrade one request, never the pool.
//!
//! ## Admission control
//!
//! Accepted connections are stamped on enqueue. When a worker pops one,
//! [`AdmissionControl`] compares time-already-waited plus the EWMA of
//! observed service times against `queue_deadline`: requests that would
//! expire in line are shed with a fast `503` and a computed
//! `Retry-After`, and under sustained queue pressure the *default* fuel
//! ceiling is tightened (halved, then quartered) so the backlog drains.
//! Requests with an explicit `X-Itdb-Fuel` header are never tightened.
//!
//! ## Durability
//!
//! With `checkpoint_dir` set, the folded [`ServiceTotals`] aggregate is
//! handed to a background writer after every query (coalescing,
//! latest-wins, fsync off the request path) and restored on the next
//! bind — a SIGKILL'd server resumes its workload counters.
//!
//! [`ServiceTotals`]: itdb_core::ServiceTotals
//!
//! Every `/query` request evaluates under its own governor
//! ([`itdb_core::Service`]), so one request's fuel exhaustion or deadline
//! is invisible to its neighbors. Graceful shutdown: cancelling the token
//! stops the acceptor, closes the queue, and lets workers finish their
//! in-flight requests.

#![deny(clippy::unwrap_used, clippy::expect_used)]

#[cfg(feature = "chaos")]
use crate::chaos::{Chaos, ChaosAction};
use crate::durability::Durability;
use crate::http::{self, ParseError, Request};
use crate::metrics::HttpMetrics;
use crate::shed::{Admission, AdmissionControl};
use itdb_core::{
    write_metrics_into, CancelToken, QueryRequest, Service, ServiceDefaults, Workload,
};
use itdb_trace::prom::PromText;
use itdb_trace::{EventKind, FanoutSink, Sink};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`]; `Default` is sized for CI and small
/// deployments.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests. Note that one live `/events`
    /// stream occupies one worker for its whole duration.
    pub workers: usize,
    /// Accepted-but-unhandled connections held before the acceptor starts
    /// answering `503 Service Unavailable`.
    pub max_queued: usize,
    /// Socket read timeout (request parsing).
    pub read_timeout: Duration,
    /// Socket write timeout (response writing, per write).
    pub write_timeout: Duration,
    /// Server-side default resource ceilings for `/query` requests that
    /// bring none of their own.
    pub defaults: ServiceDefaults,
    /// Bounded per-subscriber `/events` queue depth; a stalled client
    /// loses events (counted) instead of stalling evaluation.
    pub events_queue_cap: usize,
    /// How often an idle `/events` stream emits a blank keepalive line
    /// (also bounds how fast a dead client is noticed).
    pub events_keepalive: Duration,
    /// Total time a request may spend queued plus (expected) in service
    /// before admission control sheds it with `503` + `Retry-After`.
    pub queue_deadline: Duration,
    /// Requests served per keep-alive connection before the server closes
    /// it (bounds how long one client can monopolise a worker).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it silently.
    pub keepalive_idle: Duration,
    /// Directory for serve-state checkpoints (`None` = not durable). The
    /// folded query totals are written here in the background and
    /// restored on the next bind.
    pub checkpoint_dir: Option<PathBuf>,
    /// Seeded fault-injection schedule (chaos testing only).
    #[cfg(feature = "chaos")]
    pub chaos: Option<crate::chaos::ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            max_queued: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            defaults: ServiceDefaults::default(),
            events_queue_cap: 1024,
            events_keepalive: Duration::from_secs(5),
            queue_deadline: Duration::from_secs(5),
            max_requests_per_conn: 32,
            keepalive_idle: Duration::from_secs(5),
            checkpoint_dir: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// The HTTP server: a bound listener plus the shared state every worker
/// sees.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    service: Arc<Service>,
    fanout: Arc<FanoutSink>,
    metrics: Arc<HttpMetrics>,
    admission: Arc<AdmissionControl>,
    durability: Option<Arc<Durability>>,
    #[cfg(feature = "chaos")]
    chaos: Option<Arc<Chaos>>,
    config: ServeConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7464`, or port `0` for an ephemeral
    /// port in tests) and prepares the workload for serving. With
    /// `checkpoint_dir` set, restores the newest valid totals snapshot
    /// before accepting traffic.
    pub fn bind(
        addr: impl ToSocketAddrs,
        workload: Workload,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(Service::new(workload, config.defaults.clone()));
        let durability = match &config.checkpoint_dir {
            Some(dir) => {
                #[cfg(feature = "chaos")]
                let hook = config.chaos.as_ref().and_then(Chaos::pre_write_hook);
                #[cfg(not(feature = "chaos"))]
                let hook = None;
                let (d, restored) = Durability::open_with_hook(dir, hook)?;
                if let Some(totals) = restored {
                    service.restore_totals(totals);
                }
                Some(Arc::new(d))
            }
            None => None,
        };
        let admission = Arc::new(AdmissionControl::new(
            config.workers.max(1),
            config.max_queued.max(1),
        ));
        #[cfg(feature = "chaos")]
        let chaos = config.chaos.clone().map(|c| Arc::new(Chaos::new(c)));
        let fanout = Arc::new(FanoutSink::new(config.events_queue_cap));
        Ok(Server {
            listener,
            local_addr,
            service,
            fanout,
            metrics: Arc::new(HttpMetrics::new()),
            admission,
            durability,
            #[cfg(feature = "chaos")]
            chaos,
            config,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying per-request query service (for tests and embedding).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Runs the accept loop until `shutdown` is cancelled, then drains
    /// in-flight requests, joins the workers, and flushes pending
    /// checkpoints. The acceptor supervises the pool: dead workers are
    /// respawned in place.
    pub fn run(self, shutdown: &CancelToken) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = sync_channel::<QueuedConn>(self.config.max_queued);
        let rx = Arc::new(Mutex::new(rx));
        let ctx = Arc::new(WorkerCtx {
            service: Arc::clone(&self.service),
            fanout: Arc::clone(&self.fanout),
            metrics: Arc::clone(&self.metrics),
            admission: Arc::clone(&self.admission),
            durability: self.durability.clone(),
            #[cfg(feature = "chaos")]
            chaos: self.chaos.clone(),
            config: self.config.clone(),
            shutdown: shutdown.clone(),
        });
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(ctx.config.workers.max(1));
        for i in 0..ctx.config.workers.max(1) {
            workers.push(spawn_worker(i, &rx, &ctx)?);
        }
        // The supervisor thread also installs the fan-out sink so the
        // respawn events it emits reach /events subscribers (the trace
        // registry is thread-local).
        let sink_id = itdb_trace::add_sink(Arc::clone(&self.fanout) as Arc<dyn Sink>);
        while !shutdown.is_cancelled() {
            for (i, slot) in workers.iter_mut().enumerate() {
                if slot.is_finished() {
                    let dead = std::mem::replace(slot, spawn_worker(i, &rx, &ctx)?);
                    let _ = dead.join(); // collect the panic payload
                    self.metrics.record_worker_respawn();
                    itdb_trace::emit(|| EventKind::WorkerRespawn { worker: i as u64 });
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    self.admission.on_enqueue();
                    let conn = QueuedConn {
                        stream,
                        enqueued: Instant::now(),
                    };
                    match tx.try_send(conn) {
                        Ok(()) => {}
                        Err(TrySendError::Full(conn)) | Err(TrySendError::Disconnected(conn)) => {
                            // Best-effort 503 straight from the acceptor;
                            // never block accepting on a full pool.
                            self.admission.on_dequeue();
                            let retry = self.admission.retry_after_s().to_string();
                            let mut stream = conn.stream;
                            let _ = http::write_response_with(
                                &mut stream,
                                503,
                                "application/json",
                                b"{\"error\":\"server at capacity, retry later\"}",
                                false,
                                &[("Retry-After", retry.as_str())],
                            );
                            self.metrics
                                .record("-", "(queue-full)", 503, Duration::ZERO);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Closing the channel lets each worker drain what was already
        // queued and exit; in-flight requests complete.
        drop(tx);
        for handle in workers {
            let _ = handle.join();
        }
        if let Some(d) = &self.durability {
            let _ = d.flush(Duration::from_secs(5));
        }
        itdb_trace::remove_sink(sink_id);
        itdb_trace::flush_sinks();
        Ok(())
    }
}

/// One accepted connection, stamped for the queue-deadline check.
struct QueuedConn {
    stream: TcpStream,
    enqueued: Instant,
}

/// Everything a worker needs, bundled so the spawn closure stays small.
struct WorkerCtx {
    service: Arc<Service>,
    fanout: Arc<FanoutSink>,
    metrics: Arc<HttpMetrics>,
    admission: Arc<AdmissionControl>,
    durability: Option<Arc<Durability>>,
    #[cfg(feature = "chaos")]
    chaos: Option<Arc<Chaos>>,
    config: ServeConfig,
    shutdown: CancelToken,
}

fn spawn_worker(
    index: usize,
    rx: &Arc<Mutex<Receiver<QueuedConn>>>,
    ctx: &Arc<WorkerCtx>,
) -> io::Result<JoinHandle<()>> {
    let rx = Arc::clone(rx);
    let ctx = Arc::clone(ctx);
    thread::Builder::new()
        .name(format!("itdb-serve-{index}"))
        .spawn(move || worker_loop(index as u64, &rx, &ctx))
}

fn worker_loop(worker: u64, rx: &Mutex<Receiver<QueuedConn>>, ctx: &WorkerCtx) {
    // The trace registry is thread-local: the fan-out sink must be
    // installed *here*, on the evaluating thread, or `/events`
    // subscribers would never see this worker's evaluations.
    let sink_id = itdb_trace::add_sink(Arc::clone(&ctx.fanout) as Arc<dyn Sink>);
    loop {
        let conn = {
            // A worker that died holding this lock must not wedge the
            // rest of the pool: the receiver has no invariant a panic
            // could have broken, so recover from poison.
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let Ok(conn) = conn else { break }; // acceptor hung up: shutdown
        ctx.admission.on_dequeue();
        serve_connection(worker, conn, ctx);
    }
    itdb_trace::remove_sink(sink_id);
}

/// Admission check, chaos schedule, then the panic-isolated handler.
fn serve_connection(worker: u64, conn: QueuedConn, ctx: &WorkerCtx) {
    let waited = conn.enqueued.elapsed();
    let mut stream = conn.stream;
    if let Admission::Shed { retry_after_s } =
        ctx.admission.verdict(waited, ctx.config.queue_deadline)
    {
        // This request would blow its queue deadline anyway: a fast 503
        // with a computed backoff beats burning a worker on an answer
        // nobody is waiting for. Drain the request bytes first — closing
        // with unread data would RST the socket before the client reads
        // the response.
        if let Ok(clone) = stream.try_clone() {
            let _ = http::read_request(&mut BufReader::new(clone));
        }
        let retry = retry_after_s.to_string();
        let _ = http::write_response_with(
            &mut stream,
            503,
            "application/json",
            &json_error("overloaded: queue deadline would expire, retry later"),
            false,
            &[("Retry-After", retry.as_str())],
        );
        ctx.metrics.record_shed();
        ctx.metrics.record("-", "(shed)", 503, Duration::ZERO);
        itdb_trace::emit(|| EventKind::RequestShed {
            waited_us: u64::try_from(waited.as_micros()).unwrap_or(u64::MAX),
            retry_after_s,
        });
        return;
    }
    #[cfg(feature = "chaos")]
    let action = match &ctx.chaos {
        Some(c) => c.on_request(),
        None => ChaosAction::None,
    };
    #[cfg(feature = "chaos")]
    if action == ChaosAction::KillWorker {
        // Answer before dying — no accepted request may lose its
        // response — then panic *outside* the catch region so the
        // supervisor has a real death to heal.
        if let Ok(clone) = stream.try_clone() {
            let _ = http::read_request(&mut BufReader::new(clone));
        }
        let _ = http::write_response(
            &mut stream,
            500,
            "application/json",
            &json_error("chaos: worker killed"),
        );
        ctx.metrics.record("-", "(chaos-kill)", 500, Duration::ZERO);
        panic!("chaos: scheduled worker death");
    }
    let panic_writer = stream.try_clone().ok();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "chaos")]
        if action == ChaosAction::PanicInHandler {
            panic!("chaos: scheduled handler panic");
        }
        handle_connection(stream, ctx);
    }));
    if let Err(payload) = caught {
        let detail = panic_detail(payload.as_ref());
        ctx.metrics.record_worker_panic();
        ctx.metrics.record("-", "(panic)", 500, Duration::ZERO);
        itdb_trace::emit(|| EventKind::WorkerPanic { worker, detail });
        if let Some(mut w) = panic_writer {
            // Best-effort drain of whatever the client sent (the handler
            // may have died before reading it): closing with unread data
            // would RST the socket before the 500 reaches the client.
            let _ = w.set_read_timeout(Some(Duration::from_millis(100)));
            let mut buf = [0u8; 4096];
            while matches!(io::Read::read(&mut w, &mut buf), Ok(n) if n > 0) {}
            let _ = http::write_response(
                &mut w,
                500,
                "application/json",
                &json_error("internal error: request handler panicked"),
            );
        }
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn json_error(msg: &str) -> Vec<u8> {
    let mut out = String::with_capacity(msg.len() + 16);
    out.push_str("{\"error\":\"");
    itdb_trace::json::escape_into(msg, &mut out);
    out.push_str("\"}");
    out.into_bytes()
}

fn handle_connection(stream: TcpStream, ctx: &WorkerCtx) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let max = ctx.config.max_requests_per_conn.max(1);
    for served in 0..max {
        if served > 0 {
            // Between keep-alive requests, wait only the idle budget
            // (the clone shares the fd, so this governs the reader too).
            let _ = writer.set_read_timeout(Some(ctx.config.keepalive_idle));
        }
        let started = Instant::now();
        let req = match http::read_request(&mut reader) {
            Ok(req) => req,
            Err(ParseError::ConnectionClosed) => return,
            // Idle keep-alive expiry between requests: close silently.
            Err(ParseError::Io(_)) if served > 0 => return,
            Err(e) => {
                let status = e.status();
                let _ = http::write_response(
                    &mut writer,
                    status,
                    "application/json",
                    &json_error(&e.to_string()),
                );
                ctx.metrics
                    .record("-", "(parse-error)", status, started.elapsed());
                return;
            }
        };
        let path = req.path.split('?').next().unwrap_or("").to_string();
        // /events streams until shutdown and always closes; everything
        // else may keep the connection, bounded per connection.
        let keep = req.keep_alive && served + 1 < max && path != "/events";
        let status = match (req.method.as_str(), path.as_str()) {
            ("GET", "/healthz") => serve_healthz(&mut writer, keep),
            ("GET", "/metrics") => serve_metrics(&mut writer, ctx, keep),
            ("POST", "/query") => serve_query(&mut writer, &req, ctx, keep),
            ("GET", "/events") => serve_events(&mut writer, ctx),
            (_, "/healthz" | "/metrics" | "/query" | "/events") => {
                let body = json_error("method not allowed");
                let _ = http::write_response_with(
                    &mut writer,
                    405,
                    "application/json",
                    &body,
                    keep,
                    &[],
                );
                405
            }
            _ => {
                let body = json_error(&format!("no such endpoint `{path}`"));
                let _ = http::write_response_with(
                    &mut writer,
                    404,
                    "application/json",
                    &body,
                    keep,
                    &[],
                );
                404
            }
        };
        let route = match path.as_str() {
            "/healthz" | "/metrics" | "/query" | "/events" => path.as_str(),
            _ => "(other)",
        };
        let elapsed = started.elapsed();
        ctx.metrics.record(&req.method, route, status, elapsed);
        if route != "/events" {
            // /events lives for the stream's whole duration; folding it
            // into the EWMA would poison admission control.
            ctx.admission.observe_service(elapsed);
        }
        if !keep || path == "/events" {
            return;
        }
    }
}

fn serve_healthz(w: &mut impl Write, keep: bool) -> u16 {
    let _ = http::write_response_with(w, 200, "text/plain; charset=utf-8", b"ok\n", keep, &[]);
    200
}

fn serve_metrics(w: &mut impl Write, ctx: &WorkerCtx, keep: bool) -> u16 {
    let totals = ctx.service.totals();
    let mut p = PromText::new();
    write_metrics_into(&mut p, &totals.stats, None, None);
    p.counter(
        "itdb_queries_total",
        "Queries answered over HTTP (any status).",
        totals.queries,
    );
    p.counter(
        "itdb_queries_interrupted_total",
        "HTTP queries whose per-request governor tripped.",
        totals.interrupted,
    );
    p.gauge(
        "itdb_events_subscribers",
        "Live /events subscribers.",
        ctx.fanout.subscriber_count() as f64,
    );
    p.counter(
        "itdb_events_dropped_total",
        "Events dropped across all /events subscribers (bounded queues).",
        ctx.fanout.dropped_total(),
    );
    p.gauge(
        "itdb_http_queue_depth",
        "Connections accepted but not yet picked up by a worker.",
        ctx.admission.depth() as f64,
    );
    p.gauge(
        "itdb_http_service_time_ewma_seconds",
        "Smoothed observed request service time (admission control).",
        ctx.admission.ewma_us() as f64 / 1e6,
    );
    if let Some(d) = &ctx.durability {
        let s = d.stats();
        p.counter(
            "itdb_serve_checkpoint_writes_total",
            "Serve-state checkpoint generations written in the background.",
            s.written,
        );
        p.counter(
            "itdb_serve_checkpoint_failures_total",
            "Serve-state checkpoint writes that failed.",
            s.failed,
        );
        p.counter(
            "itdb_serve_checkpoint_coalesced_total",
            "Serve-state checkpoint submissions coalesced before writing.",
            s.coalesced,
        );
    }
    ctx.metrics.write_into(&mut p);
    let body = p.finish();
    let _ = http::write_response_with(
        w,
        200,
        "text/plain; version=0.0.4; charset=utf-8",
        body.as_bytes(),
        keep,
        &[],
    );
    200
}

fn serve_query(w: &mut impl Write, req: &Request, ctx: &WorkerCtx, keep: bool) -> u16 {
    let pattern = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s.trim().to_string(),
        Ok(_) => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error("empty body: POST the query pattern, e.g. `p[t](X)`"),
                keep,
                &[],
            );
            return 400;
        }
        Err(_) => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error("body is not valid UTF-8"),
                keep,
                &[],
            );
            return 400;
        }
    };
    let fuel = match parse_u64_header(req, "x-itdb-fuel") {
        Ok(v) => v,
        Err(msg) => {
            let _ =
                http::write_response_with(w, 400, "application/json", &json_error(&msg), keep, &[]);
            return 400;
        }
    };
    let timeout_ms = match parse_u64_header(req, "x-itdb-timeout-ms") {
        Ok(v) => v,
        Err(msg) => {
            let _ =
                http::write_response_with(w, 400, "application/json", &json_error(&msg), keep, &[]);
            return 400;
        }
    };
    // Under queue pressure, requests that bring no explicit budget run on
    // a tightened default so the backlog drains. An explicit X-Itdb-Fuel
    // is client intent and is never tightened.
    let fuel = match fuel {
        Some(f) => Some(f),
        None => {
            let divisor = ctx.admission.fuel_divisor();
            match ctx.config.defaults.fuel {
                Some(f) if divisor > 1 => Some((f / divisor).max(1)),
                _ => None,
            }
        }
    };
    let query = QueryRequest {
        pattern,
        fuel,
        timeout: timeout_ms.map(Duration::from_millis),
    };
    match ctx.service.run_query(&query) {
        Ok(resp) => {
            if let Some(d) = &ctx.durability {
                d.submit(&ctx.service.totals());
            }
            let _ = http::write_response_with(
                w,
                200,
                "application/json",
                resp.to_json().as_bytes(),
                keep,
                &[],
            );
            200
        }
        Err(e) => {
            // Evaluation-layer rejections (bad pattern, unknown
            // predicate) are the client's fault, not the server's.
            let _ = http::write_response_with(
                w,
                422,
                "application/json",
                &json_error(&e.to_string()),
                keep,
                &[],
            );
            422
        }
    }
}

fn parse_u64_header(req: &Request, name: &str) -> Result<Option<u64>, String> {
    match req.header(name) {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("header {name}: `{v}` is not a non-negative integer")),
    }
}

fn serve_events(w: &mut impl Write, ctx: &WorkerCtx) -> u16 {
    // Subscribe before sending headers so no event between the two is
    // missed.
    let sub = ctx.fanout.subscribe();
    if http::start_chunked(w, 200, "application/jsonl; charset=utf-8").is_err() {
        return 200;
    }
    let mut last_write = Instant::now();
    loop {
        if ctx.shutdown.is_cancelled() {
            break;
        }
        match sub.recv_timeout(Duration::from_millis(250)) {
            Some(line) => {
                let mut payload = Vec::with_capacity(line.len() + 1);
                payload.extend_from_slice(line.as_bytes());
                payload.push(b'\n');
                if http::write_chunk(w, &payload).is_err() {
                    return 200; // client went away
                }
                last_write = Instant::now();
            }
            None => {
                // Idle: a blank JSONL keepalive both keeps middleboxes
                // happy and detects dead clients.
                if last_write.elapsed() >= ctx.config.events_keepalive {
                    if http::write_chunk(w, b"\n").is_err() {
                        return 200;
                    }
                    last_write = Instant::now();
                }
            }
        }
    }
    let _ = http::finish_chunked(w);
    200
}
