//! The serve loop: a `TcpListener`, a supervised worker pool, and the
//! endpoints (`/healthz`, `/metrics`, `/query`, `/events`, `/debug/*`).
//!
//! ## Concurrency model
//!
//! One acceptor thread hands sockets to a bounded queue drained by
//! `workers` threads; when the queue is full the acceptor answers `503`
//! immediately instead of letting connections pile up. Each worker
//! installs the shared [`FanoutSink`] on its **own** thread — the trace
//! registry is thread-local, so installation from the acceptor would
//! observe nothing — which is how `/events` subscribers see the typed
//! events of evaluations running on any worker. `GET /events` itself is
//! handed off to a **dedicated streamer thread** (counted in the
//! `itdb_events_streamers` gauge), so a long-lived subscriber never
//! occupies a query worker.
//!
//! ## Per-request observability
//!
//! Every request gets an `X-Itdb-Request-Id` (the inbound header is
//! honored, otherwise one is generated), which becomes the thread's
//! trace context for the evaluation — every event the engine emits,
//! including events folded back from parallel derive workers, carries
//! the id — and is echoed in the `/query` response JSON and headers.
//! Workers keep an always-on bounded flight-recorder ring
//! ([`itdb_trace::flight`]) of recent events; governor trips, worker
//! panics, and sheds snapshot every ring into a retained dump
//! (`GET /debug/flight`, `itdb_flight_dumps_total`). Requests slower
//! than `slow_query_ms` are written to the slow-query log with their
//! span profile and governor counters. `GET /debug/requests` lists
//! in-flight requests with live fuel spent; `GET /debug/profile` serves
//! per-route span aggregates. With `access_log` on, every request
//! prints one structured JSONL line.
//!
//! ## Self-healing
//!
//! The acceptor doubles as a **supervisor**: every pass over the accept
//! loop it checks each worker's `JoinHandle::is_finished()` and respawns
//! dead workers in place (counted in `itdb_worker_respawns_total`, traced
//! as `worker_respawn`). Inside a worker, each connection is handled
//! under `catch_unwind`: a panicking handler answers `500`, bumps
//! `itdb_worker_panics_total`, and the worker lives on. A panic can
//! therefore degrade one request, never the pool.
//!
//! ## Admission control
//!
//! Accepted connections are stamped on enqueue. When a worker pops one,
//! [`AdmissionControl`] compares time-already-waited plus the EWMA of
//! observed service times against `queue_deadline`: requests that would
//! expire in line are shed with a fast `503` and a computed
//! `Retry-After`, and under sustained queue pressure the *default* fuel
//! ceiling is tightened (halved, then quartered) so the backlog drains.
//! Requests with an explicit `X-Itdb-Fuel` header are never tightened.
//!
//! ## Durability
//!
//! With `checkpoint_dir` set, the folded [`ServiceTotals`] aggregate is
//! handed to a background writer after every query (coalescing,
//! latest-wins, fsync off the request path) and restored on the next
//! bind — a SIGKILL'd server resumes its workload counters.
//!
//! [`ServiceTotals`]: itdb_core::ServiceTotals
//!
//! Every `/query` request evaluates under its own governor
//! ([`itdb_core::Service`]), so one request's fuel exhaustion or deadline
//! is invisible to its neighbors. Graceful shutdown: cancelling the token
//! stops the acceptor, closes the queue, and lets workers finish their
//! in-flight requests.

#![deny(clippy::unwrap_used, clippy::expect_used)]

#[cfg(feature = "chaos")]
use crate::chaos::{Chaos, ChaosAction};
use crate::debug::{self, DebugState, InFlightGuard};
use crate::durability::Durability;
use crate::http::{self, ParseError, Request};
use crate::ingest::{parse_facts_body, Ingest, IngestConfig, IngestError};
use crate::metrics::HttpMetrics;
use crate::shed::{Admission, AdmissionControl};
use itdb_core::{
    parse_atom, query, write_metrics_into, CancelToken, QueryRequest, QueryResponse, QueryStatus,
    Service, ServiceDefaults, Workload,
};
use itdb_trace::prom::PromText;
use itdb_trace::{EventKind, FanoutSink, Sink};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`]; `Default` is sized for CI and small
/// deployments.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests. `/events` streams run on their
    /// own dedicated threads and do not occupy workers.
    pub workers: usize,
    /// Accepted-but-unhandled connections held before the acceptor starts
    /// answering `503 Service Unavailable`.
    pub max_queued: usize,
    /// Socket read timeout (request parsing). Bounds **one** socket read;
    /// see `header_deadline` for the overall bound.
    pub read_timeout: Duration,
    /// Overall wall-clock budget for reading one request (line, headers,
    /// and body). The per-read `read_timeout` alone lets a slowloris
    /// client drip one byte per read and hold a worker forever; this
    /// deadline reaps such connections after at most
    /// `header_deadline + read_timeout`.
    pub header_deadline: Duration,
    /// Socket write timeout (response writing, per write).
    pub write_timeout: Duration,
    /// Server-side default resource ceilings for `/query` requests that
    /// bring none of their own.
    pub defaults: ServiceDefaults,
    /// Bounded per-subscriber `/events` queue depth; a stalled client
    /// loses events (counted) instead of stalling evaluation.
    pub events_queue_cap: usize,
    /// How often an idle `/events` stream emits a blank keepalive line
    /// (also bounds how fast a dead client is noticed).
    pub events_keepalive: Duration,
    /// Total time a request may spend queued plus (expected) in service
    /// before admission control sheds it with `503` + `Retry-After`.
    pub queue_deadline: Duration,
    /// Requests served per keep-alive connection before the server closes
    /// it (bounds how long one client can monopolise a worker).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it silently.
    pub keepalive_idle: Duration,
    /// Directory for serve-state checkpoints (`None` = not durable). The
    /// folded query totals are written here in the background and
    /// restored on the next bind.
    pub checkpoint_dir: Option<PathBuf>,
    /// `/query` requests slower than this (wall clock, milliseconds) are
    /// written to the slow-query log with their span profile and
    /// governor counters. `None` disables the log.
    pub slow_query_ms: Option<u64>,
    /// Where slow-query JSONL records append; `None` = stdout.
    pub slow_log: Option<PathBuf>,
    /// Per-worker flight-recorder ring capacity (recent events retained
    /// for `/debug/flight` dumps). `0` disables the recorder.
    pub flight_capacity: usize,
    /// Print one structured JSONL access-log line per request to stdout.
    pub access_log: bool,
    /// Streaming ingestion (`POST /facts`): WAL directory, flush policy,
    /// dedup window and checkpoint cadence. `None` = read-only serving
    /// with per-request evaluation; `Some` keeps a resident incrementally
    /// maintained model and answers reads from it as closed-form lookups.
    pub ingest: Option<IngestConfig>,
    /// Seeded fault-injection schedule (chaos testing only).
    #[cfg(feature = "chaos")]
    pub chaos: Option<crate::chaos::ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            max_queued: 64,
            read_timeout: Duration::from_secs(10),
            header_deadline: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            defaults: ServiceDefaults::default(),
            events_queue_cap: 1024,
            events_keepalive: Duration::from_secs(5),
            queue_deadline: Duration::from_secs(5),
            max_requests_per_conn: 32,
            keepalive_idle: Duration::from_secs(5),
            checkpoint_dir: None,
            slow_query_ms: None,
            slow_log: None,
            flight_capacity: 256,
            access_log: false,
            ingest: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// The HTTP server: a bound listener plus the shared state every worker
/// sees.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    service: Arc<Service>,
    fanout: Arc<FanoutSink>,
    metrics: Arc<HttpMetrics>,
    admission: Arc<AdmissionControl>,
    durability: Option<Arc<Durability>>,
    ingest: Option<Arc<Ingest>>,
    debug: Arc<DebugState>,
    #[cfg(feature = "chaos")]
    chaos: Option<Arc<Chaos>>,
    config: ServeConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7464`, or port `0` for an ephemeral
    /// port in tests) and prepares the workload for serving. With
    /// `checkpoint_dir` set, restores the newest valid totals snapshot
    /// before accepting traffic.
    pub fn bind(
        addr: impl ToSocketAddrs,
        workload: Workload,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Boot recovery for streaming ingestion happens before the first
        // request: restore the newest resident checkpoint, replay the WAL
        // past it, and only then expose the model to reads and writes.
        let ingest = match &config.ingest {
            Some(ic) => Some(Arc::new(Ingest::open(ic.clone(), &workload)?)),
            None => None,
        };
        let service = Arc::new(Service::new(workload, config.defaults.clone()));
        let durability = match &config.checkpoint_dir {
            Some(dir) => {
                #[cfg(feature = "chaos")]
                let hook = config.chaos.as_ref().and_then(Chaos::pre_write_hook);
                #[cfg(not(feature = "chaos"))]
                let hook = None;
                let (d, restored) = Durability::open_with_hook(dir, hook)?;
                if let Some(totals) = restored {
                    service.restore_totals(totals);
                }
                Some(Arc::new(d))
            }
            None => None,
        };
        let admission = Arc::new(AdmissionControl::new(
            config.workers.max(1),
            config.max_queued.max(1),
        ));
        #[cfg(feature = "chaos")]
        let chaos = config.chaos.clone().map(|c| Arc::new(Chaos::new(c)));
        let fanout = Arc::new(FanoutSink::new(config.events_queue_cap));
        let debug = Arc::new(DebugState::new(config.slow_log.as_deref())?);
        Ok(Server {
            listener,
            local_addr,
            service,
            fanout,
            metrics: Arc::new(HttpMetrics::new()),
            admission,
            durability,
            ingest,
            debug,
            #[cfg(feature = "chaos")]
            chaos,
            config,
        })
    }

    /// The streaming-ingestion subsystem, when `config.ingest` was set
    /// (for tests and embedding).
    pub fn ingest(&self) -> Option<&Arc<Ingest>> {
        self.ingest.as_ref()
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying per-request query service (for tests and embedding).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Runs the accept loop until `shutdown` is cancelled, then drains
    /// in-flight requests, joins the workers, and flushes pending
    /// checkpoints. The acceptor supervises the pool: dead workers are
    /// respawned in place.
    pub fn run(self, shutdown: &CancelToken) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = sync_channel::<QueuedConn>(self.config.max_queued);
        let rx = Arc::new(Mutex::new(rx));
        let ctx = Arc::new(WorkerCtx {
            service: Arc::clone(&self.service),
            fanout: Arc::clone(&self.fanout),
            metrics: Arc::clone(&self.metrics),
            admission: Arc::clone(&self.admission),
            durability: self.durability.clone(),
            ingest: self.ingest.clone(),
            debug: Arc::clone(&self.debug),
            streamers: Mutex::new(Vec::new()),
            #[cfg(feature = "chaos")]
            chaos: self.chaos.clone(),
            config: self.config.clone(),
            shutdown: shutdown.clone(),
        });
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(ctx.config.workers.max(1));
        for i in 0..ctx.config.workers.max(1) {
            workers.push(spawn_worker(i, &rx, &ctx)?);
        }
        // The supervisor thread also installs the fan-out sink so the
        // respawn events it emits reach /events subscribers (the trace
        // registry is thread-local).
        let sink_id = itdb_trace::add_sink(Arc::clone(&self.fanout) as Arc<dyn Sink>);
        while !shutdown.is_cancelled() {
            for (i, slot) in workers.iter_mut().enumerate() {
                if slot.is_finished() {
                    let dead = std::mem::replace(slot, spawn_worker(i, &rx, &ctx)?);
                    let _ = dead.join(); // collect the panic payload
                    self.metrics.record_worker_respawn();
                    itdb_trace::emit(|| EventKind::WorkerRespawn { worker: i as u64 });
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    self.admission.on_enqueue();
                    let conn = QueuedConn {
                        stream,
                        enqueued: Instant::now(),
                    };
                    match tx.try_send(conn) {
                        Ok(()) => {}
                        Err(TrySendError::Full(conn)) | Err(TrySendError::Disconnected(conn)) => {
                            // Best-effort 503 straight from the acceptor;
                            // never block accepting on a full pool.
                            self.admission.on_dequeue();
                            let retry = self.admission.retry_after_s().to_string();
                            let mut stream = conn.stream;
                            let _ = http::write_response_with(
                                &mut stream,
                                503,
                                "application/json",
                                b"{\"error\":\"server at capacity, retry later\"}",
                                false,
                                &[("Retry-After", retry.as_str())],
                            );
                            self.metrics
                                .record("-", "(queue-full)", 503, Duration::ZERO);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Closing the channel lets each worker drain what was already
        // queued and exit; in-flight requests complete.
        drop(tx);
        for handle in workers {
            let _ = handle.join();
        }
        // Streamer threads poll the shutdown token every 250ms; with the
        // workers gone no new streamers can appear, so one sweep joins
        // them all.
        let streamers =
            std::mem::take(&mut *ctx.streamers.lock().unwrap_or_else(|p| p.into_inner()));
        for handle in streamers {
            let _ = handle.join();
        }
        if let Some(d) = &self.durability {
            let _ = d.flush(Duration::from_secs(5));
        }
        if let Some(i) = &self.ingest {
            // Graceful shutdown earns a checkpoint; a crash leans on the
            // WAL instead.
            i.flush();
        }
        self.debug.flush();
        itdb_trace::remove_sink(sink_id);
        itdb_trace::flush_sinks();
        Ok(())
    }
}

/// One accepted connection, stamped for the queue-deadline check.
struct QueuedConn {
    stream: TcpStream,
    enqueued: Instant,
}

/// Everything a worker needs, bundled so the spawn closure stays small.
struct WorkerCtx {
    service: Arc<Service>,
    fanout: Arc<FanoutSink>,
    metrics: Arc<HttpMetrics>,
    admission: Arc<AdmissionControl>,
    durability: Option<Arc<Durability>>,
    ingest: Option<Arc<Ingest>>,
    debug: Arc<DebugState>,
    /// Dedicated `/events` streamer threads, joined at shutdown.
    streamers: Mutex<Vec<JoinHandle<()>>>,
    #[cfg(feature = "chaos")]
    chaos: Option<Arc<Chaos>>,
    config: ServeConfig,
    shutdown: CancelToken,
}

fn spawn_worker(
    index: usize,
    rx: &Arc<Mutex<Receiver<QueuedConn>>>,
    ctx: &Arc<WorkerCtx>,
) -> io::Result<JoinHandle<()>> {
    let rx = Arc::clone(rx);
    let ctx = Arc::clone(ctx);
    thread::Builder::new()
        .name(format!("itdb-serve-{index}"))
        .spawn(move || worker_loop(index as u64, &rx, &ctx))
}

fn worker_loop(worker: u64, rx: &Mutex<Receiver<QueuedConn>>, ctx: &Arc<WorkerCtx>) {
    // The trace registry is thread-local: the fan-out sink must be
    // installed *here*, on the evaluating thread, or `/events`
    // subscribers would never see this worker's evaluations.
    let sink_id = itdb_trace::add_sink(Arc::clone(&ctx.fanout) as Arc<dyn Sink>);
    // The always-on flight recorder: a bounded ring of this worker's
    // recent events, snapshotted into /debug/flight dumps on trips,
    // panics, and sheds. Dropped (and unregistered) with the worker.
    let _flight = (ctx.config.flight_capacity > 0)
        .then(|| itdb_trace::flight::enable(ctx.config.flight_capacity));
    loop {
        let conn = {
            // A worker that died holding this lock must not wedge the
            // rest of the pool: the receiver has no invariant a panic
            // could have broken, so recover from poison.
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let Ok(conn) = conn else { break }; // acceptor hung up: shutdown
        ctx.admission.on_dequeue();
        serve_connection(worker, conn, ctx);
    }
    itdb_trace::remove_sink(sink_id);
}

/// Admission check, chaos schedule, then the panic-isolated handler.
fn serve_connection(worker: u64, conn: QueuedConn, ctx: &Arc<WorkerCtx>) {
    let waited = conn.enqueued.elapsed();
    let mut stream = conn.stream;
    if let Admission::Shed { retry_after_s } =
        ctx.admission.verdict(waited, ctx.config.queue_deadline)
    {
        // This request would blow its queue deadline anyway: a fast 503
        // with a computed backoff beats burning a worker on an answer
        // nobody is waiting for. Drain the request bytes first — closing
        // with unread data would RST the socket before the client reads
        // the response.
        if let Ok(clone) = stream.try_clone() {
            let _ =
                http::read_request_deadline(&mut BufReader::new(clone), ctx.config.header_deadline);
        }
        let retry = retry_after_s.to_string();
        let _ = http::write_response_with(
            &mut stream,
            503,
            "application/json",
            &json_error("overloaded: queue deadline would expire, retry later"),
            false,
            &[("Retry-After", retry.as_str())],
        );
        ctx.metrics.record_shed();
        ctx.metrics.record("-", "(shed)", 503, Duration::ZERO);
        itdb_trace::emit(|| EventKind::RequestShed {
            waited_us: u64::try_from(waited.as_micros()).unwrap_or(u64::MAX),
            retry_after_s,
        });
        // A shed is load-pressure forensics: freeze what every worker was
        // doing when admission control started turning requests away.
        ctx.debug.capture_dump("shed", None);
        return;
    }
    #[cfg(feature = "chaos")]
    let action = match &ctx.chaos {
        Some(c) => c.on_request(),
        None => ChaosAction::None,
    };
    #[cfg(feature = "chaos")]
    if action == ChaosAction::KillWorker {
        // Answer before dying — no accepted request may lose its
        // response — then panic *outside* the catch region so the
        // supervisor has a real death to heal.
        if let Ok(clone) = stream.try_clone() {
            let _ =
                http::read_request_deadline(&mut BufReader::new(clone), ctx.config.header_deadline);
        }
        let _ = http::write_response(
            &mut stream,
            500,
            "application/json",
            &json_error("chaos: worker killed"),
        );
        ctx.metrics.record("-", "(chaos-kill)", 500, Duration::ZERO);
        panic!("chaos: scheduled worker death");
    }
    let panic_writer = stream.try_clone().ok();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "chaos")]
        if action == ChaosAction::PanicInHandler {
            panic!("chaos: scheduled handler panic");
        }
        handle_connection(stream, ctx);
    }));
    if let Err(payload) = caught {
        let detail = panic_detail(payload.as_ref());
        ctx.metrics.record_worker_panic();
        ctx.metrics.record("-", "(panic)", 500, Duration::ZERO);
        itdb_trace::emit(|| EventKind::WorkerPanic { worker, detail });
        // The panicking worker's own ring holds the events leading up to
        // the panic — exactly the forensics a postmortem needs.
        ctx.debug.capture_dump("worker_panic", None);
        if let Some(mut w) = panic_writer {
            // Best-effort drain of whatever the client sent (the handler
            // may have died before reading it): closing with unread data
            // would RST the socket before the 500 reaches the client.
            let _ = w.set_read_timeout(Some(Duration::from_millis(100)));
            let mut buf = [0u8; 4096];
            while matches!(io::Read::read(&mut w, &mut buf), Ok(n) if n > 0) {}
            let _ = http::write_response(
                &mut w,
                500,
                "application/json",
                &json_error("internal error: request handler panicked"),
            );
        }
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn json_error(msg: &str) -> Vec<u8> {
    let mut out = String::with_capacity(msg.len() + 16);
    out.push_str("{\"error\":\"");
    itdb_trace::json::escape_into(msg, &mut out);
    out.push_str("\"}");
    out.into_bytes()
}

/// Known routes, for metric labels and the in-flight table.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/query" => "/query",
        "/facts" => "/facts",
        "/events" => "/events",
        "/debug/flight" => "/debug/flight",
        "/debug/profile" => "/debug/profile",
        "/debug/requests" => "/debug/requests",
        _ => "(other)",
    }
}

/// One structured JSONL access-log line to stdout.
fn access_log_line(request_id: &str, method: &str, route: &str, status: u16, elapsed: Duration) {
    let mut out = String::with_capacity(96);
    out.push_str("{\"log\":\"access\",\"request_id\":\"");
    itdb_trace::json::escape_into(request_id, &mut out);
    out.push_str("\",\"method\":\"");
    itdb_trace::json::escape_into(method, &mut out);
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\",\"route\":\"{route}\",\"status\":{status},\"elapsed_us\":{}}}",
        u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
    );
    println!("{out}");
}

fn handle_connection(stream: TcpStream, ctx: &Arc<WorkerCtx>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let max = ctx.config.max_requests_per_conn.max(1);
    for served in 0..max {
        if served > 0 {
            // Between keep-alive requests, wait only the idle budget
            // (the clone shares the fd, so this governs the reader too).
            let _ = writer.set_read_timeout(Some(ctx.config.keepalive_idle));
        }
        let started = Instant::now();
        let req = match http::read_request_deadline(&mut reader, ctx.config.header_deadline) {
            Ok(req) => req,
            Err(ParseError::ConnectionClosed) => return,
            // Idle keep-alive expiry between requests: close silently.
            Err(ParseError::Io(_)) if served > 0 => return,
            Err(e) => {
                let status = e.status();
                let _ = http::write_response(
                    &mut writer,
                    status,
                    "application/json",
                    &json_error(&e.to_string()),
                );
                ctx.metrics
                    .record("-", "(parse-error)", status, started.elapsed());
                return;
            }
        };
        let path = req.path.split('?').next().unwrap_or("").to_string();
        // Honor the client's id or mint one: every route gets an id, so
        // the access log and in-flight table are complete.
        let request_id = debug::request_id_for(req.header("x-itdb-request-id"));
        // /events streams until shutdown on its own thread and always
        // closes; everything else may keep the connection, bounded.
        let keep = req.keep_alive && served + 1 < max && path != "/events";
        if req.method == "GET" && path == "/events" {
            // Hand the connection to a dedicated streamer thread so the
            // stream's lifetime never occupies a query worker. The
            // reader clone drops here; the streamer owns the writer.
            spawn_events_streamer(writer, ctx, request_id);
            return;
        }
        let route = route_label(&path);
        let inflight = ctx.debug.register(route, &request_id);
        let status = match (req.method.as_str(), path.as_str()) {
            ("GET", "/healthz") => serve_healthz(&mut writer, keep),
            ("GET", "/metrics") => serve_metrics(&mut writer, ctx, keep),
            ("POST", "/query") => serve_query(&mut writer, &req, ctx, keep, &request_id, &inflight),
            ("POST", "/facts") => serve_facts(&mut writer, &req, ctx, keep, &request_id),
            ("GET", "/debug/flight") => {
                serve_debug_body(&mut writer, ctx.debug.flight_json(), keep, &request_id)
            }
            ("GET", "/debug/profile") => {
                serve_debug_body(&mut writer, ctx.debug.profile_json(), keep, &request_id)
            }
            ("GET", "/debug/requests") => {
                serve_debug_body(&mut writer, ctx.debug.requests_json(), keep, &request_id)
            }
            (
                _,
                "/healthz" | "/metrics" | "/query" | "/facts" | "/events" | "/debug/flight"
                | "/debug/profile" | "/debug/requests",
            ) => {
                let body = json_error("method not allowed");
                let _ = http::write_response_with(
                    &mut writer,
                    405,
                    "application/json",
                    &body,
                    keep,
                    &[],
                );
                405
            }
            _ => {
                let body = json_error(&format!("no such endpoint `{path}`"));
                let _ = http::write_response_with(
                    &mut writer,
                    404,
                    "application/json",
                    &body,
                    keep,
                    &[],
                );
                404
            }
        };
        drop(inflight);
        let elapsed = started.elapsed();
        ctx.metrics.record(&req.method, route, status, elapsed);
        ctx.admission.observe_service(elapsed);
        if ctx.config.access_log {
            access_log_line(&request_id, &req.method, route, status, elapsed);
        }
        if !keep {
            return;
        }
    }
}

fn serve_debug_body(w: &mut impl Write, body: String, keep: bool, request_id: &str) -> u16 {
    let _ = http::write_response_with(
        w,
        200,
        "application/json",
        body.as_bytes(),
        keep,
        &[("X-Itdb-Request-Id", request_id)],
    );
    200
}

/// Moves a `GET /events` connection onto a dedicated streamer thread
/// (counted in the `itdb_events_streamers` gauge and the in-flight
/// table); falls back to streaming inline if the spawn fails.
fn spawn_events_streamer(writer: TcpStream, ctx: &Arc<WorkerCtx>, request_id: String) {
    // Shared fd for the inline fallback: if the spawn fails, the closure
    // (and the writer inside it) is dropped, so stream on the clone.
    let fallback = writer.try_clone().ok();
    let thread_ctx = Arc::clone(ctx);
    let spawned = thread::Builder::new()
        .name("itdb-events-streamer".to_string())
        .spawn(move || {
            let started = Instant::now();
            thread_ctx.debug.streamer_started();
            let inflight = thread_ctx.debug.register("/events", &request_id);
            let mut w = writer;
            let status = serve_events(&mut w, &thread_ctx);
            drop(inflight);
            thread_ctx.debug.streamer_finished();
            let elapsed = started.elapsed();
            // The stream's duration is its lifetime, not a service time:
            // it is recorded for visibility but never folded into the
            // admission EWMA.
            thread_ctx.metrics.record("GET", "/events", status, elapsed);
            if thread_ctx.config.access_log {
                access_log_line(&request_id, "GET", "/events", status, elapsed);
            }
        });
    match spawned {
        Ok(handle) => {
            let mut streamers = ctx.streamers.lock().unwrap_or_else(|p| p.into_inner());
            // Reap handles of streams that already ended so the vector
            // tracks live streamers, not connection history.
            streamers.retain(|h| !h.is_finished());
            streamers.push(handle);
        }
        Err(_) => {
            // Out of threads: stream inline rather than dropping the
            // subscriber (the old worker-occupying behavior).
            if let Some(mut w) = fallback {
                let status = serve_events(&mut w, ctx);
                ctx.metrics.record("GET", "/events", status, Duration::ZERO);
            }
        }
    }
}

fn serve_healthz(w: &mut impl Write, keep: bool) -> u16 {
    let _ = http::write_response_with(w, 200, "text/plain; charset=utf-8", b"ok\n", keep, &[]);
    200
}

fn serve_metrics(w: &mut impl Write, ctx: &WorkerCtx, keep: bool) -> u16 {
    let totals = ctx.service.totals();
    let mut p = PromText::new();
    write_metrics_into(&mut p, &totals.stats, None, None);
    p.counter(
        "itdb_queries_total",
        "Queries answered over HTTP (any status).",
        totals.queries,
    );
    p.counter(
        "itdb_queries_interrupted_total",
        "HTTP queries whose per-request governor tripped.",
        totals.interrupted,
    );
    p.gauge(
        "itdb_events_subscribers",
        "Live /events subscribers.",
        ctx.fanout.subscriber_count() as f64,
    );
    p.counter(
        "itdb_events_dropped_total",
        "Events dropped across all /events subscribers (bounded queues).",
        ctx.fanout.dropped_total(),
    );
    p.gauge(
        "itdb_http_queue_depth",
        "Connections accepted but not yet picked up by a worker.",
        ctx.admission.depth() as f64,
    );
    p.gauge(
        "itdb_http_service_time_ewma_seconds",
        "Smoothed observed request service time (admission control).",
        ctx.admission.ewma_us() as f64 / 1e6,
    );
    p.counter(
        "itdb_slow_queries_total",
        "Queries exceeding the slow-query threshold (written to the slow log).",
        ctx.debug.slow_total(),
    );
    p.counter(
        "itdb_flight_dumps_total",
        "Flight-recorder dumps captured on trips, panics, and sheds.",
        ctx.debug.dumps_total(),
    );
    p.gauge(
        "itdb_events_streamers",
        "Dedicated /events streamer threads currently live.",
        ctx.debug.streamers() as f64,
    );
    let in_flight = ctx.debug.in_flight_by_route();
    let in_flight_samples: Vec<(Vec<(&str, &str)>, f64)> = in_flight
        .iter()
        .map(|(route, n)| (vec![("route", route.as_str())], *n as f64))
        .collect();
    p.family(
        "itdb_http_in_flight",
        "Requests currently in flight, by route.",
        "gauge",
        &in_flight_samples,
    );
    if let Some(d) = &ctx.durability {
        let s = d.stats();
        p.counter(
            "itdb_serve_checkpoint_writes_total",
            "Serve-state checkpoint generations written in the background.",
            s.written,
        );
        p.counter(
            "itdb_serve_checkpoint_failures_total",
            "Serve-state checkpoint writes that failed.",
            s.failed,
        );
        p.counter(
            "itdb_serve_checkpoint_coalesced_total",
            "Serve-state checkpoint submissions coalesced before writing.",
            s.coalesced,
        );
    }
    if let Some(ingest) = &ctx.ingest {
        let ws = ingest.wal_stats();
        let boot = ingest.boot_report();
        p.counter(
            "itdb_facts_ingested_total",
            "Facts accepted and applied through POST /facts (duplicates excluded).",
            ingest.facts_ingested(),
        );
        p.counter(
            "itdb_facts_duplicate_total",
            "Facts skipped as duplicates (already-present tuples or replayed request ids).",
            ingest.facts_duplicate(),
        );
        p.counter(
            "itdb_facts_retracted_total",
            "Stored EDB tuples removed by retract operations through POST /facts.",
            ingest.facts_retracted(),
        );
        p.counter(
            "itdb_retraction_overdeleted_total",
            "Derived tuples removed by the DRed over-delete phase.",
            ingest.retraction_overdeleted(),
        );
        p.counter(
            "itdb_retraction_rederived_total",
            "Derived tuples restored by the DRed re-derive phase.",
            ingest.retraction_rederived(),
        );
        let overdeleted = ingest.retraction_overdeleted();
        p.gauge(
            "itdb_retraction_overdeletion_ratio",
            "Re-derived / over-deleted tuples: how much of the deletion cone survived (1.0 = pure churn, 0.0 = every over-delete was final).",
            if overdeleted == 0 {
                0.0
            } else {
                ingest.retraction_rederived() as f64 / overdeleted as f64
            },
        );
        p.counter(
            "itdb_ingest_batches_tripped_total",
            "Ingest batches refused with a governor trip and rolled back.",
            ingest.batches_tripped(),
        );
        p.counter(
            "itdb_wal_appends_total",
            "Records appended to the write-ahead log.",
            ws.appends,
        );
        p.counter(
            "itdb_wal_fsyncs_total",
            "fsync calls issued by the write-ahead log.",
            ws.fsyncs,
        );
        p.counter(
            "itdb_wal_replayed_records_total",
            "WAL records replayed into the resident model at boot.",
            boot.replayed_records,
        );
        p.counter(
            "itdb_wal_truncated_tails_total",
            "Torn WAL tails truncated during recovery.",
            ws.truncated_tails,
        );
        p.gauge(
            "itdb_wal_segment_bytes",
            "Bytes in the active WAL segment.",
            ws.segment_bytes as f64,
        );
        p.gauge(
            "itdb_ingest_queue_depth",
            "POST /facts requests admitted but not yet applied.",
            ingest.pending() as f64,
        );
        p.counter(
            "itdb_ingest_checkpoint_writes_total",
            "Resident-model checkpoints folded out of the WAL.",
            ingest.checkpoints_written(),
        );
        p.counter(
            "itdb_ingest_checkpoint_failures_total",
            "Resident-model checkpoint writes that failed (WAL retained).",
            ingest.checkpoint_failures(),
        );
    }
    ctx.metrics.write_into(&mut p);
    let body = p.finish();
    let _ = http::write_response_with(
        w,
        200,
        "text/plain; version=0.0.4; charset=utf-8",
        body.as_bytes(),
        keep,
        &[],
    );
    200
}

fn serve_query(
    w: &mut impl Write,
    req: &Request,
    ctx: &WorkerCtx,
    keep: bool,
    request_id: &str,
    inflight: &InFlightGuard,
) -> u16 {
    let id_header = [("X-Itdb-Request-Id", request_id)];
    let pattern = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s.trim().to_string(),
        Ok(_) => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error("empty body: POST the query pattern, e.g. `p[t](X)`"),
                keep,
                &id_header,
            );
            return 400;
        }
        Err(_) => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error("body is not valid UTF-8"),
                keep,
                &id_header,
            );
            return 400;
        }
    };
    let fuel = match parse_u64_header(req, "x-itdb-fuel") {
        Ok(v) => v,
        Err(msg) => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error(&msg),
                keep,
                &id_header,
            );
            return 400;
        }
    };
    let timeout_ms = match parse_u64_header(req, "x-itdb-timeout-ms") {
        Ok(v) => v,
        Err(msg) => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error(&msg),
                keep,
                &id_header,
            );
            return 400;
        }
    };
    // In ingest mode the model is already materialized and maintained:
    // reads are closed-form lookups against the resident relations, with
    // no per-request evaluation (and so no governor) at all.
    if let Some(ingest) = &ctx.ingest {
        return serve_query_resident(w, ingest, &pattern, keep, request_id);
    }
    // Under queue pressure, requests that bring no explicit budget run on
    // a tightened default so the backlog drains. An explicit X-Itdb-Fuel
    // is client intent and is never tightened.
    let fuel = match fuel {
        Some(f) => Some(f),
        None => {
            let divisor = ctx.admission.fuel_divisor();
            match ctx.config.defaults.fuel {
                Some(f) if divisor > 1 => Some((f / divisor).max(1)),
                _ => None,
            }
        }
    };
    let query = QueryRequest {
        pattern,
        fuel,
        timeout: timeout_ms.map(Duration::from_millis),
        request_id: Some(request_id.to_string()),
    };
    // Span profiling per request: feeds the /debug/profile aggregate and
    // the slow-query log. Timing only — the evaluation's answers are
    // byte-identical with or without it.
    let started = Instant::now();
    itdb_trace::set_profiling(true);
    let mut governor = None;
    let result = ctx.service.run_query_observed(&query, |g| {
        // Publish the per-request governor so /debug/requests can read
        // fuel spent (atomics) while this evaluation runs.
        inflight.attach_governor(g);
        governor = Some(Arc::clone(g));
    });
    itdb_trace::set_profiling(false);
    let profile = itdb_trace::take_profile();
    let elapsed = started.elapsed();
    ctx.debug.absorb_profile("/query", &profile);
    match result {
        Ok(resp) => {
            if let Some(d) = &ctx.durability {
                d.submit(&ctx.service.totals());
            }
            if matches!(resp.status, QueryStatus::Interrupted(_)) {
                // A tripped request is exactly when an operator asks
                // "what was it doing": freeze every worker's ring.
                ctx.debug.capture_dump("governor_trip", Some(request_id));
            }
            if let Some(ms) = ctx.config.slow_query_ms {
                if elapsed >= Duration::from_millis(ms) {
                    let status_str = match &resp.status {
                        QueryStatus::Complete => "complete",
                        QueryStatus::Diverged => "diverged",
                        QueryStatus::Interrupted(_) => "interrupted",
                    };
                    ctx.debug.record_slow(
                        request_id,
                        &query.pattern,
                        status_str,
                        u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                        governor.as_ref(),
                        &resp.stats.to_json(),
                        &profile,
                    );
                }
            }
            let _ = http::write_response_with(
                w,
                200,
                "application/json",
                resp.to_json().as_bytes(),
                keep,
                &id_header,
            );
            200
        }
        Err(e) => {
            // Evaluation-layer rejections (bad pattern, unknown
            // predicate) are the client's fault, not the server's.
            let _ = http::write_response_with(
                w,
                422,
                "application/json",
                &json_error(&e.to_string()),
                keep,
                &id_header,
            );
            422
        }
    }
}

/// The closed-form read path of ingest mode: answer the pattern against
/// the resident model's maintained relations, no evaluation at all.
fn serve_query_resident(
    w: &mut impl Write,
    ingest: &Ingest,
    pattern: &str,
    keep: bool,
    request_id: &str,
) -> u16 {
    let id_header = [("X-Itdb-Request-Id", request_id)];
    let atom = match parse_atom(pattern) {
        Ok(a) => a,
        Err(e) => {
            let _ = http::write_response_with(
                w,
                422,
                "application/json",
                &json_error(&e.to_string()),
                keep,
                &id_header,
            );
            return 422;
        }
    };
    let residue_budget = itdb_core::EvalOptions::default().residue_budget;
    let answered = ingest.with_model(|m| {
        let rel = m.relation(&atom.pred).ok_or_else(|| {
            format!(
                "unknown predicate `{}` (neither derived nor extensional)",
                atom.pred
            )
        })?;
        let answers_rel = query(rel, &atom, residue_budget).map_err(|e| e.to_string())?;
        Ok::<Vec<String>, String>(answers_rel.tuples().iter().map(|t| t.to_string()).collect())
    });
    match answered {
        Ok(answers) => {
            let resp = QueryResponse {
                pred: atom.pred.clone(),
                status: QueryStatus::Complete,
                answers,
                stats: itdb_core::EvalStats::default(),
                request_id: Some(request_id.to_string()),
            };
            let _ = http::write_response_with(
                w,
                200,
                "application/json",
                resp.to_json().as_bytes(),
                keep,
                &id_header,
            );
            200
        }
        Err(msg) => {
            let _ = http::write_response_with(
                w,
                422,
                "application/json",
                &json_error(&msg),
                keep,
                &id_header,
            );
            422
        }
    }
}

/// `POST /facts`: parse the JSON batch, run it through the WAL-backed
/// ingest pipeline, and answer `202 Accepted` with the applied/duplicate
/// accounting (or the appropriate rejection).
fn serve_facts(
    w: &mut impl Write,
    req: &Request,
    ctx: &WorkerCtx,
    keep: bool,
    request_id: &str,
) -> u16 {
    let id_header = [("X-Itdb-Request-Id", request_id)];
    let Some(ingest) = &ctx.ingest else {
        let _ = http::write_response_with(
            w,
            404,
            "application/json",
            &json_error("streaming ingestion is not enabled (start with --wal DIR)"),
            keep,
            &id_header,
        );
        return 404;
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s,
        _ => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error("empty or non-UTF-8 body: POST {\"facts\":[{\"pred\":…,\"tuple\":…}]}"),
                keep,
                &id_header,
            );
            return 400;
        }
    };
    let facts = match parse_facts_body(body) {
        Ok(f) => f,
        Err(msg) => {
            let _ = http::write_response_with(
                w,
                400,
                "application/json",
                &json_error(&msg),
                keep,
                &id_header,
            );
            return 400;
        }
    };
    match ingest.submit(request_id, facts) {
        Ok(out) => {
            use std::fmt::Write as _;
            let mut body = String::with_capacity(160);
            let _ = write!(
                body,
                "{{\"status\":\"accepted\",\"applied\":{},\"duplicates\":{},\"retracted\":{},\"duplicate_request\":{},\"seq\":",
                out.applied, out.duplicates, out.retracted, out.duplicate_request
            );
            match out.seq {
                // A deduplicated retry logged nothing: seq is null, not 0
                // — 0 would collide with nothing but lie about a log
                // position that does not exist.
                Some(seq) => {
                    let _ = write!(body, "{seq}");
                }
                None => body.push_str("null"),
            }
            body.push_str(",\"request_id\":\"");
            itdb_trace::json::escape_into(request_id, &mut body);
            body.push_str("\"}");
            let _ = http::write_response_with(
                w,
                202,
                "application/json",
                body.as_bytes(),
                keep,
                &id_header,
            );
            202
        }
        Err(IngestError::Backpressure { retry_after_s }) => {
            let retry = retry_after_s.to_string();
            let _ = http::write_response_with(
                w,
                503,
                "application/json",
                &json_error("ingest queue full, retry later"),
                keep,
                &[id_header[0], ("Retry-After", retry.as_str())],
            );
            503
        }
        Err(IngestError::Tripped {
            retry_after_s,
            reason,
        }) => {
            let retry = retry_after_s.to_string();
            let _ = http::write_response_with(
                w,
                503,
                "application/json",
                &json_error(&format!(
                    "batch rolled back: {reason}; the model is unchanged and still serving — retry with a smaller batch or raise the governor limits"
                )),
                keep,
                &[id_header[0], ("Retry-After", retry.as_str())],
            );
            503
        }
        Err(IngestError::Rejected(msg)) => {
            let _ = http::write_response_with(
                w,
                422,
                "application/json",
                &json_error(&msg),
                keep,
                &id_header,
            );
            422
        }
        Err(IngestError::Wal(msg)) => {
            let _ = http::write_response_with(
                w,
                500,
                "application/json",
                &json_error(&format!("WAL append failed: {msg}")),
                keep,
                &id_header,
            );
            500
        }
    }
}

fn parse_u64_header(req: &Request, name: &str) -> Result<Option<u64>, String> {
    match req.header(name) {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("header {name}: `{v}` is not a non-negative integer")),
    }
}

fn serve_events(w: &mut impl Write, ctx: &WorkerCtx) -> u16 {
    // Subscribe before sending headers so no event between the two is
    // missed.
    let sub = ctx.fanout.subscribe();
    if http::start_chunked(w, 200, "application/jsonl; charset=utf-8").is_err() {
        return 200;
    }
    let mut last_write = Instant::now();
    loop {
        if ctx.shutdown.is_cancelled() {
            break;
        }
        match sub.recv_timeout(Duration::from_millis(250)) {
            Some(line) => {
                let mut payload = Vec::with_capacity(line.len() + 1);
                payload.extend_from_slice(line.as_bytes());
                payload.push(b'\n');
                if http::write_chunk(w, &payload).is_err() {
                    return 200; // client went away
                }
                last_write = Instant::now();
            }
            None => {
                // Idle: a blank JSONL keepalive both keeps middleboxes
                // happy and detects dead clients.
                if last_write.elapsed() >= ctx.config.events_keepalive {
                    if http::write_chunk(w, b"\n").is_err() {
                        return 200;
                    }
                    last_write = Instant::now();
                }
            }
        }
    }
    let _ = http::finish_chunked(w);
    200
}
