//! The serve loop: a `TcpListener`, a fixed worker pool, and the four
//! endpoints (`/healthz`, `/metrics`, `/query`, `/events`).
//!
//! ## Concurrency model
//!
//! One acceptor thread hands sockets to a bounded queue drained by
//! `workers` threads; when the queue is full the acceptor answers `503`
//! immediately instead of letting connections pile up. Each worker
//! installs the shared [`FanoutSink`] on its **own** thread — the trace
//! registry is thread-local, so installation from the acceptor would
//! observe nothing — which is how `/events` subscribers see the typed
//! events of evaluations running on any worker.
//!
//! Every `/query` request evaluates under its own governor
//! ([`itdb_core::Service`]), so one request's fuel exhaustion or deadline
//! is invisible to its neighbors, and per-request statistics are folded
//! into the service aggregate explicitly rather than read from
//! (worker-thread-local, hence misleading) counters at render time.
//!
//! Graceful shutdown: cancelling the token stops the acceptor, closes the
//! queue, and lets workers finish their in-flight requests; `/events`
//! streams notice the token within one poll interval and terminate their
//! chunked response cleanly.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::http::{self, ParseError, Request};
use crate::metrics::HttpMetrics;
use itdb_core::{
    write_metrics_into, CancelToken, QueryRequest, Service, ServiceDefaults, Workload,
};
use itdb_trace::prom::PromText;
use itdb_trace::{FanoutSink, Sink};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`]; `Default` is sized for CI and small
/// deployments.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests. Note that one live `/events`
    /// stream occupies one worker for its whole duration.
    pub workers: usize,
    /// Accepted-but-unhandled connections held before the acceptor starts
    /// answering `503 Service Unavailable`.
    pub max_queued: usize,
    /// Socket read timeout (request parsing).
    pub read_timeout: Duration,
    /// Socket write timeout (response writing, per write).
    pub write_timeout: Duration,
    /// Server-side default resource ceilings for `/query` requests that
    /// bring none of their own.
    pub defaults: ServiceDefaults,
    /// Bounded per-subscriber `/events` queue depth; a stalled client
    /// loses events (counted) instead of stalling evaluation.
    pub events_queue_cap: usize,
    /// How often an idle `/events` stream emits a blank keepalive line
    /// (also bounds how fast a dead client is noticed).
    pub events_keepalive: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            max_queued: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            defaults: ServiceDefaults::default(),
            events_queue_cap: 1024,
            events_keepalive: Duration::from_secs(5),
        }
    }
}

/// The HTTP server: a bound listener plus the shared state every worker
/// sees.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    service: Arc<Service>,
    fanout: Arc<FanoutSink>,
    metrics: Arc<HttpMetrics>,
    config: ServeConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7464`, or port `0` for an ephemeral
    /// port in tests) and prepares the workload for serving.
    pub fn bind(
        addr: impl ToSocketAddrs,
        workload: Workload,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(Service::new(workload, config.defaults.clone()));
        let fanout = Arc::new(FanoutSink::new(config.events_queue_cap));
        Ok(Server {
            listener,
            local_addr,
            service,
            fanout,
            metrics: Arc::new(HttpMetrics::new()),
            config,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying per-request query service (for tests and embedding).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Runs the accept loop until `shutdown` is cancelled, then drains
    /// in-flight requests and joins the workers.
    pub fn run(self, shutdown: &CancelToken) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = sync_channel::<TcpStream>(self.config.max_queued);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.workers);
        for i in 0..self.config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = WorkerCtx {
                service: Arc::clone(&self.service),
                fanout: Arc::clone(&self.fanout),
                metrics: Arc::clone(&self.metrics),
                config: self.config.clone(),
                shutdown: shutdown.clone(),
            };
            let handle = thread::Builder::new()
                .name(format!("itdb-serve-{i}"))
                .spawn(move || worker_loop(&rx, &ctx))?;
            workers.push(handle);
        }
        while !shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream))
                        | Err(TrySendError::Disconnected(mut stream)) => {
                            // Best-effort 503 straight from the acceptor;
                            // never block accepting on a full pool.
                            let _ = http::write_response(
                                &mut stream,
                                503,
                                "application/json",
                                b"{\"error\":\"server at capacity, retry later\"}",
                            );
                            self.metrics
                                .record("-", "(queue-full)", 503, Duration::ZERO);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Closing the channel lets each worker drain what was already
        // queued and exit; in-flight requests complete.
        drop(tx);
        for handle in workers {
            let _ = handle.join();
        }
        itdb_trace::flush_sinks();
        Ok(())
    }
}

/// Everything a worker needs, bundled so the spawn closure stays small.
struct WorkerCtx {
    service: Arc<Service>,
    fanout: Arc<FanoutSink>,
    metrics: Arc<HttpMetrics>,
    config: ServeConfig,
    shutdown: CancelToken,
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &WorkerCtx) {
    // The trace registry is thread-local: the fan-out sink must be
    // installed *here*, on the evaluating thread, or `/events`
    // subscribers would never see this worker's evaluations.
    let sink_id = itdb_trace::add_sink(Arc::clone(&ctx.fanout) as Arc<dyn Sink>);
    loop {
        let stream = {
            let Ok(guard) = rx.lock() else { break };
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, ctx),
            Err(_) => break, // acceptor hung up: graceful shutdown
        }
    }
    itdb_trace::remove_sink(sink_id);
}

fn json_error(msg: &str) -> Vec<u8> {
    let mut out = String::with_capacity(msg.len() + 16);
    out.push_str("{\"error\":\"");
    itdb_trace::json::escape_into(msg, &mut out);
    out.push_str("\"}");
    out.into_bytes()
}

fn handle_connection(stream: TcpStream, ctx: &WorkerCtx) {
    let started = Instant::now();
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let req = match http::read_request(&mut reader) {
        Ok(req) => req,
        Err(ParseError::ConnectionClosed) => return,
        Err(e) => {
            let status = e.status();
            let _ = http::write_response(
                &mut writer,
                status,
                "application/json",
                &json_error(&e.to_string()),
            );
            ctx.metrics
                .record("-", "(parse-error)", status, started.elapsed());
            return;
        }
    };
    let path = req.path.split('?').next().unwrap_or("").to_string();
    let status = match (req.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => serve_healthz(&mut writer),
        ("GET", "/metrics") => serve_metrics(&mut writer, ctx),
        ("POST", "/query") => serve_query(&mut writer, &req, ctx),
        ("GET", "/events") => serve_events(&mut writer, ctx),
        (_, "/healthz" | "/metrics" | "/query" | "/events") => {
            let body = json_error("method not allowed");
            let _ = http::write_response(&mut writer, 405, "application/json", &body);
            405
        }
        _ => {
            let body = json_error(&format!("no such endpoint `{path}`"));
            let _ = http::write_response(&mut writer, 404, "application/json", &body);
            404
        }
    };
    let route = match path.as_str() {
        "/healthz" | "/metrics" | "/query" | "/events" => path.as_str(),
        _ => "(other)",
    };
    ctx.metrics
        .record(&req.method, route, status, started.elapsed());
}

fn serve_healthz(w: &mut impl Write) -> u16 {
    let _ = http::write_response(w, 200, "text/plain; charset=utf-8", b"ok\n");
    200
}

fn serve_metrics(w: &mut impl Write, ctx: &WorkerCtx) -> u16 {
    let totals = ctx.service.totals();
    let mut p = PromText::new();
    write_metrics_into(&mut p, &totals.stats, None, None);
    p.counter(
        "itdb_queries_total",
        "Queries answered over HTTP (any status).",
        totals.queries,
    );
    p.counter(
        "itdb_queries_interrupted_total",
        "HTTP queries whose per-request governor tripped.",
        totals.interrupted,
    );
    p.gauge(
        "itdb_events_subscribers",
        "Live /events subscribers.",
        ctx.fanout.subscriber_count() as f64,
    );
    p.counter(
        "itdb_events_dropped_total",
        "Events dropped across all /events subscribers (bounded queues).",
        ctx.fanout.dropped_total(),
    );
    ctx.metrics.write_into(&mut p);
    let body = p.finish();
    let _ = http::write_response(
        w,
        200,
        "text/plain; version=0.0.4; charset=utf-8",
        body.as_bytes(),
    );
    200
}

fn serve_query(w: &mut impl Write, req: &Request, ctx: &WorkerCtx) -> u16 {
    let pattern = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s.trim().to_string(),
        Ok(_) => {
            let _ = http::write_response(
                w,
                400,
                "application/json",
                &json_error("empty body: POST the query pattern, e.g. `p[t](X)`"),
            );
            return 400;
        }
        Err(_) => {
            let _ = http::write_response(
                w,
                400,
                "application/json",
                &json_error("body is not valid UTF-8"),
            );
            return 400;
        }
    };
    let fuel = match parse_u64_header(req, "x-itdb-fuel") {
        Ok(v) => v,
        Err(msg) => {
            let _ = http::write_response(w, 400, "application/json", &json_error(&msg));
            return 400;
        }
    };
    let timeout_ms = match parse_u64_header(req, "x-itdb-timeout-ms") {
        Ok(v) => v,
        Err(msg) => {
            let _ = http::write_response(w, 400, "application/json", &json_error(&msg));
            return 400;
        }
    };
    let query = QueryRequest {
        pattern,
        fuel,
        timeout: timeout_ms.map(Duration::from_millis),
    };
    match ctx.service.run_query(&query) {
        Ok(resp) => {
            let _ = http::write_response(w, 200, "application/json", resp.to_json().as_bytes());
            200
        }
        Err(e) => {
            // Evaluation-layer rejections (bad pattern, unknown
            // predicate) are the client's fault, not the server's.
            let _ = http::write_response(w, 422, "application/json", &json_error(&e.to_string()));
            422
        }
    }
}

fn parse_u64_header(req: &Request, name: &str) -> Result<Option<u64>, String> {
    match req.header(name) {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("header {name}: `{v}` is not a non-negative integer")),
    }
}

fn serve_events(w: &mut impl Write, ctx: &WorkerCtx) -> u16 {
    // Subscribe before sending headers so no event between the two is
    // missed.
    let sub = ctx.fanout.subscribe();
    if http::start_chunked(w, 200, "application/jsonl; charset=utf-8").is_err() {
        return 200;
    }
    let mut last_write = Instant::now();
    loop {
        if ctx.shutdown.is_cancelled() {
            break;
        }
        match sub.recv_timeout(Duration::from_millis(250)) {
            Some(line) => {
                let mut payload = Vec::with_capacity(line.len() + 1);
                payload.extend_from_slice(line.as_bytes());
                payload.push(b'\n');
                if http::write_chunk(w, &payload).is_err() {
                    return 200; // client went away
                }
                last_write = Instant::now();
            }
            None => {
                // Idle: a blank JSONL keepalive both keeps middleboxes
                // happy and detects dead clients.
                if last_write.elapsed() >= ctx.config.events_keepalive {
                    if http::write_chunk(w, b"\n").is_err() {
                        return 200;
                    }
                    last_write = Instant::now();
                }
            }
        }
    }
    let _ = http::finish_chunked(w);
    200
}
