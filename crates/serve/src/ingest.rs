//! Streaming ingestion: the WAL-backed write path behind `POST /facts`.
//!
//! ## Crash consistency
//!
//! Every accepted batch takes the same journey, serialized under one
//! lock so the durable log and the in-memory model never disagree about
//! order:
//!
//! 1. **Dedup check** — a batch whose `X-Itdb-Request-Id` is still in the
//!    dedup window is answered from the remembered outcome without
//!    touching the WAL or the model (at-least-once clients get
//!    exactly-once application).
//! 2. **WAL append** — the encoded batch goes to the write-ahead log
//!    first and is fsynced per the configured flush policy. Only after
//!    the append succeeds does the model change, so every batch the
//!    client saw acknowledged is re-derivable from checkpoint + log.
//! 3. **Incremental apply** — [`ResidentModel::apply_ops`] folds assert
//!    operations in (semi-naive delta propagation) and handles retract
//!    operations with DRed delete/re-derive maintenance. A batch the
//!    model *rejects* (unknown schema, intensional predicate) or *rolls
//!    back* (governor trip — the model restores its exact pre-batch
//!    state and keeps serving) still sits in the WAL — both decisions
//!    are deterministic, so boot-time replay reproduces them identically
//!    and the log stays a faithful request history.
//! 4. **Checkpoint + compaction** — every `checkpoint_every` records the
//!    full resident state (EDB + IDB + derivation log + dedup window +
//!    applied sequence) is written to the snapshot store *first*, and
//!    only after that write succeeds does the WAL drop sealed segments
//!    the checkpoint covers. A crash between the two steps leaves extra
//!    log (harmless — replay skips records at or below the checkpoint
//!    sequence), never missing log.
//!
//! Boot recovery inverts the pipeline: restore the newest valid
//! checkpoint (or start from the workload file), then replay every WAL
//! record past the checkpoint's sequence. Replay refuses a **sequence
//! gap**: if the first record past the restored sequence is not the
//! immediate successor, a compacted segment the (lost or unreadable)
//! checkpoint covered is missing, and replaying the surviving suffix
//! would silently build the wrong model. [`ResidentModel`] applies
//! batches deterministically and its snapshots preserve tuple order
//! exactly, so a SIGKILL'd server restarts with **byte-identical**
//! relations to an uninterrupted run — including mid-retraction kills:
//! the snapshot carries the derivation log, which keeps the DRed
//! over-delete mode identical across the restart.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_core::{ApplyError, EvalOptions, Fact, Op, ResidentModel, Workload};
use itdb_lrp::parser::parse_tuple;
use itdb_store::{ByteReader, ByteWriter, Section, SnapshotStore, Wal, WalOptions, WalStats};
use itdb_trace::EventKind;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Legacy section tag for the pre-retraction dedup window (id, applied,
/// duplicates). Still decoded so old checkpoints restore.
pub const SEC_INGEST_DEDUP_V1: u8 = 30;
/// Section tag carrying the serve-layer dedup window inside a resident
/// checkpoint (the model's own sections use tags 21–24): id, applied,
/// duplicates, retracted.
pub const SEC_INGEST_DEDUP: u8 = 31;
/// WAL record payload format version: v2 carries a per-entry op byte
/// (assert/retract); v1 records decode as all-assert batches.
const BATCH_VERSION: u8 = 2;
const OP_ASSERT: u8 = 0;
const OP_RETRACT: u8 = 1;

/// Configuration for the streaming-ingestion subsystem.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Directory holding the WAL segments and (under `checkpoint/`) the
    /// resident-model snapshot store.
    pub wal_dir: PathBuf,
    /// Segment rotation and fsync batching for the log.
    pub wal: WalOptions,
    /// Request ids remembered for idempotent replay of retried batches.
    /// Must be ≥ 1 — see [`IngestConfig::validate`].
    pub dedup_window: usize,
    /// Ingest requests allowed in flight before `POST /facts` answers
    /// `503` with a `Retry-After`.
    pub max_pending: u64,
    /// WAL records between resident checkpoints (each checkpoint also
    /// compacts the log).
    pub checkpoint_every: u64,
    /// Evaluation options for the resident model (governors, provenance).
    /// Defaults keep provenance recording on so retractions use the
    /// precise provenance-cone over-delete rather than the wipe fallback.
    pub eval: EvalOptions,
}

/// A structurally invalid [`IngestConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestConfigError {
    /// `dedup_window` was 0: a zero-capacity window cannot remember any
    /// request id, so every retried batch would re-apply — at-least-once
    /// clients would silently lose exactly-once semantics.
    ZeroDedupWindow,
}

impl fmt::Display for IngestConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestConfigError::ZeroDedupWindow => write!(
                f,
                "dedup_window must be at least 1 (0 would disable idempotent replay)"
            ),
        }
    }
}

impl std::error::Error for IngestConfigError {}

impl IngestConfig {
    /// Defaults sized like the rest of the serve stack: small enough for
    /// CI, sane for a single-node deployment.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        IngestConfig {
            wal_dir: wal_dir.into(),
            wal: WalOptions::default(),
            dedup_window: 1024,
            max_pending: 128,
            checkpoint_every: 256,
            eval: EvalOptions {
                provenance: true,
                ..EvalOptions::default()
            },
        }
    }

    /// Validates boundary values. [`Ingest::open`] refuses an invalid
    /// configuration rather than silently adjusting it.
    pub fn validate(&self) -> Result<(), IngestConfigError> {
        if self.dedup_window == 0 {
            return Err(IngestConfigError::ZeroDedupWindow);
        }
        Ok(())
    }
}

/// One decoded `POST /facts` batch as it travels through the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactBatch {
    /// The request id the batch arrived under (dedup key).
    pub request_id: String,
    /// The operations, in request order.
    pub ops: Vec<Op>,
}

/// Encodes a batch as a WAL record payload. Tuples travel in their
/// textual closed form — the format round-trips exactly (pinned by the
/// `prop_workload` suite), stays human-readable in a hex dump, and is
/// versioned independently of the in-memory layout.
pub fn encode_batch(batch: &FactBatch) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(BATCH_VERSION);
    w.put_str(&batch.request_id);
    w.put_usize(batch.ops.len());
    for op in &batch.ops {
        w.put_u8(if op.is_retract() {
            OP_RETRACT
        } else {
            OP_ASSERT
        });
        let f = op.fact();
        w.put_str(&f.pred);
        w.put_str(&f.tuple.to_string());
    }
    w.into_bytes()
}

/// Decodes a WAL record payload written by [`encode_batch`] — either
/// format version. v1 records (insert-only, written before retraction
/// support) decode as all-assert batches.
pub fn decode_batch(payload: &[u8]) -> Result<FactBatch, String> {
    let mut r = ByteReader::new(payload);
    let version = r.get_u8().map_err(|e| e.to_string())?;
    if version != 1 && version != BATCH_VERSION {
        return Err(format!("unknown fact-batch version {version}"));
    }
    let request_id = r.get_str().map_err(|e| e.to_string())?;
    let count = r.get_usize().map_err(|e| e.to_string())?;
    let mut ops = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let kind = if version == 1 {
            OP_ASSERT
        } else {
            r.get_u8().map_err(|e| e.to_string())?
        };
        let pred = r.get_str().map_err(|e| e.to_string())?;
        let text = r.get_str().map_err(|e| e.to_string())?;
        let tuple = parse_tuple(&text).map_err(|e| format!("bad tuple in WAL record: {e}"))?;
        let fact = Fact { pred, tuple };
        ops.push(match kind {
            OP_ASSERT => Op::Assert(fact),
            OP_RETRACT => Op::Retract(fact),
            other => return Err(format!("unknown op kind {other} in WAL record")),
        });
    }
    Ok(FactBatch { request_id, ops })
}

/// What one accepted (or deduplicated) ingest request did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// EDB tuples newly inserted.
    pub applied: u64,
    /// EDB tuples already covered by the relation.
    pub duplicates: u64,
    /// Stored EDB tuples removed by retract operations.
    pub retracted: u64,
    /// The WAL sequence the batch was logged at. `None` for a
    /// deduplicated request — nothing was re-logged. (Sequences start at
    /// 1, but `None` is the honest encoding: a fresh log's first record
    /// must stay distinguishable from "not logged".)
    pub seq: Option<u64>,
    /// Whether the request id was already in the dedup window (the
    /// counts above are the remembered first-application counts).
    pub duplicate_request: bool,
}

/// Why an ingest request was not applied.
#[derive(Debug)]
pub enum IngestError {
    /// Too many ingest requests in flight; retry after the given delay.
    Backpressure {
        /// Suggested client backoff, seconds.
        retry_after_s: u64,
    },
    /// A governor tripped mid-apply and the batch was rolled back. The
    /// model restored its exact pre-batch state and keeps serving reads
    /// and subsequent writes — this is a per-batch refusal, not a wedged
    /// server. Retrying the identical batch under the same limits will
    /// trip identically, so the retry hint is for *smaller* follow-ups.
    Tripped {
        /// Suggested client backoff, seconds.
        retry_after_s: u64,
        /// What tripped.
        reason: String,
    },
    /// The model rejected the batch (schema mismatch, intensional or
    /// unknown predicate). Deterministic: replay re-rejects it
    /// identically.
    Rejected(String),
    /// The WAL append or checkpoint write failed; nothing was applied.
    Wal(String),
}

/// The bounded request-id window with the outcome remembered per id, so
/// a retried batch is answered idempotently.
#[derive(Debug, Default)]
struct DedupWindow {
    cap: usize,
    entries: VecDeque<(String, u64, u64, u64)>,
}

impl DedupWindow {
    /// `cap` is clamped to ≥ 1 as defense in depth; the public
    /// configuration path rejects 0 outright (see
    /// [`IngestConfig::validate`]), so the clamp is unreachable from
    /// `Ingest::open`.
    fn new(cap: usize) -> Self {
        DedupWindow {
            cap: cap.max(1),
            entries: VecDeque::new(),
        }
    }

    fn get(&self, id: &str) -> Option<(u64, u64, u64)> {
        self.entries
            .iter()
            .find(|(i, _, _, _)| i == id)
            .map(|(_, a, d, r)| (*a, *d, *r))
    }

    fn insert(&mut self, id: String, applied: u64, duplicates: u64, retracted: u64) {
        if self.entries.len() >= self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back((id, applied, duplicates, retracted));
    }

    fn encode_section(&self) -> Section {
        let mut w = ByteWriter::new();
        w.put_usize(self.entries.len());
        for (id, applied, duplicates, retracted) in &self.entries {
            w.put_str(id);
            w.put_u64(*applied);
            w.put_u64(*duplicates);
            w.put_u64(*retracted);
        }
        Section::new(SEC_INGEST_DEDUP, w.into_bytes())
    }

    /// Decodes the v2 section when present, falling back to the v1
    /// section of pre-retraction checkpoints (retracted counts of 0).
    fn decode_section(cap: usize, sections: &[Section]) -> Self {
        let mut window = DedupWindow::new(cap);
        if let Some(section) = sections.iter().find(|s| s.tag == SEC_INGEST_DEDUP) {
            let mut r = ByteReader::new(&section.payload);
            let Ok(count) = r.get_usize() else {
                return window;
            };
            for _ in 0..count {
                let (Ok(id), Ok(applied), Ok(duplicates), Ok(retracted)) =
                    (r.get_str(), r.get_u64(), r.get_u64(), r.get_u64())
                else {
                    break;
                };
                window.insert(id, applied, duplicates, retracted);
            }
            return window;
        }
        let Some(section) = sections.iter().find(|s| s.tag == SEC_INGEST_DEDUP_V1) else {
            return window;
        };
        let mut r = ByteReader::new(&section.payload);
        let Ok(count) = r.get_usize() else {
            return window;
        };
        for _ in 0..count {
            let (Ok(id), Ok(applied), Ok(duplicates)) = (r.get_str(), r.get_u64(), r.get_u64())
            else {
                break;
            };
            window.insert(id, applied, duplicates, 0);
        }
        window
    }
}

/// Everything guarded by the ingest lock: the log, the model, the dedup
/// window, and the checkpoint cadence.
struct IngestInner {
    wal: Wal,
    model: ResidentModel,
    dedup: DedupWindow,
    store: SnapshotStore,
    applied_seq: u64,
    records_since_checkpoint: u64,
}

/// How boot recovery went (printed at startup, exported as metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestBootReport {
    /// Whether a resident checkpoint was restored (vs a fresh build from
    /// the workload file).
    pub restored_checkpoint: bool,
    /// WAL records replayed on top of the restored state.
    pub replayed_records: u64,
    /// Bytes of torn tail truncated from the newest segment.
    pub truncated_tail_bytes: u64,
    /// The WAL sequence the model is current through after replay.
    pub last_seq: u64,
}

/// The streaming-ingestion subsystem: WAL + resident model + dedup
/// window behind one lock, with lock-free counters for `/metrics`.
pub struct Ingest {
    inner: Mutex<IngestInner>,
    config: IngestConfig,
    pending: AtomicU64,
    facts_ingested: AtomicU64,
    facts_duplicate: AtomicU64,
    facts_retracted: AtomicU64,
    retraction_overdeleted: AtomicU64,
    retraction_rederived: AtomicU64,
    batches_tripped: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoint_failures: AtomicU64,
    boot: IngestBootReport,
}

impl Ingest {
    /// Opens (or creates) the WAL directory, restores the newest valid
    /// resident checkpoint, replays the log past it, and returns the
    /// caught-up subsystem. The workload file supplies the program (a
    /// checkpoint written by a different program is refused and ingestion
    /// starts fresh from the file).
    pub fn open(config: IngestConfig, workload: &Workload) -> io::Result<Ingest> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let opts = config.eval.clone();
        std::fs::create_dir_all(&config.wal_dir)?;
        let store =
            SnapshotStore::open(config.wal_dir.join("checkpoint")).map_err(io::Error::other)?;
        let mut boot = IngestBootReport::default();
        let (mut model, mut dedup, mut applied_seq) = match store.load_latest() {
            Ok(rec) => match rec.snapshot {
                Some((_, sections)) => match ResidentModel::restore_from_sections(
                    workload.program.clone(),
                    opts.clone(),
                    &sections,
                ) {
                    Ok((model, seq)) => {
                        boot.restored_checkpoint = true;
                        let dedup = DedupWindow::decode_section(config.dedup_window, &sections);
                        (model, dedup, seq)
                    }
                    Err(_) => Self::fresh(workload, &opts, config.dedup_window)?,
                },
                None => Self::fresh(workload, &opts, config.dedup_window)?,
            },
            Err(_) => Self::fresh(workload, &opts, config.dedup_window)?,
        };
        let (mut wal, recovery) =
            Wal::open(&config.wal_dir, config.wal).map_err(io::Error::other)?;
        boot.truncated_tail_bytes = recovery.truncated_tail_bytes;
        // Gap guard: the first record past the restored sequence must be
        // its immediate successor. Anything later means a compacted
        // segment the checkpoint covered is gone while the checkpoint
        // itself did not restore (corrupt, deleted, or from another
        // program) — replaying only the surviving suffix would silently
        // produce the wrong model.
        if let Some(first) = recovery.records.iter().find(|r| r.seq > applied_seq) {
            if first.seq > applied_seq + 1 {
                return Err(io::Error::other(format!(
                    "WAL resumes at seq {} but the restored state is only current \
                     through {}; records in between were compacted away with the \
                     checkpoint that covered them — refusing to replay a suffix \
                     into the wrong model",
                    first.seq, applied_seq
                )));
            }
        }
        let (facts_ingested, facts_duplicate) = (AtomicU64::new(0), AtomicU64::new(0));
        let facts_retracted = AtomicU64::new(0);
        let retraction_overdeleted = AtomicU64::new(0);
        let retraction_rederived = AtomicU64::new(0);
        for record in &recovery.records {
            if record.seq <= applied_seq {
                continue;
            }
            let batch = decode_batch(&record.payload).map_err(io::Error::other)?;
            boot.replayed_records += 1;
            applied_seq = record.seq;
            if dedup.get(&batch.request_id).is_some() {
                continue;
            }
            match model.apply_ops(&batch.ops) {
                Ok(out) => {
                    facts_ingested.fetch_add(out.applied, Ordering::Relaxed);
                    facts_duplicate.fetch_add(out.duplicates, Ordering::Relaxed);
                    facts_retracted.fetch_add(out.retracted, Ordering::Relaxed);
                    retraction_overdeleted.fetch_add(out.overdeleted, Ordering::Relaxed);
                    retraction_rederived.fetch_add(out.rederived, Ordering::Relaxed);
                    dedup.insert(batch.request_id, out.applied, out.duplicates, out.retracted);
                }
                // The live path answered this batch 422/503 and moved on;
                // both rejection and rollback are deterministic and leave
                // the model unchanged, so replay shrugs identically.
                Err(_) => continue,
            }
        }
        // A torn tail was truncated: records past the tear were never
        // acknowledged, but the next append must not reuse their
        // sequence numbers against a model that already advanced.
        if wal.next_seq() <= applied_seq {
            return Err(io::Error::other(format!(
                "WAL ends at seq {} but the checkpoint is current through {}; \
                 refusing to serve writes from a log older than the model",
                wal.next_seq().saturating_sub(1),
                applied_seq
            )));
        }
        boot.last_seq = applied_seq;
        itdb_trace::emit(|| EventKind::WalReplayed {
            records: boot.replayed_records,
            truncated_bytes: boot.truncated_tail_bytes,
            last_seq: boot.last_seq,
        });
        // Durably seal recovery: everything replayed is already on disk,
        // but the truncation of a torn tail must be too.
        wal.flush().map_err(io::Error::other)?;
        Ok(Ingest {
            inner: Mutex::new(IngestInner {
                wal,
                model,
                dedup,
                store,
                applied_seq,
                records_since_checkpoint: 0,
            }),
            config,
            pending: AtomicU64::new(0),
            facts_ingested,
            facts_duplicate,
            facts_retracted,
            retraction_overdeleted,
            retraction_rederived,
            batches_tripped: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            boot,
        })
    }

    fn fresh(
        workload: &Workload,
        opts: &EvalOptions,
        dedup_cap: usize,
    ) -> io::Result<(ResidentModel, DedupWindow, u64)> {
        let model =
            ResidentModel::new(workload.program.clone(), workload.edb.clone(), opts.clone())
                .map_err(io::Error::other)?;
        Ok((model, DedupWindow::new(dedup_cap), 0))
    }

    /// How boot recovery went.
    pub fn boot_report(&self) -> IngestBootReport {
        self.boot
    }

    /// Ingest requests currently in flight (the `itdb_ingest_queue_depth`
    /// gauge).
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Total EDB tuples newly inserted via `POST /facts`.
    pub fn facts_ingested(&self) -> u64 {
        self.facts_ingested.load(Ordering::Relaxed)
    }

    /// Total EDB tuples answered as duplicates (subsumed or re-sent).
    pub fn facts_duplicate(&self) -> u64 {
        self.facts_duplicate.load(Ordering::Relaxed)
    }

    /// Total stored EDB tuples removed by retract operations.
    pub fn facts_retracted(&self) -> u64 {
        self.facts_retracted.load(Ordering::Relaxed)
    }

    /// Total IDB tuples removed by DRed over-deletes.
    pub fn retraction_overdeleted(&self) -> u64 {
        self.retraction_overdeleted.load(Ordering::Relaxed)
    }

    /// Total IDB tuples re-inserted by DRed re-derives.
    pub fn retraction_rederived(&self) -> u64 {
        self.retraction_rederived.load(Ordering::Relaxed)
    }

    /// Batches refused with a governor trip and rolled back.
    pub fn batches_tripped(&self) -> u64 {
        self.batches_tripped.load(Ordering::Relaxed)
    }

    /// Resident checkpoints written (each also compacted the WAL).
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written.load(Ordering::Relaxed)
    }

    /// Checkpoint writes that failed (ingestion continues on the WAL).
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures.load(Ordering::Relaxed)
    }

    /// A snapshot of the WAL's counters (appends, fsyncs, live bytes).
    pub fn wal_stats(&self) -> WalStats {
        self.lock().wal.stats()
    }

    /// Runs `f` with the resident model — the closed-form read path for
    /// `/query` in ingest mode.
    pub fn with_model<T>(&self, f: impl FnOnce(&ResidentModel) -> T) -> T {
        f(&self.lock().model)
    }

    /// The ingest state holds no invariant a panicking holder could have
    /// broken mid-flight that recovery would make worse: the WAL is
    /// append-only and the model rolls every failed batch back to its
    /// pre-batch state, so recover the lock rather than wedging every
    /// writer forever.
    fn lock(&self) -> std::sync::MutexGuard<'_, IngestInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The full ingest pipeline for one request: backpressure check,
    /// dedup, WAL append (durable per policy), incremental apply,
    /// checkpoint cadence. See the module docs for the ordering argument.
    pub fn submit(&self, request_id: &str, ops: Vec<Op>) -> Result<IngestOutcome, IngestError> {
        let depth = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        let _guard = PendingGuard(&self.pending);
        if depth > self.config.max_pending {
            return Err(IngestError::Backpressure {
                retry_after_s: (depth / self.config.max_pending).clamp(1, 30),
            });
        }
        let mut inner = self.lock();
        if let Some((applied, duplicates, retracted)) = inner.dedup.get(request_id) {
            self.facts_duplicate
                .fetch_add(ops.len() as u64, Ordering::Relaxed);
            return Ok(IngestOutcome {
                applied,
                duplicates,
                retracted,
                seq: None,
                duplicate_request: true,
            });
        }
        let batch = FactBatch {
            request_id: request_id.to_string(),
            ops,
        };
        let payload = encode_batch(&batch);
        let seq = inner
            .wal
            .append(&payload)
            .map_err(|e| IngestError::Wal(e.to_string()))?;
        let out = match inner.model.apply_ops(&batch.ops) {
            Ok(out) => out,
            // The record stays in the log either way; replay reproduces
            // the same deterministic decision, so the model and the log
            // still agree.
            Err(ApplyError::Invalid(e)) => return Err(IngestError::Rejected(e.to_string())),
            Err(ApplyError::RolledBack(e)) => {
                self.batches_tripped.fetch_add(1, Ordering::Relaxed);
                return Err(IngestError::Tripped {
                    retry_after_s: 1,
                    reason: e.to_string(),
                });
            }
        };
        inner.applied_seq = seq;
        inner.records_since_checkpoint += 1;
        inner
            .dedup
            .insert(batch.request_id, out.applied, out.duplicates, out.retracted);
        self.facts_ingested
            .fetch_add(out.applied, Ordering::Relaxed);
        self.facts_duplicate
            .fetch_add(out.duplicates, Ordering::Relaxed);
        self.facts_retracted
            .fetch_add(out.retracted, Ordering::Relaxed);
        self.retraction_overdeleted
            .fetch_add(out.overdeleted, Ordering::Relaxed);
        self.retraction_rederived
            .fetch_add(out.rederived, Ordering::Relaxed);
        itdb_trace::emit(|| EventKind::FactsIngested {
            seq,
            applied: out.applied,
            duplicates: out.duplicates,
            full_reeval: out.full_reeval,
        });
        if inner.records_since_checkpoint >= self.config.checkpoint_every {
            self.checkpoint_locked(&mut inner);
        }
        Ok(IngestOutcome {
            applied: out.applied,
            duplicates: out.duplicates,
            retracted: out.retracted,
            seq: Some(seq),
            duplicate_request: false,
        })
    }

    /// Writes a resident checkpoint and compacts the log through it.
    /// Ordering matters: the snapshot is durably on disk *before* any
    /// segment is deleted, so a crash between the two steps can only
    /// leave surplus log, never a gap. Failure is survivable — the WAL
    /// still holds everything — so it is counted, not propagated.
    fn checkpoint_locked(&self, inner: &mut IngestInner) {
        let mut sections = inner.model.snapshot_sections(inner.applied_seq);
        sections.push(inner.dedup.encode_section());
        match inner.store.write(&sections) {
            Ok(_) => {
                self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                inner.records_since_checkpoint = 0;
                let seq = inner.applied_seq;
                let _ = inner.wal.compact_through(seq);
            }
            Err(_) => {
                self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                // Back off: retry after another full cadence, not on
                // every subsequent batch.
                inner.records_since_checkpoint = 0;
            }
        }
    }

    /// Forces a checkpoint now (graceful shutdown).
    pub fn flush(&self) {
        let mut inner = self.lock();
        let _ = inner.wal.flush();
        if inner.records_since_checkpoint > 0 {
            self.checkpoint_locked(&mut inner);
        }
    }
}

/// Decrements the pending gauge when an ingest request leaves the
/// subsystem, however it leaves.
struct PendingGuard<'a>(&'a AtomicU64);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Parses the `POST /facts` JSON body:
/// `{"facts":[{"pred":"e","tuple":"(6n+1)"},
///            {"op":"retract","pred":"e","tuple":"(6n+1)"}, …]}`.
/// The `op` field defaults to `"assert"`.
pub fn parse_facts_body(body: &str) -> Result<Vec<Op>, String> {
    let value = itdb_trace::json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let facts = value
        .get("facts")
        .and_then(|f| f.as_array())
        .ok_or_else(|| "expected {\"facts\":[…]} with an array of facts".to_string())?;
    if facts.is_empty() {
        return Err("empty batch: `facts` must hold at least one fact".to_string());
    }
    let mut out = Vec::with_capacity(facts.len());
    for (i, f) in facts.iter().enumerate() {
        let retract = match f.get("op").and_then(|o| o.as_str()) {
            None | Some("assert") => false,
            Some("retract") => true,
            Some(other) => {
                return Err(format!(
                    "facts[{i}]: unknown op `{other}` (expected \"assert\" or \"retract\")"
                ))
            }
        };
        let pred = f
            .get("pred")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("facts[{i}]: missing string field `pred`"))?;
        let text = f
            .get("tuple")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("facts[{i}]: missing string field `tuple`"))?;
        let tuple = parse_tuple(text).map_err(|e| format!("facts[{i}]: bad tuple: {e}"))?;
        let fact = Fact {
            pred: pred.to_string(),
            tuple,
        };
        out.push(if retract {
            Op::Retract(fact)
        } else {
            Op::Assert(fact)
        });
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use itdb_core::parse_workload;

    const WORKLOAD: &str = "\
        tuple course (168n+8, 168n+10; database) : T2 = T1 + 2\n\
        rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).\n\
        rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).\n";

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "itdb_ingest_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &PathBuf) -> IngestConfig {
        IngestConfig {
            checkpoint_every: 4,
            ..IngestConfig::new(dir)
        }
    }

    fn ops(text: &str) -> Vec<Op> {
        parse_facts_body(text).unwrap()
    }

    #[test]
    fn batch_codec_round_trips() {
        let batch = FactBatch {
            request_id: "req-1".to_string(),
            ops: ops(
                r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"},{"op":"retract","pred":"course","tuple":"(168n+8, 168n+10; database) : T2 = T1 + 2"}]}"#,
            ),
        };
        let decoded = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(decoded, batch);
        assert!(decoded.ops[1].is_retract());
        assert!(decode_batch(&[9, 9, 9]).is_err(), "unknown version");
    }

    #[test]
    fn v1_records_decode_as_assert_batches() {
        // Hand-rolled v1 payload: version, request id, count, pred, tuple.
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_str("old-req");
        w.put_usize(1);
        w.put_str("course");
        w.put_str("(168n+30, 168n+32; compilers) : T2 = T1 + 2");
        let decoded = decode_batch(&w.into_bytes()).unwrap();
        assert_eq!(decoded.request_id, "old-req");
        assert_eq!(decoded.ops.len(), 1);
        assert!(
            !decoded.ops[0].is_retract(),
            "pre-retraction records are all asserts"
        );
    }

    #[test]
    fn body_parser_reports_defects() {
        assert!(parse_facts_body("not json").is_err());
        assert!(parse_facts_body("{\"facts\":[]}").is_err(), "empty batch");
        assert!(parse_facts_body("{\"facts\":[{\"pred\":\"e\"}]}").is_err());
        assert!(parse_facts_body("{\"facts\":[{\"pred\":\"e\",\"tuple\":\"(((\"}]}").is_err());
        assert!(
            parse_facts_body(
                "{\"facts\":[{\"op\":\"upsert\",\"pred\":\"e\",\"tuple\":\"(6n+1)\"}]}"
            )
            .is_err(),
            "unknown op"
        );
        assert_eq!(
            parse_facts_body("{\"facts\":[{\"pred\":\"e\",\"tuple\":\"(6n+1)\"}]}")
                .unwrap()
                .len(),
            1
        );
        let parsed = parse_facts_body(
            "{\"facts\":[{\"op\":\"retract\",\"pred\":\"e\",\"tuple\":\"(6n+1)\"}]}",
        )
        .unwrap();
        assert!(parsed[0].is_retract());
    }

    #[test]
    fn zero_dedup_window_is_rejected() {
        let dir = temp_dir("zerodedup");
        let workload = parse_workload(WORKLOAD).unwrap();
        let bad = IngestConfig {
            dedup_window: 0,
            ..config(&dir)
        };
        assert_eq!(
            bad.validate(),
            Err(IngestConfigError::ZeroDedupWindow),
            "typed validation error"
        );
        let err = match Ingest::open(bad, &workload) {
            Ok(_) => panic!("zero dedup window must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("dedup_window"), "{err}");
        // Boundary: 1 is the smallest valid window.
        let ok = IngestConfig {
            dedup_window: 1,
            ..config(&dir)
        };
        assert!(ok.validate().is_ok());
        let ingest = Ingest::open(ok, &workload).unwrap();
        drop(ingest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_applies_dedups_and_recovers() {
        let dir = temp_dir("roundtrip");
        let workload = parse_workload(WORKLOAD).unwrap();
        {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            let batch = ops(
                r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#,
            );
            let out = ingest.submit("req-1", batch.clone()).unwrap();
            assert_eq!(out.applied, 1);
            assert!(!out.duplicate_request);
            assert_eq!(out.seq, Some(1), "first record of a fresh log is seq 1");
            // Same id: answered from the window, nothing re-applied.
            let again = ingest.submit("req-1", batch.clone()).unwrap();
            assert!(again.duplicate_request);
            assert_eq!(again.applied, 1, "remembered first-application count");
            assert_eq!(again.seq, None, "deduplicated requests log nothing");
            // Same facts under a new id: logged, applied as duplicates.
            let dup = ingest.submit("req-2", batch).unwrap();
            assert!(!dup.duplicate_request);
            assert_eq!(dup.applied, 0);
            assert_eq!(dup.duplicates, 1);
            assert_eq!(dup.seq, Some(2));
            assert_eq!(ingest.facts_ingested(), 1);
            ingest.flush();
        }
        // Reopen: checkpoint + WAL replay must reproduce the state.
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert!(
            reopened.boot_report().restored_checkpoint,
            "flush wrote a checkpoint"
        );
        let has_new_course = reopened.with_model(|m| {
            m.relation("problems")
                .map(|r| r.to_string().contains("168n+32"))
                .unwrap_or(false)
        });
        assert!(has_new_course, "ingested facts survive restart");
        // The dedup window survives the checkpoint too.
        let out = reopened
            .submit(
                "req-1",
                ops(r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#),
            )
            .unwrap();
        assert!(out.duplicate_request, "dedup window restored");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_without_checkpoint_is_identical() {
        let dir = temp_dir("replay");
        let workload = parse_workload(WORKLOAD).unwrap();
        let uninterrupted = {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            for i in 0..3 {
                let body = format!(
                    r#"{{"facts":[{{"pred":"course","tuple":"(168n+{}, 168n+{}; extra) : T2 = T1 + 2"}}]}}"#,
                    40 + 10 * i,
                    42 + 10 * i
                );
                ingest.submit(&format!("req-{i}"), ops(&body)).unwrap();
            }
            // No flush: drop without a checkpoint, like a SIGKILL.
            ingest.with_model(|m| m.relation("problems").map(|r| r.to_string()))
        };
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert_eq!(reopened.boot_report().replayed_records, 3);
        let replayed = reopened.with_model(|m| m.relation("problems").map(|r| r.to_string()));
        assert_eq!(uninterrupted, replayed, "replay is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retraction_applies_and_replays_identically() {
        let dir = temp_dir("retract");
        let workload = parse_workload(WORKLOAD).unwrap();
        let uninterrupted = {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            let out = ingest
                .submit(
                    "a-1",
                    ops(r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#),
                )
                .unwrap();
            assert_eq!(out.applied, 1);
            let out = ingest
                .submit(
                    "r-1",
                    ops(r#"{"facts":[{"op":"retract","pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#),
                )
                .unwrap();
            assert_eq!(out.retracted, 1);
            assert_eq!(ingest.facts_retracted(), 1);
            assert!(
                ingest.retraction_overdeleted() >= 1,
                "consequences over-deleted"
            );
            // No flush: recovery must replay the retraction too.
            ingest.with_model(|m| m.relation("problems").map(|r| r.to_string()))
        };
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert_eq!(reopened.boot_report().replayed_records, 2);
        assert_eq!(reopened.facts_retracted(), 1, "replayed retraction counted");
        let replayed = reopened.with_model(|m| m.relation("problems").map(|r| r.to_string()));
        assert_eq!(
            uninterrupted, replayed,
            "retraction replay is byte-identical"
        );
        assert!(
            !replayed.unwrap().contains("168n+32"),
            "retracted consequences stay gone after restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_batches_do_not_poison_replay() {
        let dir = temp_dir("rejected");
        let workload = parse_workload(WORKLOAD).unwrap();
        {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            // Intensional predicate: rejected, but WAL'd first.
            let bad =
                ops(r#"{"facts":[{"pred":"problems","tuple":"(6n+1, 6n+3; x) : T2 = T1 + 2"}]}"#);
            assert!(matches!(
                ingest.submit("bad-1", bad),
                Err(IngestError::Rejected(_))
            ));
            // Retracting an unknown predicate: same deterministic 422.
            let bad = ops(r#"{"facts":[{"op":"retract","pred":"ghost","tuple":"(6n+1; x)"}]}"#);
            assert!(matches!(
                ingest.submit("bad-2", bad),
                Err(IngestError::Rejected(_))
            ));
            let good = ops(
                r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#,
            );
            ingest.submit("good-1", good).unwrap();
        }
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert_eq!(
            reopened.boot_report().replayed_records,
            3,
            "all records replayed; the bad ones re-rejected"
        );
        assert_eq!(reopened.facts_ingested(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tripped_batch_heals_without_restart() {
        let dir = temp_dir("tripped");
        // A workload whose recursion needs ~7 iterations per new seed
        // tuple; a 3-iteration governor trips on ingest but the seed
        // evaluation (empty EDB) converges immediately.
        let workload = parse_workload(
            "rule p[t + 2](C) <- e[t](C).\n\
             rule p[t + 48](C) <- p[t](C).\n\
             rule q[t](C) <- f[t](C).\n",
        )
        .unwrap();
        let mut cfg = config(&dir);
        cfg.eval.max_iterations = 3;
        let ingest = Ingest::open(cfg, &workload).unwrap();
        let err = ingest
            .submit(
                "trip-1",
                ops(r#"{"facts":[{"pred":"e","tuple":"(168n+1; x)"}]}"#),
            )
            .unwrap_err();
        match err {
            IngestError::Tripped { retry_after_s, .. } => assert!(retry_after_s >= 1),
            other => panic!("expected Tripped, got {other:?}"),
        }
        assert_eq!(ingest.batches_tripped(), 1);
        // The same server keeps applying unrelated batches: no wedge, no
        // restart required.
        let out = ingest
            .submit(
                "ok-1",
                ops(r#"{"facts":[{"pred":"f","tuple":"(24n+1; y)"}]}"#),
            )
            .unwrap();
        assert_eq!(out.applied, 1);
        let q_live = ingest.with_model(|m| m.relation("q").map(|r| !r.is_empty()).unwrap_or(false));
        assert!(q_live, "derivation resumed after the trip");
        // And the tripping record in the WAL replays as the same refusal.
        ingest.flush();
        drop(ingest);
        let mut cfg = config(&dir);
        cfg.eval.max_iterations = 3;
        let reopened = Ingest::open(cfg, &workload).unwrap();
        assert_eq!(reopened.batches_tripped(), 0, "replay skips, not counts");
        let q_live =
            reopened.with_model(|m| m.relation("q").map(|r| !r.is_empty()).unwrap_or(false));
        assert!(q_live, "healed state survives restart");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_crash_before_compaction_replays_exactly_once() {
        // The crash window between the checkpoint write and the WAL
        // compaction leaves a durable checkpoint *and* the full log: a
        // large segment keeps every record in the active (uncompactable)
        // segment, so the state after the cadence checkpoint at seq 4 is
        // exactly that window. Boot must apply seq 5 once — and nothing
        // at or below 4 twice.
        let dir = temp_dir("crashwindow");
        let workload = parse_workload(WORKLOAD).unwrap();
        let uninterrupted = {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            for i in 0..5 {
                let body = format!(
                    r#"{{"facts":[{{"pred":"course","tuple":"(168n+{}, 168n+{}; extra) : T2 = T1 + 2"}}]}}"#,
                    40 + 10 * i,
                    42 + 10 * i
                );
                ingest.submit(&format!("req-{i}"), ops(&body)).unwrap();
            }
            assert_eq!(ingest.checkpoints_written(), 1, "cadence fired at 4");
            // Drop without flush: the crash happens after that checkpoint.
            ingest.with_model(|m| m.relation("problems").map(|r| r.to_string()))
        };
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert!(reopened.boot_report().restored_checkpoint);
        assert_eq!(
            reopened.boot_report().replayed_records,
            1,
            "only seq 5 is past the checkpoint; 1–4 must not re-apply"
        );
        assert_eq!(
            reopened.facts_ingested(),
            1,
            "re-applying a covered record would double-count here"
        );
        let replayed = reopened.with_model(|m| m.relation("problems").map(|r| r.to_string()));
        assert_eq!(
            uninterrupted, replayed,
            "exactly-once replay is byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The inverse cut point needs fault injection: the checkpoint write
    /// *reports* success but never becomes visible (crash between staging
    /// and rename), and compaction then deletes the segments that
    /// checkpoint was supposed to cover. The needed records are gone —
    /// the only sound outcome is a refused boot, never a silently
    /// rebuilt partial model.
    #[cfg(feature = "chaos")]
    #[test]
    fn invisible_checkpoint_then_compaction_fails_stop_at_boot() {
        use itdb_store::fault::{FaultKind, FaultPlan};
        let dir = temp_dir("invischeckpoint");
        let workload = parse_workload(WORKLOAD).unwrap();
        let cfg = IngestConfig {
            // No cadence checkpoints; tiny segments so every record seals
            // its own segment and compaction has plenty to delete.
            checkpoint_every: u64::MAX,
            wal: WalOptions {
                segment_bytes: 64,
                ..WalOptions::default()
            },
            ..IngestConfig::new(&dir)
        };
        {
            let ingest = Ingest::open(cfg.clone(), &workload).unwrap();
            for i in 0..6 {
                let body = format!(
                    r#"{{"facts":[{{"pred":"course","tuple":"(168n+{}, 168n+{}; extra) : T2 = T1 + 2"}}]}}"#,
                    40 + 10 * i,
                    42 + 10 * i
                );
                ingest.submit(&format!("req-{i}"), ops(&body)).unwrap();
            }
            FaultPlan {
                kind: FaultKind::CrashBeforeRename,
            }
            .arm();
            ingest.flush();
            FaultPlan::disarm();
        }
        let err = match Ingest::open(cfg, &workload) {
            Ok(_) => {
                panic!("boot must refuse: the checkpoint never landed and the log is compacted")
            }
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("compacted away"),
            "refused with the gap diagnosis, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_with_compacted_wal_refuses_to_boot() {
        let dir = temp_dir("gap");
        let workload = parse_workload(WORKLOAD).unwrap();
        {
            // Tiny segments + tight cadence: several checkpoints, each
            // compacting sealed segments away.
            let cfg = IngestConfig {
                checkpoint_every: 2,
                wal: WalOptions {
                    segment_bytes: 128,
                    ..WalOptions::default()
                },
                ..IngestConfig::new(&dir)
            };
            let ingest = Ingest::open(cfg, &workload).unwrap();
            for i in 0..8 {
                let body = format!(
                    r#"{{"facts":[{{"pred":"course","tuple":"(168n+{}, 168n+{}; extra) : T2 = T1 + 2"}}]}}"#,
                    40 + 10 * i,
                    42 + 10 * i
                );
                ingest.submit(&format!("req-{i}"), ops(&body)).unwrap();
            }
            ingest.flush();
        }
        // Destroy the checkpoints: the compacted WAL prefix is now
        // unrecoverable, so boot must refuse rather than silently replay
        // the surviving suffix into a fresh model.
        std::fs::remove_dir_all(dir.join("checkpoint")).unwrap();
        let err = match Ingest::open(config(&dir), &workload) {
            Ok(_) => panic!("boot over a WAL gap must be refused"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("compacted away"),
            "refused with the gap diagnosis, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backpressure_trips_at_max_pending() {
        let dir = temp_dir("pressure");
        let workload = parse_workload(WORKLOAD).unwrap();
        let ingest = Ingest::open(
            IngestConfig {
                max_pending: 1,
                ..config(&dir)
            },
            &workload,
        )
        .unwrap();
        // Simulate one request already in flight.
        ingest.pending.fetch_add(1, Ordering::Relaxed);
        let err = ingest
            .submit(
                "r",
                ops(r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; c) : T2 = T1 + 2"}]}"#),
            )
            .unwrap_err();
        assert!(matches!(err, IngestError::Backpressure { .. }));
        ingest.pending.fetch_sub(1, Ordering::Relaxed);
        assert_eq!(ingest.pending(), 0, "guard restored the gauge");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
