//! Streaming ingestion: the WAL-backed write path behind `POST /facts`.
//!
//! ## Crash consistency
//!
//! Every accepted batch takes the same journey, serialized under one
//! lock so the durable log and the in-memory model never disagree about
//! order:
//!
//! 1. **Dedup check** — a batch whose `X-Itdb-Request-Id` is still in the
//!    dedup window is answered from the remembered outcome without
//!    touching the WAL or the model (at-least-once clients get
//!    exactly-once application).
//! 2. **WAL append** — the encoded batch goes to the write-ahead log
//!    first and is fsynced per the configured flush policy. Only after
//!    the append succeeds does the model change, so every batch the
//!    client saw acknowledged is re-derivable from checkpoint + log.
//! 3. **Incremental apply** — [`ResidentModel::apply_batch`] folds the
//!    new tuples in (semi-naive delta propagation; full re-evaluation
//!    when negation over a changed predicate makes deltas unsound). A
//!    batch the model *rejects* (unknown schema, intensional predicate)
//!    still sits in the WAL — rejection is deterministic, so boot-time
//!    replay re-rejects it identically and the log stays a faithful
//!    request history.
//! 4. **Checkpoint + compaction** — every `checkpoint_every` records the
//!    full resident state (EDB + IDB + dedup window + applied sequence)
//!    is written to the snapshot store and the WAL drops every sealed
//!    segment the checkpoint covers.
//!
//! Boot recovery inverts the pipeline: restore the newest valid
//! checkpoint (or start from the workload file), then replay every WAL
//! record past the checkpoint's sequence. [`ResidentModel`] applies
//! batches deterministically and its snapshots preserve tuple order
//! exactly, so a SIGKILL'd server restarts with **byte-identical**
//! relations to an uninterrupted run — the property the chaos harness
//! checks end to end.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_core::{EvalOptions, Fact, ResidentModel, Workload};
use itdb_lrp::parser::parse_tuple;
use itdb_store::{ByteReader, ByteWriter, Section, SnapshotStore, Wal, WalOptions, WalStats};
use itdb_trace::EventKind;
use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Section tag carrying the serve-layer dedup window inside a resident
/// checkpoint (the model's own sections use tags 21–23).
pub const SEC_INGEST_DEDUP: u8 = 30;
/// WAL record payload format version.
const BATCH_VERSION: u8 = 1;

/// Configuration for the streaming-ingestion subsystem.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Directory holding the WAL segments and (under `checkpoint/`) the
    /// resident-model snapshot store.
    pub wal_dir: PathBuf,
    /// Segment rotation and fsync batching for the log.
    pub wal: WalOptions,
    /// Request ids remembered for idempotent replay of retried batches.
    pub dedup_window: usize,
    /// Ingest requests allowed in flight before `POST /facts` answers
    /// `503` with a `Retry-After`.
    pub max_pending: u64,
    /// WAL records between resident checkpoints (each checkpoint also
    /// compacts the log).
    pub checkpoint_every: u64,
}

impl IngestConfig {
    /// Defaults sized like the rest of the serve stack: small enough for
    /// CI, sane for a single-node deployment.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        IngestConfig {
            wal_dir: wal_dir.into(),
            wal: WalOptions::default(),
            dedup_window: 1024,
            max_pending: 128,
            checkpoint_every: 256,
        }
    }
}

/// One decoded `POST /facts` batch as it travels through the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactBatch {
    /// The request id the batch arrived under (dedup key).
    pub request_id: String,
    /// The facts, in request order.
    pub facts: Vec<Fact>,
}

/// Encodes a batch as a WAL record payload. Tuples travel in their
/// textual closed form — the format round-trips exactly (pinned by the
/// `prop_workload` suite), stays human-readable in a hex dump, and is
/// versioned independently of the in-memory layout.
pub fn encode_batch(batch: &FactBatch) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(BATCH_VERSION);
    w.put_str(&batch.request_id);
    w.put_usize(batch.facts.len());
    for f in &batch.facts {
        w.put_str(&f.pred);
        w.put_str(&f.tuple.to_string());
    }
    w.into_bytes()
}

/// Decodes a WAL record payload written by [`encode_batch`].
pub fn decode_batch(payload: &[u8]) -> Result<FactBatch, String> {
    let mut r = ByteReader::new(payload);
    let version = r.get_u8().map_err(|e| e.to_string())?;
    if version != BATCH_VERSION {
        return Err(format!("unknown fact-batch version {version}"));
    }
    let request_id = r.get_str().map_err(|e| e.to_string())?;
    let count = r.get_usize().map_err(|e| e.to_string())?;
    let mut facts = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let pred = r.get_str().map_err(|e| e.to_string())?;
        let text = r.get_str().map_err(|e| e.to_string())?;
        let tuple = parse_tuple(&text).map_err(|e| format!("bad tuple in WAL record: {e}"))?;
        facts.push(Fact { pred, tuple });
    }
    Ok(FactBatch { request_id, facts })
}

/// What one accepted (or deduplicated) ingest request did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// EDB tuples newly inserted.
    pub applied: u64,
    /// EDB tuples already covered by the relation.
    pub duplicates: u64,
    /// The WAL sequence the batch was logged at (0 for a deduplicated
    /// request — nothing was re-logged).
    pub seq: u64,
    /// Whether the request id was already in the dedup window (the
    /// counts above are the remembered first-application counts).
    pub duplicate_request: bool,
}

/// Why an ingest request was not applied.
#[derive(Debug)]
pub enum IngestError {
    /// Too many ingest requests in flight; retry after the given delay.
    Backpressure {
        /// Suggested client backoff, seconds.
        retry_after_s: u64,
    },
    /// The resident model is poisoned (a recovery re-evaluation failed);
    /// writes are refused until the operator restarts the server.
    Poisoned,
    /// The model rejected the batch (schema mismatch, intensional
    /// predicate). Deterministic: replay re-rejects it identically.
    Rejected(String),
    /// The WAL append or checkpoint write failed; nothing was applied.
    Wal(String),
}

/// The bounded request-id window with the outcome remembered per id, so
/// a retried batch is answered idempotently.
#[derive(Debug, Default)]
struct DedupWindow {
    cap: usize,
    entries: VecDeque<(String, u64, u64)>,
}

impl DedupWindow {
    fn new(cap: usize) -> Self {
        DedupWindow {
            cap: cap.max(1),
            entries: VecDeque::new(),
        }
    }

    fn get(&self, id: &str) -> Option<(u64, u64)> {
        self.entries
            .iter()
            .find(|(i, _, _)| i == id)
            .map(|(_, a, d)| (*a, *d))
    }

    fn insert(&mut self, id: String, applied: u64, duplicates: u64) {
        if self.entries.len() >= self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back((id, applied, duplicates));
    }

    fn encode_section(&self) -> Section {
        let mut w = ByteWriter::new();
        w.put_usize(self.entries.len());
        for (id, applied, duplicates) in &self.entries {
            w.put_str(id);
            w.put_u64(*applied);
            w.put_u64(*duplicates);
        }
        Section::new(SEC_INGEST_DEDUP, w.into_bytes())
    }

    fn decode_section(cap: usize, sections: &[Section]) -> Self {
        let mut window = DedupWindow::new(cap);
        let Some(section) = sections.iter().find(|s| s.tag == SEC_INGEST_DEDUP) else {
            return window;
        };
        let mut r = ByteReader::new(&section.payload);
        let Ok(count) = r.get_usize() else {
            return window;
        };
        for _ in 0..count {
            let (Ok(id), Ok(applied), Ok(duplicates)) = (r.get_str(), r.get_u64(), r.get_u64())
            else {
                break;
            };
            window.insert(id, applied, duplicates);
        }
        window
    }
}

/// Everything guarded by the ingest lock: the log, the model, the dedup
/// window, and the checkpoint cadence.
struct IngestInner {
    wal: Wal,
    model: ResidentModel,
    dedup: DedupWindow,
    store: SnapshotStore,
    applied_seq: u64,
    records_since_checkpoint: u64,
}

/// How boot recovery went (printed at startup, exported as metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestBootReport {
    /// Whether a resident checkpoint was restored (vs a fresh build from
    /// the workload file).
    pub restored_checkpoint: bool,
    /// WAL records replayed on top of the restored state.
    pub replayed_records: u64,
    /// Bytes of torn tail truncated from the newest segment.
    pub truncated_tail_bytes: u64,
    /// The WAL sequence the model is current through after replay.
    pub last_seq: u64,
}

/// The streaming-ingestion subsystem: WAL + resident model + dedup
/// window behind one lock, with lock-free counters for `/metrics`.
pub struct Ingest {
    inner: Mutex<IngestInner>,
    config: IngestConfig,
    pending: AtomicU64,
    facts_ingested: AtomicU64,
    facts_duplicate: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoint_failures: AtomicU64,
    boot: IngestBootReport,
}

impl Ingest {
    /// Opens (or creates) the WAL directory, restores the newest valid
    /// resident checkpoint, replays the log past it, and returns the
    /// caught-up subsystem. The workload file supplies the program (a
    /// checkpoint written by a different program is refused and ingestion
    /// starts fresh from the file).
    pub fn open(config: IngestConfig, workload: &Workload) -> io::Result<Ingest> {
        let opts = EvalOptions::default();
        std::fs::create_dir_all(&config.wal_dir)?;
        let store =
            SnapshotStore::open(config.wal_dir.join("checkpoint")).map_err(io::Error::other)?;
        let mut boot = IngestBootReport::default();
        let (mut model, mut dedup, mut applied_seq) = match store.load_latest() {
            Ok(rec) => match rec.snapshot {
                Some((_, sections)) => match ResidentModel::restore_from_sections(
                    workload.program.clone(),
                    opts.clone(),
                    &sections,
                ) {
                    Ok((model, seq)) => {
                        boot.restored_checkpoint = true;
                        let dedup = DedupWindow::decode_section(config.dedup_window, &sections);
                        (model, dedup, seq)
                    }
                    Err(_) => Self::fresh(workload, &opts, config.dedup_window)?,
                },
                None => Self::fresh(workload, &opts, config.dedup_window)?,
            },
            Err(_) => Self::fresh(workload, &opts, config.dedup_window)?,
        };
        let (mut wal, recovery) =
            Wal::open(&config.wal_dir, config.wal).map_err(io::Error::other)?;
        boot.truncated_tail_bytes = recovery.truncated_tail_bytes;
        let (facts_ingested, facts_duplicate) = (AtomicU64::new(0), AtomicU64::new(0));
        for record in &recovery.records {
            if record.seq <= applied_seq {
                continue;
            }
            let batch = decode_batch(&record.payload).map_err(io::Error::other)?;
            boot.replayed_records += 1;
            applied_seq = record.seq;
            if dedup.get(&batch.request_id).is_some() {
                continue;
            }
            match model.apply_batch(&batch.facts) {
                Ok(out) => {
                    facts_ingested.fetch_add(out.applied, Ordering::Relaxed);
                    facts_duplicate.fetch_add(out.duplicates, Ordering::Relaxed);
                    dedup.insert(batch.request_id, out.applied, out.duplicates);
                }
                // The live path answered this batch 422 and moved on;
                // replay must shrug identically, not refuse to boot.
                Err(_) => continue,
            }
        }
        // A torn tail was truncated: records past the tear were never
        // acknowledged, but the next append must not reuse their
        // sequence numbers against a model that already advanced.
        if wal.next_seq() <= applied_seq {
            return Err(io::Error::other(format!(
                "WAL ends at seq {} but the checkpoint is current through {}; \
                 refusing to serve writes from a log older than the model",
                wal.next_seq().saturating_sub(1),
                applied_seq
            )));
        }
        boot.last_seq = applied_seq;
        itdb_trace::emit(|| EventKind::WalReplayed {
            records: boot.replayed_records,
            truncated_bytes: boot.truncated_tail_bytes,
            last_seq: boot.last_seq,
        });
        // Durably seal recovery: everything replayed is already on disk,
        // but the truncation of a torn tail must be too.
        wal.flush().map_err(io::Error::other)?;
        Ok(Ingest {
            inner: Mutex::new(IngestInner {
                wal,
                model,
                dedup,
                store,
                applied_seq,
                records_since_checkpoint: 0,
            }),
            config,
            pending: AtomicU64::new(0),
            facts_ingested,
            facts_duplicate,
            checkpoints_written: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            boot,
        })
    }

    fn fresh(
        workload: &Workload,
        opts: &EvalOptions,
        dedup_cap: usize,
    ) -> io::Result<(ResidentModel, DedupWindow, u64)> {
        let model =
            ResidentModel::new(workload.program.clone(), workload.edb.clone(), opts.clone())
                .map_err(io::Error::other)?;
        Ok((model, DedupWindow::new(dedup_cap), 0))
    }

    /// How boot recovery went.
    pub fn boot_report(&self) -> IngestBootReport {
        self.boot
    }

    /// Ingest requests currently in flight (the `itdb_ingest_queue_depth`
    /// gauge).
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Total EDB tuples newly inserted via `POST /facts`.
    pub fn facts_ingested(&self) -> u64 {
        self.facts_ingested.load(Ordering::Relaxed)
    }

    /// Total EDB tuples answered as duplicates (subsumed or re-sent).
    pub fn facts_duplicate(&self) -> u64 {
        self.facts_duplicate.load(Ordering::Relaxed)
    }

    /// Resident checkpoints written (each also compacted the WAL).
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written.load(Ordering::Relaxed)
    }

    /// Checkpoint writes that failed (ingestion continues on the WAL).
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures.load(Ordering::Relaxed)
    }

    /// A snapshot of the WAL's counters (appends, fsyncs, live bytes).
    pub fn wal_stats(&self) -> WalStats {
        self.lock().wal.stats()
    }

    /// Runs `f` with the resident model — the closed-form read path for
    /// `/query` in ingest mode.
    pub fn with_model<T>(&self, f: impl FnOnce(&ResidentModel) -> T) -> T {
        f(&self.lock().model)
    }

    /// The ingest state holds no invariant a panicking holder could have
    /// broken mid-flight that recovery would make worse: the WAL is
    /// append-only and the model poisons itself on failed recovery, so
    /// recover the lock rather than wedging every writer forever.
    fn lock(&self) -> std::sync::MutexGuard<'_, IngestInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The full ingest pipeline for one request: backpressure check,
    /// dedup, WAL append (durable per policy), incremental apply,
    /// checkpoint cadence. See the module docs for the ordering argument.
    pub fn submit(&self, request_id: &str, facts: Vec<Fact>) -> Result<IngestOutcome, IngestError> {
        let depth = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        let _guard = PendingGuard(&self.pending);
        if depth > self.config.max_pending {
            return Err(IngestError::Backpressure {
                retry_after_s: (depth / self.config.max_pending).clamp(1, 30),
            });
        }
        let mut inner = self.lock();
        if inner.model.poisoned() {
            return Err(IngestError::Poisoned);
        }
        if let Some((applied, duplicates)) = inner.dedup.get(request_id) {
            self.facts_duplicate
                .fetch_add(facts.len() as u64, Ordering::Relaxed);
            return Ok(IngestOutcome {
                applied,
                duplicates,
                seq: 0,
                duplicate_request: true,
            });
        }
        let batch = FactBatch {
            request_id: request_id.to_string(),
            facts,
        };
        let payload = encode_batch(&batch);
        let seq = inner
            .wal
            .append(&payload)
            .map_err(|e| IngestError::Wal(e.to_string()))?;
        let out = match inner.model.apply_batch(&batch.facts) {
            Ok(out) => out,
            // The record stays in the log; replay re-rejects it the same
            // deterministic way, so the model and the log still agree.
            Err(e) => return Err(IngestError::Rejected(e.to_string())),
        };
        inner.applied_seq = seq;
        inner.records_since_checkpoint += 1;
        inner
            .dedup
            .insert(batch.request_id, out.applied, out.duplicates);
        self.facts_ingested
            .fetch_add(out.applied, Ordering::Relaxed);
        self.facts_duplicate
            .fetch_add(out.duplicates, Ordering::Relaxed);
        itdb_trace::emit(|| EventKind::FactsIngested {
            seq,
            applied: out.applied,
            duplicates: out.duplicates,
            full_reeval: out.full_reeval,
        });
        if inner.records_since_checkpoint >= self.config.checkpoint_every {
            self.checkpoint_locked(&mut inner);
        }
        Ok(IngestOutcome {
            applied: out.applied,
            duplicates: out.duplicates,
            seq,
            duplicate_request: false,
        })
    }

    /// Writes a resident checkpoint and compacts the log through it.
    /// Failure is survivable — the WAL still holds everything — so it is
    /// counted, not propagated.
    fn checkpoint_locked(&self, inner: &mut IngestInner) {
        let mut sections = inner.model.snapshot_sections(inner.applied_seq);
        sections.push(inner.dedup.encode_section());
        match inner.store.write(&sections) {
            Ok(_) => {
                self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                inner.records_since_checkpoint = 0;
                let seq = inner.applied_seq;
                let _ = inner.wal.compact_through(seq);
            }
            Err(_) => {
                self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                // Back off: retry after another full cadence, not on
                // every subsequent batch.
                inner.records_since_checkpoint = 0;
            }
        }
    }

    /// Forces a checkpoint now (graceful shutdown).
    pub fn flush(&self) {
        let mut inner = self.lock();
        let _ = inner.wal.flush();
        if inner.records_since_checkpoint > 0 {
            self.checkpoint_locked(&mut inner);
        }
    }
}

/// Decrements the pending gauge when an ingest request leaves the
/// subsystem, however it leaves.
struct PendingGuard<'a>(&'a AtomicU64);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Parses the `POST /facts` JSON body:
/// `{"facts":[{"pred":"e","tuple":"(6n+1)"}, …]}`.
pub fn parse_facts_body(body: &str) -> Result<Vec<Fact>, String> {
    let value = itdb_trace::json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let facts = value
        .get("facts")
        .and_then(|f| f.as_array())
        .ok_or_else(|| "expected {\"facts\":[…]} with an array of facts".to_string())?;
    if facts.is_empty() {
        return Err("empty batch: `facts` must hold at least one fact".to_string());
    }
    let mut out = Vec::with_capacity(facts.len());
    for (i, f) in facts.iter().enumerate() {
        let pred = f
            .get("pred")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("facts[{i}]: missing string field `pred`"))?;
        let text = f
            .get("tuple")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("facts[{i}]: missing string field `tuple`"))?;
        let tuple = parse_tuple(text).map_err(|e| format!("facts[{i}]: bad tuple: {e}"))?;
        out.push(Fact {
            pred: pred.to_string(),
            tuple,
        });
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use itdb_core::parse_workload;

    const WORKLOAD: &str = "\
        tuple course (168n+8, 168n+10; database) : T2 = T1 + 2\n\
        rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).\n\
        rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).\n";

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "itdb_ingest_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &PathBuf) -> IngestConfig {
        IngestConfig {
            checkpoint_every: 4,
            ..IngestConfig::new(dir)
        }
    }

    fn facts(text: &str) -> Vec<Fact> {
        parse_facts_body(text).unwrap()
    }

    #[test]
    fn batch_codec_round_trips() {
        let batch = FactBatch {
            request_id: "req-1".to_string(),
            facts: facts(
                r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#,
            ),
        };
        let decoded = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(decoded, batch);
        assert!(decode_batch(&[9, 9, 9]).is_err(), "unknown version");
    }

    #[test]
    fn body_parser_reports_defects() {
        assert!(parse_facts_body("not json").is_err());
        assert!(parse_facts_body("{\"facts\":[]}").is_err(), "empty batch");
        assert!(parse_facts_body("{\"facts\":[{\"pred\":\"e\"}]}").is_err());
        assert!(parse_facts_body("{\"facts\":[{\"pred\":\"e\",\"tuple\":\"(((\"}]}").is_err());
        assert_eq!(
            parse_facts_body("{\"facts\":[{\"pred\":\"e\",\"tuple\":\"(6n+1)\"}]}")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn ingest_applies_dedups_and_recovers() {
        let dir = temp_dir("roundtrip");
        let workload = parse_workload(WORKLOAD).unwrap();
        {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            let batch = facts(
                r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#,
            );
            let out = ingest.submit("req-1", batch.clone()).unwrap();
            assert_eq!(out.applied, 1);
            assert!(!out.duplicate_request);
            // Same id: answered from the window, nothing re-applied.
            let again = ingest.submit("req-1", batch.clone()).unwrap();
            assert!(again.duplicate_request);
            assert_eq!(again.applied, 1, "remembered first-application count");
            // Same facts under a new id: logged, applied as duplicates.
            let dup = ingest.submit("req-2", batch).unwrap();
            assert!(!dup.duplicate_request);
            assert_eq!(dup.applied, 0);
            assert_eq!(dup.duplicates, 1);
            assert_eq!(ingest.facts_ingested(), 1);
            ingest.flush();
        }
        // Reopen: checkpoint + WAL replay must reproduce the state.
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert!(
            reopened.boot_report().restored_checkpoint,
            "flush wrote a checkpoint"
        );
        let has_new_course = reopened.with_model(|m| {
            m.relation("problems")
                .map(|r| r.to_string().contains("168n+32"))
                .unwrap_or(false)
        });
        assert!(has_new_course, "ingested facts survive restart");
        // The dedup window survives the checkpoint too.
        let out = reopened
            .submit(
                "req-1",
                facts(r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#),
            )
            .unwrap();
        assert!(out.duplicate_request, "dedup window restored");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_without_checkpoint_is_identical() {
        let dir = temp_dir("replay");
        let workload = parse_workload(WORKLOAD).unwrap();
        let uninterrupted = {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            for i in 0..3 {
                let body = format!(
                    r#"{{"facts":[{{"pred":"course","tuple":"(168n+{}, 168n+{}; extra) : T2 = T1 + 2"}}]}}"#,
                    40 + 10 * i,
                    42 + 10 * i
                );
                ingest.submit(&format!("req-{i}"), facts(&body)).unwrap();
            }
            // No flush: drop without a checkpoint, like a SIGKILL.
            ingest.with_model(|m| m.relation("problems").map(|r| r.to_string()))
        };
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert_eq!(reopened.boot_report().replayed_records, 3);
        let replayed = reopened.with_model(|m| m.relation("problems").map(|r| r.to_string()));
        assert_eq!(uninterrupted, replayed, "replay is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_batches_do_not_poison_replay() {
        let dir = temp_dir("rejected");
        let workload = parse_workload(WORKLOAD).unwrap();
        {
            let ingest = Ingest::open(config(&dir), &workload).unwrap();
            // Intensional predicate: rejected, but WAL'd first.
            let bad =
                facts(r#"{"facts":[{"pred":"problems","tuple":"(6n+1, 6n+3; x) : T2 = T1 + 2"}]}"#);
            assert!(matches!(
                ingest.submit("bad-1", bad),
                Err(IngestError::Rejected(_))
            ));
            let good = facts(
                r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; compilers) : T2 = T1 + 2"}]}"#,
            );
            ingest.submit("good-1", good).unwrap();
        }
        let reopened = Ingest::open(config(&dir), &workload).unwrap();
        assert_eq!(
            reopened.boot_report().replayed_records,
            2,
            "both records replayed; the bad one re-rejected"
        );
        assert_eq!(reopened.facts_ingested(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backpressure_trips_at_max_pending() {
        let dir = temp_dir("pressure");
        let workload = parse_workload(WORKLOAD).unwrap();
        let ingest = Ingest::open(
            IngestConfig {
                max_pending: 1,
                ..config(&dir)
            },
            &workload,
        )
        .unwrap();
        // Simulate one request already in flight.
        ingest.pending.fetch_add(1, Ordering::Relaxed);
        let err = ingest
            .submit(
                "r",
                facts(r#"{"facts":[{"pred":"course","tuple":"(168n+30, 168n+32; c) : T2 = T1 + 2"}]}"#),
            )
            .unwrap_err();
        assert!(matches!(err, IngestError::Backpressure { .. }));
        ingest.pending.fetch_sub(1, Ordering::Relaxed);
        assert_eq!(ingest.pending(), 0, "guard restored the gauge");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
