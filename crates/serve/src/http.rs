//! A deliberately small HTTP/1.1 subset: enough to parse one request from
//! a socket and write one response (or a chunked stream) back.
//!
//! Hand-rolled because the workspace builds offline with no third-party
//! dependencies. The parser is bounded everywhere — request-line length,
//! header count and size, body size — so a misbehaving client cannot make
//! a worker allocate without limit; every violation maps to a 4xx rather
//! than a panic or an unbounded read.

// User-reachable network path: malformed input must surface as typed
// errors, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Longest accepted request line (method + path + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted single header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be parsed, with the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The client closed the connection before sending a request line.
    ConnectionClosed,
    /// The socket read failed (including read-timeout expiry).
    Io(String),
    /// The request line or a header line was malformed.
    Malformed(String),
    /// A size bound was exceeded; maps to 431 or 413.
    TooLarge(String),
}

impl ParseError {
    /// The HTTP status code this parse failure should be reported as.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::ConnectionClosed | ParseError::Io(_) => 400,
            ParseError::Malformed(_) => 400,
            ParseError::TooLarge(m) if m.contains("body") => 413,
            ParseError::TooLarge(_) => 431,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed before request"),
            ParseError::Io(e) => write!(f, "read failed: {e}"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

/// One parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target, query string included, e.g. `/query`.
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client may reuse this connection: HTTP/1.1 defaults to
    /// keep-alive unless `Connection: close`; HTTP/1.0 defaults to close
    /// unless `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of the named header (name matched
    /// case-insensitively), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one line terminated by `\n`, rejecting lines longer than `max`.
/// The trailing `\r\n` (or bare `\n`) is stripped.
fn read_line(r: &mut impl BufRead, max: usize, what: &str) -> Result<Option<String>, ParseError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let chunk = r.fill_buf().map_err(|e| ParseError::Io(e.to_string()))?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(ParseError::Malformed(format!("{what} truncated")));
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.map(|i| i + 1).unwrap_or(chunk.len());
        if buf.len() + take > max + 2 {
            return Err(ParseError::TooLarge(format!("{what} exceeds {max} bytes")));
        }
        buf.extend_from_slice(&chunk[..take]);
        r.consume(take);
        if nl.is_some() {
            break;
        }
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ParseError::Malformed(format!("{what} is not valid UTF-8")))
}

/// A [`BufRead`] adapter enforcing an **overall** wall-clock budget on a
/// request read. The socket's per-read timeout only bounds one `read`
/// call; a slowloris client dripping a byte every few seconds keeps each
/// read under that timeout and holds a worker forever. Every refill here
/// first checks the deadline, so the drip itself trips the budget: the
/// total time a worker spends parsing one request head is bounded by
/// `budget` plus at most one socket read-timeout.
pub struct DeadlineReader<R> {
    inner: R,
    deadline: Instant,
}

impl<R: BufRead> DeadlineReader<R> {
    /// Wraps `inner`, allowing at most `budget` of wall-clock time across
    /// all refills before reads fail with [`io::ErrorKind::TimedOut`].
    pub fn new(inner: R, budget: Duration) -> DeadlineReader<R> {
        DeadlineReader {
            inner,
            deadline: Instant::now() + budget,
        }
    }

    fn check(&self) -> io::Result<()> {
        if Instant::now() >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        Ok(())
    }
}

impl<R: BufRead> io::Read for DeadlineReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.check()?;
        self.inner.read(buf)
    }
}

impl<R: BufRead> BufRead for DeadlineReader<R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        self.check()?;
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt)
    }
}

/// [`read_request`] under an overall deadline: the standard entry point
/// for reading off a socket (see [`DeadlineReader`] for why the socket
/// read-timeout alone is not enough).
pub fn read_request_deadline(
    r: &mut impl BufRead,
    budget: Duration,
) -> Result<Request, ParseError> {
    read_request(&mut DeadlineReader::new(r, budget))
}

/// Parses one HTTP/1.1 request from `r`. Returns
/// `Err(ParseError::ConnectionClosed)` if the peer hung up cleanly before
/// sending anything.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, ParseError> {
    let line =
        read_line(r, MAX_REQUEST_LINE, "request line")?.ok_or(ParseError::ConnectionClosed)?;
    let mut parts = line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "request line `{line}` is not `METHOD PATH VERSION`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, MAX_HEADER_LINE, "header line")?
            .ok_or_else(|| ParseError::Malformed("headers truncated".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("header line `{line}` has no colon")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Malformed(format!("bad Content-Length `{v}`")))
        })
        .transpose()?;
    if let Some(len) = content_length {
        if len > MAX_BODY {
            return Err(ParseError::TooLarge(format!(
                "body of {len} bytes exceeds {MAX_BODY}"
            )));
        }
        body.resize(len, 0);
        io::Read::read_exact(r, &mut body).map_err(|e| ParseError::Io(e.to_string()))?;
    }
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version != "HTTP/1.0",
    };
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
        keep_alive,
    })
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete `Connection: close` response with a body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with(w, status, content_type, body, false, &[])
}

/// Writes one complete response, choosing the `Connection` disposition and
/// appending `extra` headers (e.g. `Retry-After`) verbatim.
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the header block starting a chunked (streaming) response.
pub fn start_chunked(w: &mut impl Write, status: u16, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status)
    )?;
    w.flush()
}

/// Writes one chunk of a chunked response.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response cleanly.
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_request_with_headers_and_body() {
        let req = parse(
            b"POST /query HTTP/1.1\r\nHost: x\r\nX-Itdb-Fuel: 50\r\nContent-Length: 4\r\n\r\np[t]",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("x-itdb-fuel"), Some("50"));
        assert_eq!(req.header("X-Itdb-Fuel"), Some("50"));
        assert_eq!(req.body, b"p[t]");
    }

    #[test]
    fn clean_hangup_is_connection_closed() {
        assert_eq!(parse(b"").unwrap_err(), ParseError::ConnectionClosed);
    }

    #[test]
    fn malformed_request_line_is_rejected() {
        let err = parse(b"GETX\r\n\r\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_)), "{err}");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("x-h-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut raw = String::from("GET /");
        raw.push_str(&"a".repeat(MAX_REQUEST_LINE));
        raw.push_str(" HTTP/1.1\r\n\r\n");
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_headers() {
        let default_11 = parse(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(default_11.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let close_11 = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close_11.keep_alive);
        let default_10 = parse(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert!(!default_10.keep_alive, "HTTP/1.0 defaults to close");
        let keep_10 = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(keep_10.keep_alive);
    }

    #[test]
    fn write_response_with_sets_connection_and_extra_headers() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "application/json",
            b"{}",
            false,
            &[("Retry-After", "2")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");

        let mut out = Vec::new();
        write_response_with(&mut out, 200, "text/plain", b"ok\n", true, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn responses_round_trip_the_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");

        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/jsonl").unwrap();
        write_chunk(&mut out, b"{\"a\":1}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }
}
