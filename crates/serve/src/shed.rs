//! Deadline-aware admission control: shed what would expire in queue.
//!
//! Every accepted connection is stamped at enqueue time. When a worker
//! finally pops it, [`AdmissionControl::verdict`] compares the time
//! already waited plus the *expected* service time — an EWMA of observed
//! request latencies — against the request's queue deadline. A request
//! that would blow its deadline anyway is answered with a fast `503` and
//! a `Retry-After` derived from the same EWMA and the current queue
//! depth, instead of wasting a worker on an answer nobody is waiting for.
//!
//! Under sustained overload the controller also *degrades* instead of
//! queueing unboundedly: [`AdmissionControl::fuel_divisor`] reports how
//! aggressively the server's **default** fuel ceiling should be tightened
//! (halved past 50% queue pressure, quartered past 75%), so requests that
//! bring no explicit budget finish faster and the queue drains. Requests
//! carrying their own `X-Itdb-Fuel` are never tightened — explicit client
//! intent wins.
//!
//! Everything is integer atomics (µs); no locks on the hot path.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// EWMA smoothing factor as a right-shift: alpha = 1/8.
const EWMA_SHIFT: u32 = 3;

/// What to do with a request a worker just popped off the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Serve it.
    Serve,
    /// Shed it with `503` and this `Retry-After`, in seconds.
    Shed {
        /// Seconds the client should wait before retrying.
        retry_after_s: u64,
    },
}

/// Shared admission state: queue depth and the service-time EWMA.
#[derive(Debug)]
pub struct AdmissionControl {
    /// Smoothed observed service time, µs. 0 = no observation yet.
    ewma_us: AtomicU64,
    /// Connections currently queued (enqueued, not yet popped).
    depth: AtomicU64,
    workers: u64,
    capacity: u64,
}

impl AdmissionControl {
    /// A controller for a pool of `workers` threads behind a queue of
    /// `capacity` slots.
    pub fn new(workers: usize, capacity: usize) -> Self {
        AdmissionControl {
            ewma_us: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            workers: workers.max(1) as u64,
            capacity: capacity.max(1) as u64,
        }
    }

    /// A connection entered the queue.
    pub fn on_enqueue(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection left the queue (popped by a worker, or bounced by a
    /// full queue after the optimistic increment).
    pub fn on_dequeue(&self) {
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Connections currently waiting in queue.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Folds one observed request service time into the EWMA.
    pub fn observe_service(&self, elapsed: Duration) {
        let sample = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        // Racy read-modify-write is fine: the EWMA is a smoothing
        // heuristic, and a lost update only delays convergence by one
        // sample.
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else if sample >= old {
            old + ((sample - old) >> EWMA_SHIFT)
        } else {
            old - ((old - sample) >> EWMA_SHIFT)
        };
        self.ewma_us.store(new, Ordering::Relaxed);
    }

    /// The smoothed service time, µs (0 until the first observation).
    pub fn ewma_us(&self) -> u64 {
        self.ewma_us.load(Ordering::Relaxed)
    }

    /// Decides a popped request's fate: shed if the time already waited
    /// plus the expected service time exceeds `deadline`.
    pub fn verdict(&self, waited: Duration, deadline: Duration) -> Admission {
        let ewma = self.ewma_us();
        let waited_us = u64::try_from(waited.as_micros()).unwrap_or(u64::MAX);
        let deadline_us = u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX);
        if waited_us.saturating_add(ewma) <= deadline_us {
            return Admission::Serve;
        }
        Admission::Shed {
            retry_after_s: self.retry_after_s(),
        }
    }

    /// How long a client should back off: the EWMA times the work queued
    /// ahead of it, spread over the pool, rounded up — never less than 1s.
    pub fn retry_after_s(&self) -> u64 {
        let ewma = self.ewma_us();
        let backlog_us = ewma.saturating_mul(self.depth() + 1) / self.workers;
        (backlog_us.div_ceil(1_000_000)).max(1)
    }

    /// Degradation factor for the *default* fuel ceiling: 1 under normal
    /// load, 2 past 50% queue pressure, 4 past 75%.
    pub fn fuel_divisor(&self) -> u64 {
        let depth = self.depth();
        if depth.saturating_mul(4) >= self.capacity.saturating_mul(3) {
            4
        } else if depth.saturating_mul(2) >= self.capacity {
            2
        } else {
            1
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_then_smooths() {
        let ac = AdmissionControl::new(4, 64);
        assert_eq!(ac.ewma_us(), 0);
        ac.observe_service(Duration::from_micros(800));
        assert_eq!(ac.ewma_us(), 800, "first sample seeds");
        ac.observe_service(Duration::from_micros(1600));
        assert_eq!(ac.ewma_us(), 900, "800 + (1600-800)/8");
        ac.observe_service(Duration::from_micros(100));
        assert_eq!(ac.ewma_us(), 800, "900 - (900-100)/8");
    }

    #[test]
    fn fresh_requests_are_served_and_expired_ones_shed() {
        let ac = AdmissionControl::new(2, 8);
        ac.observe_service(Duration::from_millis(100));
        // Plenty of deadline left: serve.
        assert_eq!(
            ac.verdict(Duration::from_millis(10), Duration::from_secs(1)),
            Admission::Serve
        );
        // Waited 950ms of a 1s deadline with ~100ms expected service:
        // would expire — shed.
        let v = ac.verdict(Duration::from_millis(950), Duration::from_secs(1));
        assert!(matches!(v, Admission::Shed { retry_after_s } if retry_after_s >= 1));
    }

    #[test]
    fn zero_ewma_never_sheds_before_the_deadline() {
        let ac = AdmissionControl::new(2, 8);
        assert_eq!(
            ac.verdict(Duration::from_millis(500), Duration::from_secs(1)),
            Admission::Serve,
            "no observation yet: only the waited time counts"
        );
        assert!(matches!(
            ac.verdict(Duration::from_secs(2), Duration::from_secs(1)),
            Admission::Shed { .. }
        ));
    }

    #[test]
    fn retry_after_scales_with_backlog() {
        let ac = AdmissionControl::new(1, 8);
        ac.observe_service(Duration::from_secs(2));
        assert_eq!(ac.retry_after_s(), 2, "empty queue: one service time");
        for _ in 0..3 {
            ac.on_enqueue();
        }
        assert_eq!(ac.retry_after_s(), 8, "3 queued + self, 1 worker, 2s each");
        ac.on_dequeue();
        assert_eq!(ac.retry_after_s(), 6);
    }

    #[test]
    fn fuel_divisor_tracks_queue_pressure() {
        let ac = AdmissionControl::new(2, 8);
        assert_eq!(ac.fuel_divisor(), 1);
        for _ in 0..4 {
            ac.on_enqueue(); // 50%
        }
        assert_eq!(ac.fuel_divisor(), 2);
        for _ in 0..2 {
            ac.on_enqueue(); // 75%
        }
        assert_eq!(ac.fuel_divisor(), 4);
        for _ in 0..6 {
            ac.on_dequeue();
        }
        assert_eq!(ac.fuel_divisor(), 1);
        ac.on_dequeue(); // saturates at zero, no underflow
        assert_eq!(ac.depth(), 0);
    }
}
