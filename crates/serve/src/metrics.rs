//! The server's own metric families, composed with the engine's
//! evaluation counters into one `/metrics` exposition document.
//!
//! Request counters are keyed by `(method, route, status)`; latency is a
//! fixed-bucket histogram per key (`itdb_http_request_seconds` with
//! `_bucket`/`_sum`/`_count` samples), so Prometheus can answer quantile
//! questions instead of just rate/mean. The supervision counters —
//! worker panics, respawns, shed requests — live here too, as plain
//! atomics that survive a poisoned registry lock.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_trace::prom::{HistogramSeries, PromText};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Upper bounds of the request-latency histogram, in seconds (`+Inf` is
/// implicit). Spans sub-millisecond health checks to multi-second
/// governed evaluations.
pub const LATENCY_BUCKETS: [f64; 8] = [0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 0.5, 2.5];

#[derive(Debug, Default, Clone)]
struct RouteStat {
    count: u64,
    seconds: f64,
    /// Raw (non-cumulative) observation counts per bucket; the last slot
    /// is the overflow (`+Inf`) bucket.
    buckets: [u64; LATENCY_BUCKETS.len() + 1],
}

/// Thread-safe HTTP request accounting for `/metrics`.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    by_key: Mutex<BTreeMap<(String, String, u16), RouteStat>>,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    requests_shed: AtomicU64,
}

impl HttpMetrics {
    /// A fresh, zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry holds only counters, so a panic mid-update leaves it
    /// valid; recover from poison instead of silently dropping samples
    /// (and eventually serving an empty `/metrics`).
    fn lock(&self) -> MutexGuard<'_, BTreeMap<(String, String, u16), RouteStat>> {
        self.by_key.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one finished request.
    pub fn record(&self, method: &str, route: &str, status: u16, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS.len());
        let mut map = self.lock();
        let stat = map
            .entry((method.to_string(), route.to_string(), status))
            .or_default();
        stat.count += 1;
        stat.seconds += secs;
        stat.buckets[bucket] += 1;
    }

    /// Total requests recorded across every key (for tests/diagnostics).
    pub fn total(&self) -> u64 {
        self.lock().values().map(|s| s.count).sum()
    }

    /// Counts one caught worker panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker panics caught so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Counts one supervisor respawn of a dead worker.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Workers respawned so far.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Counts one request shed by admission control.
    pub fn record_shed(&self) {
        self.requests_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed so far.
    pub fn requests_shed(&self) -> u64 {
        self.requests_shed.load(Ordering::Relaxed)
    }

    /// Writes the `itdb_http_*` and supervision families into `p`.
    pub fn write_into(&self, p: &mut PromText) {
        let map = self.lock().clone();
        let status_strings: Vec<(String, String, String)> = map
            .keys()
            .map(|(m, r, s)| (m.clone(), r.clone(), s.to_string()))
            .collect();
        let count_samples: Vec<(Vec<(&str, &str)>, f64)> = map
            .values()
            .zip(&status_strings)
            .map(|(stat, (m, r, s))| {
                (
                    vec![
                        ("method", m.as_str()),
                        ("route", r.as_str()),
                        ("status", s.as_str()),
                    ],
                    stat.count as f64,
                )
            })
            .collect();
        p.family(
            "itdb_http_requests_total",
            "HTTP requests served, by method, route and status.",
            "counter",
            &count_samples,
        );
        let histogram_series: Vec<HistogramSeries<'_>> = map
            .values()
            .zip(&status_strings)
            .map(|(stat, (m, r, s))| {
                let mut cumulative = Vec::with_capacity(stat.buckets.len());
                let mut acc = 0u64;
                for &raw in &stat.buckets {
                    acc += raw;
                    cumulative.push(acc);
                }
                (
                    vec![
                        ("method", m.as_str()),
                        ("route", r.as_str()),
                        ("status", s.as_str()),
                    ],
                    cumulative,
                    stat.seconds,
                )
            })
            .collect();
        p.histogram(
            "itdb_http_request_seconds",
            "Request latency, by method, route and status.",
            &LATENCY_BUCKETS,
            &histogram_series,
        );
        p.counter(
            "itdb_worker_panics_total",
            "Worker panics caught while handling a request (answered 500).",
            self.worker_panics(),
        );
        p.counter(
            "itdb_worker_respawns_total",
            "Dead workers replaced by the supervisor.",
            self.worker_respawns(),
        );
        p.counter(
            "itdb_http_requests_shed_total",
            "Requests shed by admission control with a fast 503.",
            self.requests_shed(),
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn families_render_with_labels() {
        let m = HttpMetrics::new();
        m.record("GET", "/healthz", 200, Duration::from_millis(1));
        m.record("GET", "/healthz", 200, Duration::from_millis(1));
        m.record("POST", "/query", 422, Duration::from_millis(5));
        assert_eq!(m.total(), 3);
        let mut p = PromText::new();
        m.write_into(&mut p);
        let text = p.finish();
        assert!(
            text.contains(
                "itdb_http_requests_total{method=\"GET\",route=\"/healthz\",status=\"200\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "itdb_http_requests_total{method=\"POST\",route=\"/query\",status=\"422\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("# TYPE itdb_http_request_seconds histogram"),
            "{text}"
        );
    }

    #[test]
    fn latency_histogram_buckets_are_cumulative_per_key() {
        let m = HttpMetrics::new();
        // 1ms lands in the first bucket (le=0.001), 5ms in le=0.005, and
        // 10s in the overflow bucket.
        m.record("GET", "/healthz", 200, Duration::from_millis(1));
        m.record("GET", "/healthz", 200, Duration::from_millis(5));
        m.record("GET", "/healthz", 200, Duration::from_secs(10));
        let mut p = PromText::new();
        m.write_into(&mut p);
        let text = p.finish();
        let labels = "method=\"GET\",route=\"/healthz\",status=\"200\"";
        assert!(
            text.contains(&format!(
                "itdb_http_request_seconds_bucket{{{labels},le=\"0.001\"}} 1\n"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "itdb_http_request_seconds_bucket{{{labels},le=\"0.005\"}} 2\n"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "itdb_http_request_seconds_bucket{{{labels},le=\"2.5\"}} 2\n"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "itdb_http_request_seconds_bucket{{{labels},le=\"+Inf\"}} 3\n"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!("itdb_http_request_seconds_count{{{labels}}} 3\n")),
            "{text}"
        );
        // The sum carries the 10s outlier.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with(&format!("itdb_http_request_seconds_sum{{{labels}}}")))
            .unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(sum > 10.0, "{sum_line}");
    }

    #[test]
    fn supervision_counters_render_and_survive_poison() {
        let m = std::sync::Arc::new(HttpMetrics::new());
        m.record("GET", "/healthz", 200, Duration::from_millis(1));
        m.record_worker_panic();
        m.record_worker_respawn();
        m.record_shed();
        m.record_shed();
        // Poison the registry lock …
        let p = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = p.lock();
            panic!("injected");
        })
        .join();
        // … and everything still records and renders.
        m.record("GET", "/healthz", 200, Duration::from_millis(1));
        assert_eq!(m.total(), 2);
        let mut p = PromText::new();
        m.write_into(&mut p);
        let text = p.finish();
        assert!(text.contains("itdb_worker_panics_total 1"), "{text}");
        assert!(text.contains("itdb_worker_respawns_total 1"), "{text}");
        assert!(text.contains("itdb_http_requests_shed_total 2"), "{text}");
    }
}
