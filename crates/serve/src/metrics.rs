//! The server's own metric families, composed with the engine's
//! evaluation counters into one `/metrics` exposition document.
//!
//! Request counters are keyed by `(method, route, status)`; latency is a
//! per-route running sum + count pair (enough for rate/mean in Prometheus
//! without histogram buckets, which would be overkill for this server).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_trace::prom::PromText;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Debug, Default, Clone)]
struct RouteStat {
    count: u64,
    seconds: f64,
}

/// Thread-safe HTTP request accounting for `/metrics`.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    by_key: Mutex<BTreeMap<(String, String, u16), RouteStat>>,
}

impl HttpMetrics {
    /// A fresh, zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request.
    pub fn record(&self, method: &str, route: &str, status: u16, elapsed: Duration) {
        if let Ok(mut map) = self.by_key.lock() {
            let stat = map
                .entry((method.to_string(), route.to_string(), status))
                .or_default();
            stat.count += 1;
            stat.seconds += elapsed.as_secs_f64();
        }
    }

    /// Total requests recorded across every key (for tests/diagnostics).
    pub fn total(&self) -> u64 {
        self.by_key
            .lock()
            .map(|m| m.values().map(|s| s.count).sum())
            .unwrap_or(0)
    }

    /// Writes the `itdb_http_*` families into `p`.
    pub fn write_into(&self, p: &mut PromText) {
        let map = match self.by_key.lock() {
            Ok(m) => m.clone(),
            Err(_) => return,
        };
        let status_strings: Vec<(String, String, String)> = map
            .keys()
            .map(|(m, r, s)| (m.clone(), r.clone(), s.to_string()))
            .collect();
        let count_samples: Vec<(Vec<(&str, &str)>, f64)> = map
            .values()
            .zip(&status_strings)
            .map(|(stat, (m, r, s))| {
                (
                    vec![
                        ("method", m.as_str()),
                        ("route", r.as_str()),
                        ("status", s.as_str()),
                    ],
                    stat.count as f64,
                )
            })
            .collect();
        p.family(
            "itdb_http_requests_total",
            "HTTP requests served, by method, route and status.",
            "counter",
            &count_samples,
        );
        let latency_samples: Vec<(Vec<(&str, &str)>, f64)> = map
            .values()
            .zip(&status_strings)
            .map(|(stat, (m, r, s))| {
                (
                    vec![
                        ("method", m.as_str()),
                        ("route", r.as_str()),
                        ("status", s.as_str()),
                    ],
                    stat.seconds,
                )
            })
            .collect();
        p.family(
            "itdb_http_request_seconds_total",
            "Cumulative wall clock spent serving requests, by method, route and status.",
            "counter",
            &latency_samples,
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn families_render_with_labels() {
        let m = HttpMetrics::new();
        m.record("GET", "/healthz", 200, Duration::from_millis(1));
        m.record("GET", "/healthz", 200, Duration::from_millis(1));
        m.record("POST", "/query", 422, Duration::from_millis(5));
        assert_eq!(m.total(), 3);
        let mut p = PromText::new();
        m.write_into(&mut p);
        let text = p.finish();
        assert!(
            text.contains(
                "itdb_http_requests_total{method=\"GET\",route=\"/healthz\",status=\"200\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "itdb_http_requests_total{method=\"POST\",route=\"/query\",status=\"422\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("# TYPE itdb_http_request_seconds_total counter"),
            "{text}"
        );
    }
}
