//! Deterministic fault injection for the serve runtime (feature `chaos`,
//! test/CI only — never compiled into a default build).
//!
//! A [`ChaosConfig`] describes a seeded schedule of faults; [`Chaos`]
//! executes it against a live server:
//!
//! - **worker panics** — every `panic_every`-th request panics inside the
//!   request handler (caught by the worker's `catch_unwind`, answered
//!   `500`);
//! - **worker deaths** — every `kill_every`-th request answers `500` and
//!   then panics *outside* the catch region, killing the worker thread so
//!   the supervisor must respawn it;
//! - **torn checkpoint writes** — every `torn_every`-th background
//!   checkpoint write is damaged through `itdb-store`'s fault hooks (the
//!   recovery path must fall back to the previous good generation).
//!
//! The schedule is purely counter- and seed-driven: the same config
//! against the same request sequence injects the same faults, which is
//! what lets the chaos soak assert exact invariants instead of "it
//! probably survived".

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_store::PreWriteHook;
use std::sync::atomic::{AtomicU64, Ordering};

/// The seeded fault schedule.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Seed for the size/offset stream of injected store faults.
    pub seed: u64,
    /// Panic inside the handler on every Nth request (1-based; `None`
    /// disables).
    pub panic_every: Option<u64>,
    /// Kill the worker thread on every Nth request (after answering the
    /// request with a 500, so no accepted request loses its response).
    pub kill_every: Option<u64>,
    /// Damage every Nth background checkpoint write (1-based over the
    /// writer's write index).
    pub torn_every: Option<u64>,
}

impl ChaosConfig {
    /// Reads the schedule from `ITDB_CHAOS_*` environment variables
    /// (`SEED`, `PANIC_EVERY`, `KILL_EVERY`, `TORN_EVERY`). Returns `None`
    /// when no fault is enabled.
    pub fn from_env() -> Option<ChaosConfig> {
        let get =
            |name: &str| -> Option<u64> { std::env::var(name).ok().and_then(|v| v.parse().ok()) };
        let cfg = ChaosConfig {
            seed: get("ITDB_CHAOS_SEED").unwrap_or(0),
            panic_every: get("ITDB_CHAOS_PANIC_EVERY").filter(|&n| n > 0),
            kill_every: get("ITDB_CHAOS_KILL_EVERY").filter(|&n| n > 0),
            torn_every: get("ITDB_CHAOS_TORN_EVERY").filter(|&n| n > 0),
        };
        (cfg.panic_every.is_some() || cfg.kill_every.is_some() || cfg.torn_every.is_some())
            .then_some(cfg)
    }
}

/// What the schedule says to do with the request just popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Handle it normally.
    None,
    /// Panic inside the handler (caught, answered 500).
    PanicInHandler,
    /// Answer 500, then panic outside the catch region (worker dies).
    KillWorker,
}

/// Executes a [`ChaosConfig`] against the live request stream.
#[derive(Debug)]
pub struct Chaos {
    config: ChaosConfig,
    requests: AtomicU64,
}

impl Chaos {
    /// A chaos driver for `config`.
    pub fn new(config: ChaosConfig) -> Self {
        Chaos {
            config,
            requests: AtomicU64::new(0),
        }
    }

    /// Advances the request counter and returns the scheduled action.
    /// `KillWorker` wins when both faults land on the same request.
    pub fn on_request(&self) -> ChaosAction {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.kill_every.is_some_and(|k| n.is_multiple_of(k)) {
            return ChaosAction::KillWorker;
        }
        if self.config.panic_every.is_some_and(|k| n.is_multiple_of(k)) {
            return ChaosAction::PanicInHandler;
        }
        ChaosAction::None
    }

    /// Requests seen so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// A hook for the background checkpoint writer: arms a seeded torn- or
    /// short-write fault on every `torn_every`-th write. Runs on the
    /// writer thread, which is exactly where the store's thread-local
    /// fault plan must be armed.
    pub fn pre_write_hook(config: &ChaosConfig) -> Option<PreWriteHook> {
        let every = config.torn_every?;
        let seed = config.seed;
        Some(Box::new(move |write_index| {
            // 1-based like the request schedule.
            if !(write_index + 1).is_multiple_of(every) {
                return;
            }
            let r = xorshift64(seed ^ (write_index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let kind = if r.is_multiple_of(2) {
                itdb_store::fault::FaultKind::TornWrite {
                    keep: (r >> 1) as usize % 64,
                }
            } else {
                itdb_store::fault::FaultKind::ShortWrite {
                    drop: 1 + (r >> 1) as usize % 32,
                }
            };
            itdb_store::fault::FaultPlan { kind }.arm();
        }))
    }
}

/// The classic xorshift64 step — deterministic, dependency-free.
fn xorshift64(mut x: u64) -> u64 {
    x = x.max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_kill_wins_ties() {
        let chaos = Chaos::new(ChaosConfig {
            seed: 7,
            panic_every: Some(3),
            kill_every: Some(6),
            torn_every: Option::None, // qualified: ChaosAction::None is glob-imported below
        });
        let actions: Vec<ChaosAction> = (0..12).map(|_| chaos.on_request()).collect();
        use ChaosAction::*;
        assert_eq!(
            actions,
            vec![
                None,
                None,
                PanicInHandler,
                None,
                None,
                KillWorker, // 6 is a multiple of both: kill wins
                None,
                None,
                PanicInHandler,
                None,
                None,
                KillWorker,
            ]
        );
    }

    #[test]
    fn pre_write_hook_arms_only_on_schedule() {
        let cfg = ChaosConfig {
            seed: 42,
            torn_every: Some(2),
            ..ChaosConfig::default()
        };
        let hook = Chaos::pre_write_hook(&cfg).unwrap();
        hook(0); // write 1: not a multiple of 2
        assert!(itdb_store::fault::take_armed().is_none());
        hook(1); // write 2: armed
        assert!(itdb_store::fault::take_armed().is_some());
        assert!(
            Chaos::pre_write_hook(&ChaosConfig::default()).is_none(),
            "no torn_every, no hook"
        );
    }
}
