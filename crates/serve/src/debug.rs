//! Per-request introspection state behind the `/debug` endpoint family.
//!
//! One [`DebugState`] is shared by every worker and streamer thread. It
//! holds the four forensic views an operator reaches for when a request
//! goes wrong:
//!
//! * **Flight dumps** — on a governor trip, a caught worker panic, or an
//!   admission-control shed, every live flight-recorder ring
//!   ([`itdb_trace::flight`]) is snapshotted into a bounded deque of
//!   [`FlightDump`]s, served by `GET /debug/flight` (which also includes
//!   a live snapshot taken at request time).
//! * **Slow-query log** — `/query` requests slower than
//!   `--slow-query-ms` are written as one JSONL record (request id,
//!   pattern, status, governor counters, evaluation stats, span profile)
//!   to `--slow-log PATH`, or to stdout when no path is configured.
//! * **In-flight table** — every request registers itself (id, route,
//!   start time) for its duration; `/query` additionally attaches its
//!   per-request [`Governor`], whose atomic counters let
//!   `GET /debug/requests` report fuel spent *while the evaluation is
//!   still running*. Registration is RAII, so a panicking handler
//!   unregisters on unwind.
//! * **Per-route profiles** — each profiled request's span profile is
//!   folded into a per-route aggregate for `GET /debug/profile`.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_lrp::Governor;
use itdb_trace::flight::ThreadFlight;
use itdb_trace::Profile;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Retained flight dumps; older dumps fall off the front.
const MAX_DUMPS: usize = 8;

/// Longest honored inbound `X-Itdb-Request-Id` (longer ids are truncated
/// so a hostile client cannot bloat every event of its own request).
const MAX_REQUEST_ID_LEN: usize = 128;

/// Returns the request's id: the inbound header value if the client sent
/// one (truncated to a sane length), otherwise a fresh process-unique id
/// of the form `{boot:08x}-{seq:06x}`.
pub fn request_id_for(inbound: Option<&str>) -> String {
    match inbound.map(str::trim) {
        Some(id) if !id.is_empty() => id.chars().take(MAX_REQUEST_ID_LEN).collect(),
        _ => {
            static BOOT: OnceLock<u64> = OnceLock::new();
            static SEQ: AtomicU64 = AtomicU64::new(1);
            let boot = *BOOT.get_or_init(|| {
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
                    .unwrap_or(0)
            });
            format!(
                "{:08x}-{:06x}",
                boot & 0xffff_ffff,
                SEQ.fetch_add(1, Ordering::Relaxed)
            )
        }
    }
}

/// One snapshot of every live flight-recorder ring, taken on a trip,
/// panic, or shed.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Monotone dump sequence number (process-wide).
    pub seq: u64,
    /// What triggered the snapshot: `governor_trip`, `worker_panic`, or
    /// `shed`.
    pub reason: String,
    /// The request whose handling triggered the dump, when known.
    pub request_id: Option<String>,
    /// Unix milliseconds at capture.
    pub at_ms: u64,
    /// Every live ring's window at capture.
    pub threads: Vec<ThreadFlight>,
}

impl FlightDump {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.threads.len() * 256);
        let _ = write!(out, "{{\"seq\":{},\"reason\":\"", self.seq);
        itdb_trace::json::escape_into(&self.reason, &mut out);
        out.push('"');
        if let Some(id) = &self.request_id {
            out.push_str(",\"request_id\":\"");
            itdb_trace::json::escape_into(id, &mut out);
            out.push('"');
        }
        let _ = write!(out, ",\"at_ms\":{},\"threads\":[", self.at_ms);
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// One request in flight: registered on dispatch, unregistered (RAII) on
/// completion or unwind.
struct InFlight {
    ticket: u64,
    id: String,
    route: String,
    started: Instant,
    /// Attached by `/query` once its per-request governor exists; its
    /// stats are atomics, readable from the `/debug/requests` renderer
    /// while the evaluation runs on another thread.
    governor: Mutex<Option<Arc<Governor>>>,
}

/// Unregisters the request from the in-flight table on drop.
pub struct InFlightGuard {
    state: Arc<DebugState>,
    entry: Arc<InFlight>,
}

impl InFlightGuard {
    /// Attaches the request's governor so `/debug/requests` can report
    /// its fuel spent live.
    pub fn attach_governor(&self, governor: &Arc<Governor>) {
        let mut slot = lock(&self.entry.governor);
        *slot = Some(Arc::clone(governor));
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        let mut table = lock(&self.state.in_flight);
        table.retain(|e| e.ticket != self.entry.ticket);
    }
}

/// Per-route span-profile aggregate, keyed by `(span kind, label)`.
#[derive(Debug, Default, Clone)]
struct RouteProfile {
    requests: u64,
    spans: BTreeMap<(String, String), SpanAgg>,
}

#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    self_us: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Every structure behind these locks is plain counters and clonable
    // rows; wedging /debug over a panicked writer would be worse than a
    // torn row.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The shared `/debug` state (see the module docs).
pub struct DebugState {
    dumps: Mutex<VecDeque<FlightDump>>,
    dump_seq: AtomicU64,
    dumps_total: AtomicU64,
    slow_total: AtomicU64,
    in_flight: Mutex<Vec<Arc<InFlight>>>,
    ticket_seq: AtomicU64,
    profiles: Mutex<BTreeMap<String, RouteProfile>>,
    /// Live dedicated `/events` streamer threads.
    streamers: AtomicU64,
    slow_log: Mutex<Option<BufWriter<File>>>,
}

impl DebugState {
    /// Fresh state; with `slow_log_path` set, slow-query records append
    /// to that file (created if missing) instead of stdout.
    pub fn new(slow_log_path: Option<&Path>) -> io::Result<Self> {
        let slow_log = match slow_log_path {
            Some(p) => {
                if let Some(parent) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent)?;
                }
                Some(BufWriter::new(
                    OpenOptions::new().create(true).append(true).open(p)?,
                ))
            }
            None => None,
        };
        Ok(DebugState {
            dumps: Mutex::new(VecDeque::new()),
            dump_seq: AtomicU64::new(0),
            dumps_total: AtomicU64::new(0),
            slow_total: AtomicU64::new(0),
            in_flight: Mutex::new(Vec::new()),
            ticket_seq: AtomicU64::new(0),
            profiles: Mutex::new(BTreeMap::new()),
            streamers: AtomicU64::new(0),
            slow_log: Mutex::new(slow_log),
        })
    }

    /// Registers a request in the in-flight table for the guard's
    /// lifetime.
    pub fn register(self: &Arc<Self>, route: &str, id: &str) -> InFlightGuard {
        let entry = Arc::new(InFlight {
            ticket: self.ticket_seq.fetch_add(1, Ordering::Relaxed),
            id: id.to_string(),
            route: route.to_string(),
            started: Instant::now(),
            governor: Mutex::new(None),
        });
        lock(&self.in_flight).push(Arc::clone(&entry));
        InFlightGuard {
            state: Arc::clone(self),
            entry,
        }
    }

    /// Snapshots every live flight ring into a retained [`FlightDump`].
    pub fn capture_dump(&self, reason: &str, request_id: Option<&str>) {
        let dump = FlightDump {
            seq: self.dump_seq.fetch_add(1, Ordering::Relaxed),
            reason: reason.to_string(),
            request_id: request_id.map(str::to_string),
            at_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_millis() & u128::from(u64::MAX)).unwrap_or(0))
                .unwrap_or(0),
            threads: itdb_trace::flight::snapshot_all(),
        };
        self.dumps_total.fetch_add(1, Ordering::Relaxed);
        let mut dumps = lock(&self.dumps);
        if dumps.len() >= MAX_DUMPS {
            dumps.pop_front();
        }
        dumps.push_back(dump);
    }

    /// Flight dumps captured so far (monotone; `itdb_flight_dumps_total`).
    pub fn dumps_total(&self) -> u64 {
        self.dumps_total.load(Ordering::Relaxed)
    }

    /// Slow queries logged so far (monotone; `itdb_slow_queries_total`).
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// Counts a dedicated `/events` streamer thread in/out.
    pub fn streamer_started(&self) {
        self.streamers.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`Self::streamer_started`].
    pub fn streamer_finished(&self) {
        self.streamers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Live dedicated `/events` streamer threads.
    pub fn streamers(&self) -> u64 {
        self.streamers.load(Ordering::Relaxed)
    }

    /// Folds one request's span profile into the route's aggregate.
    pub fn absorb_profile(&self, route: &str, profile: &Profile) {
        let mut profiles = lock(&self.profiles);
        let rp = profiles.entry(route.to_string()).or_default();
        rp.requests += 1;
        for e in &profile.entries {
            let agg = rp
                .spans
                .entry((e.kind.as_str().to_string(), e.label.clone()))
                .or_default();
            agg.count += e.count;
            agg.total_us += u64::try_from(e.total.as_micros()).unwrap_or(u64::MAX);
            agg.self_us += u64::try_from(e.self_time.as_micros()).unwrap_or(u64::MAX);
        }
    }

    /// Writes one slow-query JSONL record and bumps the counter. The
    /// record is a single line; with no `--slow-log` file it goes to
    /// stdout, tagged so it interleaves recognizably with the access log.
    #[allow(clippy::too_many_arguments)]
    pub fn record_slow(
        &self,
        request_id: &str,
        pattern: &str,
        status: &str,
        elapsed_us: u64,
        governor: Option<&Arc<Governor>>,
        stats_json: &str,
        profile: &Profile,
    ) {
        self.slow_total.fetch_add(1, Ordering::Relaxed);
        let mut out = String::with_capacity(256);
        out.push_str("{\"log\":\"slow_query\",\"request_id\":\"");
        itdb_trace::json::escape_into(request_id, &mut out);
        out.push_str("\",\"pattern\":\"");
        itdb_trace::json::escape_into(pattern, &mut out);
        let _ = write!(
            out,
            "\",\"status\":\"{status}\",\"elapsed_us\":{elapsed_us}"
        );
        if let Some(g) = governor {
            let s = g.stats();
            let _ = write!(
                out,
                ",\"governor\":{{\"iterations\":{},\"derived\":{},\"held\":{},\"checks\":{},\"elapsed_ms\":{}}}",
                s.iterations, s.derived, s.held, s.checks, s.elapsed_ms
            );
        }
        let _ = write!(out, ",\"stats\":{stats_json},\"profile\":[");
        for (i, e) in profile.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"kind\":\"{}\",\"label\":\"", e.kind.as_str());
            itdb_trace::json::escape_into(&e.label, &mut out);
            let _ = write!(
                out,
                "\",\"count\":{},\"total_us\":{},\"self_us\":{}}}",
                e.count,
                u64::try_from(e.total.as_micros()).unwrap_or(u64::MAX),
                u64::try_from(e.self_time.as_micros()).unwrap_or(u64::MAX),
            );
        }
        out.push_str("]}");
        let mut file = lock(&self.slow_log);
        match file.as_mut() {
            Some(w) => {
                let _ = writeln!(w, "{out}");
                let _ = w.flush();
            }
            None => println!("{out}"),
        }
    }

    /// `GET /debug/flight` body: live ring snapshots plus retained dumps.
    pub fn flight_json(&self) -> String {
        let live = itdb_trace::flight::snapshot_all();
        let dumps = lock(&self.dumps);
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"dumps_total\":{},\"live\":[", self.dumps_total());
        for (i, t) in live.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("],\"dumps\":[");
        for (i, d) in dumps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str("]}");
        out
    }

    /// `GET /debug/profile` body: per-route span aggregates.
    pub fn profile_json(&self) -> String {
        let profiles = lock(&self.profiles).clone();
        let mut out = String::with_capacity(256);
        out.push_str("{\"routes\":[");
        for (i, (route, rp)) in profiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"route\":\"");
            itdb_trace::json::escape_into(route, &mut out);
            let _ = write!(out, "\",\"requests\":{},\"spans\":[", rp.requests);
            for (j, ((kind, label), agg)) in rp.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"kind\":\"{kind}\",\"label\":\"");
                itdb_trace::json::escape_into(label, &mut out);
                let _ = write!(
                    out,
                    "\",\"count\":{},\"total_us\":{},\"self_us\":{}}}",
                    agg.count, agg.total_us, agg.self_us
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// `GET /debug/requests` body: the in-flight table with live ages and
    /// fuel spent (reads the attached governors' atomic counters).
    pub fn requests_json(&self) -> String {
        let table: Vec<Arc<InFlight>> = lock(&self.in_flight).clone();
        let mut out = String::with_capacity(128);
        out.push_str("{\"in_flight\":[");
        for (i, e) in table.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":\"");
            itdb_trace::json::escape_into(&e.id, &mut out);
            out.push_str("\",\"route\":\"");
            itdb_trace::json::escape_into(&e.route, &mut out);
            let fuel_spent = lock(&e.governor)
                .as_ref()
                .map(|g| g.stats().derived)
                .unwrap_or(0);
            let _ = write!(
                out,
                "\",\"age_us\":{},\"fuel_spent\":{fuel_spent}}}",
                u64::try_from(e.started.elapsed().as_micros()).unwrap_or(u64::MAX)
            );
        }
        out.push_str("]}");
        out
    }

    /// Live in-flight counts by route (the `itdb_http_in_flight` gauge).
    pub fn in_flight_by_route(&self) -> Vec<(String, u64)> {
        let table = lock(&self.in_flight);
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for e in table.iter() {
            *counts.entry(e.route.clone()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Flushes the slow-query log file, if any.
    pub fn flush(&self) {
        if let Some(w) = lock(&self.slow_log).as_mut() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_unique_and_inbound_ids_are_honored() {
        let a = request_id_for(None);
        let b = request_id_for(None);
        assert_ne!(a, b);
        assert_eq!(request_id_for(Some("client-7")), "client-7");
        // Blank inbound ids fall back to generation (thus unique).
        assert_ne!(request_id_for(Some("")), request_id_for(Some("")));
        assert_ne!(request_id_for(Some("  ")), request_id_for(Some("  ")));
        let long = "x".repeat(500);
        assert_eq!(request_id_for(Some(&long)).len(), MAX_REQUEST_ID_LEN);
    }

    #[test]
    fn in_flight_table_registers_and_unregisters() {
        let d = Arc::new(DebugState::new(None).unwrap());
        let g1 = d.register("/query", "req-1");
        let _g2 = d.register("/healthz", "req-2");
        let json = d.requests_json();
        assert!(json.contains("\"id\":\"req-1\""), "{json}");
        assert!(json.contains("\"id\":\"req-2\""), "{json}");
        assert_eq!(
            d.in_flight_by_route(),
            vec![("/healthz".to_string(), 1), ("/query".to_string(), 1)]
        );
        drop(g1);
        let json = d.requests_json();
        assert!(!json.contains("req-1"), "{json}");
        assert!(json.contains("req-2"), "{json}");
    }

    #[test]
    fn dumps_are_bounded_and_counted() {
        let d = Arc::new(DebugState::new(None).unwrap());
        for i in 0..(MAX_DUMPS + 3) {
            d.capture_dump("governor_trip", Some(&format!("req-{i}")));
        }
        assert_eq!(d.dumps_total() as usize, MAX_DUMPS + 3);
        let json = d.flight_json();
        // The oldest dumps fell off; the newest survived.
        assert!(!json.contains("\"request_id\":\"req-0\""), "{json}");
        assert!(
            json.contains(&format!("\"request_id\":\"req-{}\"", MAX_DUMPS + 2)),
            "{json}"
        );
    }

    #[test]
    fn slow_records_append_to_the_log_file() {
        let dir = std::env::temp_dir().join(format!("itdb_debug_slow_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("slow.jsonl");
        let d = Arc::new(DebugState::new(Some(&path)).unwrap());
        d.record_slow(
            "req-slow",
            "p[t]",
            "interrupted",
            1234,
            None,
            "{\"tuples_derived\":5}",
            &Profile::default(),
        );
        d.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().unwrap();
        assert!(line.contains("\"log\":\"slow_query\""), "{line}");
        assert!(line.contains("\"request_id\":\"req-slow\""), "{line}");
        assert!(line.contains("\"elapsed_us\":1234"), "{line}");
        assert_eq!(d.slow_total(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiles_aggregate_by_route_and_span() {
        let d = Arc::new(DebugState::new(None).unwrap());
        let mut p = Profile::default();
        p.entries.push(itdb_trace::ProfileEntry {
            kind: itdb_trace::SpanKind::Evaluate,
            label: "eval".into(),
            count: 1,
            total: std::time::Duration::from_micros(100),
            self_time: std::time::Duration::from_micros(40),
        });
        d.absorb_profile("/query", &p);
        d.absorb_profile("/query", &p);
        let json = d.profile_json();
        assert!(json.contains("\"route\":\"/query\""), "{json}");
        assert!(json.contains("\"requests\":2"), "{json}");
        assert!(
            json.contains("\"count\":2,\"total_us\":200,\"self_us\":80"),
            "{json}"
        );
    }
}
