//! Generalized databases: named extensional relations.
//!
//! A generalized database (§2.1) supplies the extensional predicates of a
//! deductive program, each as a [`GeneralizedRelation`].

use itdb_lrp::{parser, Error, GeneralizedRelation, Result, Schema};
use std::collections::BTreeMap;
use std::fmt;

/// A named collection of generalized relations (the EDB).
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, GeneralizedRelation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds (or replaces) a relation under `name`.
    pub fn insert(&mut self, name: impl Into<String>, rel: GeneralizedRelation) {
        self.relations.insert(name.into(), rel);
    }

    /// Adds a relation parsed from the textual tuple format of
    /// [`itdb_lrp::parser`], e.g.
    ///
    /// ```text
    /// (168n+8, 168n+10; database) : T2 = T1 + 2
    /// ```
    pub fn insert_parsed(&mut self, name: impl Into<String>, text: &str) -> Result<()> {
        self.relations
            .insert(name.into(), parser::parse_relation(text)?);
        Ok(())
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Option<&GeneralizedRelation> {
        self.relations.get(name)
    }

    /// Looks up a relation mutably — the streaming-ingestion hook: new
    /// EDB tuples are merged into the existing relation (with
    /// subsumption) rather than replacing it wholesale.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut GeneralizedRelation> {
        self.relations.get_mut(name)
    }

    /// Removes a relation entirely, returning it if present. Used by the
    /// transactional ingest rollback to undo a relation the failed batch
    /// created.
    pub fn remove(&mut self, name: &str) -> Option<GeneralizedRelation> {
        self.relations.remove(name)
    }

    /// The underlying name → relation map (for whole-database encoders).
    pub(crate) fn relations(&self) -> &BTreeMap<String, GeneralizedRelation> {
        &self.relations
    }

    /// Rebuilds a database from a decoded name → relation map.
    pub(crate) fn from_relations(relations: BTreeMap<String, GeneralizedRelation>) -> Self {
        Database { relations }
    }

    /// Looks up a relation, failing with a schema check against `expected`.
    pub fn get_checked(&self, name: &str, expected: Schema) -> Result<&GeneralizedRelation> {
        match self.relations.get(name) {
            None => Err(Error::SchemaMismatch(format!(
                "extensional predicate `{name}` is not present in the database"
            ))),
            Some(r) if r.schema() != expected => Err(Error::SchemaMismatch(format!(
                "extensional predicate `{name}` has schema {} but the program uses {expected}",
                r.schema()
            ))),
            Some(r) => Ok(r),
        }
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &GeneralizedRelation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name} {}", rel)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdb_lrp::DataValue;

    #[test]
    fn insert_and_get() {
        let mut db = Database::new();
        db.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
        let r = db.get("course").unwrap();
        assert!(r.contains(&[8, 10], &[DataValue::sym("database")]));
        assert!(db.get("nope").is_none());
    }

    #[test]
    fn get_checked_validates_schema() {
        let mut db = Database::new();
        db.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();
        assert!(db.get_checked("course", Schema::new(2, 1)).is_ok());
        assert!(db.get_checked("course", Schema::new(1, 1)).is_err());
        assert!(db.get_checked("absent", Schema::new(1, 0)).is_err());
    }

    #[test]
    fn display_names_relations() {
        let mut db = Database::new();
        db.insert_parsed("r", "(2n)").unwrap();
        let s = db.to_string();
        assert!(s.contains('r'), "{s}");
        assert!(s.contains("2n+0"), "{s}");
    }
}
