//! Abstract syntax of the temporal deductive language (§4.1 of the paper).
//!
//! The language is Datalog over the integers with the successor and
//! predecessor functions: predicates take any number of *temporal*
//! arguments (interpreted over ℤ) followed by any number of *data*
//! arguments (uninterpreted), and clause bodies may additionally contain
//! interpreted constraint atoms built from `<` and `=` on temporal terms.
//!
//! Concrete syntax (see [`crate::parser`]): temporal arguments in square
//! brackets, data arguments in parentheses —
//!
//! ```text
//! problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
//! problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).
//! ```

use itdb_lrp::DataValue;
use std::fmt;

/// A temporal term: either a variable with an integer offset (the paper's
/// `τ ± c`, i.e. iterated successor/predecessor) or an integer constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TemporalTerm {
    /// `v + offset`; `offset` may be negative (predecessor) or zero.
    Var {
        /// Variable name.
        name: String,
        /// Accumulated successor/predecessor applications.
        offset: i64,
    },
    /// A ground temporal term, i.e. an integer.
    Const(i64),
}

impl TemporalTerm {
    /// A bare variable.
    pub fn var(name: impl Into<String>) -> Self {
        TemporalTerm::Var {
            name: name.into(),
            offset: 0,
        }
    }

    /// A shifted variable.
    pub fn var_plus(name: impl Into<String>, offset: i64) -> Self {
        TemporalTerm::Var {
            name: name.into(),
            offset,
        }
    }

    /// The variable name, if this is a variable term.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            TemporalTerm::Var { name, .. } => Some(name),
            TemporalTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for TemporalTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalTerm::Var { name, offset } => {
                if *offset == 0 {
                    write!(f, "{name}")
                } else if *offset > 0 {
                    write!(f, "{name} + {offset}")
                } else {
                    write!(f, "{name} - {}", -offset)
                }
            }
            TemporalTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A data term: an uninterpreted constant or a data variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataTerm {
    /// A data variable (uppercase-initial identifier in the syntax).
    Var(String),
    /// A data constant.
    Const(DataValue),
}

impl DataTerm {
    /// A data variable.
    pub fn var(name: impl Into<String>) -> Self {
        DataTerm::Var(name.into())
    }

    /// A symbolic constant.
    pub fn sym(name: impl AsRef<str>) -> Self {
        DataTerm::Const(DataValue::sym(name))
    }
}

impl fmt::Display for DataTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataTerm::Var(v) => write!(f, "{v}"),
            DataTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A predicate atom `p[τ₁, …, τₘ](d₁, …, d_ℓ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: String,
    /// Temporal arguments.
    pub temporal: Vec<TemporalTerm>,
    /// Data arguments.
    pub data: Vec<DataTerm>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: impl Into<String>, temporal: Vec<TemporalTerm>, data: Vec<DataTerm>) -> Self {
        Atom {
            pred: pred.into(),
            temporal,
            data,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.pred)?;
        for (i, t) in self.temporal.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")?;
        if !self.data.is_empty() {
            write!(f, "(")?;
            for (i, d) in self.data.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Comparison operators of the constraint sub-language. `Le`, `Ge`, `Gt`
/// are convenience forms; over ℤ they reduce to the paper's `<` and `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// A constraint atom `τ₁ op τ₂`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintAtom {
    /// Left-hand temporal term.
    pub lhs: TemporalTerm,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand temporal term.
    pub rhs: TemporalTerm,
}

impl fmt::Display for ConstraintAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A body literal: a (possibly negated) predicate atom or a constraint
/// atom. Negation is *stratified* — the extension the paper's conclusion
/// discusses via \[Rev90\]; see [`mod@crate::analyze`] for the stratification
/// check and [`crate::engine`] for the zone-subtraction semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyAtom {
    /// An intensional or extensional predicate atom.
    Pred(Atom),
    /// A negated predicate atom (`!p[…](…)`).
    Neg(Atom),
    /// An interpreted constraint.
    Constraint(ConstraintAtom),
}

impl fmt::Display for BodyAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyAtom::Pred(a) => write!(f, "{a}"),
            BodyAtom::Neg(a) => write!(f, "!{a}"),
            BodyAtom::Constraint(c) => write!(f, "{c}"),
        }
    }
}

/// A clause `A ← A₁, …, A_r`. An empty body makes the clause a fact schema
/// (its temporal variables range over all of ℤ subject to the constraints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Head atom (must be intensional).
    pub head: Atom,
    /// Body literals.
    pub body: Vec<BodyAtom>,
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " <- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
        }
        write!(f, ".")
    }
}

/// A program: a finite set of clauses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The clauses, in source order.
    pub clauses: Vec<Clause>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// The set of predicate symbols appearing in clause heads (the
    /// intensional predicates).
    pub fn intensional_preds(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.clauses {
            if !out.contains(&c.head.pred.as_str()) {
                out.push(&c.head.pred);
            }
        }
        out
    }

    /// The set of predicate symbols appearing only in bodies (extensional
    /// with respect to this program).
    pub fn extensional_preds(&self) -> Vec<&str> {
        let idb = self.intensional_preds();
        let mut out: Vec<&str> = Vec::new();
        for c in &self.clauses {
            for b in &c.body {
                if let BodyAtom::Pred(a) | BodyAtom::Neg(a) = b {
                    if !idb.contains(&a.pred.as_str()) && !out.contains(&a.pred.as_str()) {
                        out.push(&a.pred);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problems_clause() -> Clause {
        Clause {
            head: Atom::new(
                "problems",
                vec![
                    TemporalTerm::var_plus("t1", 2),
                    TemporalTerm::var_plus("t2", 2),
                ],
                vec![DataTerm::sym("database")],
            ),
            body: vec![BodyAtom::Pred(Atom::new(
                "course",
                vec![TemporalTerm::var("t1"), TemporalTerm::var("t2")],
                vec![DataTerm::sym("database")],
            ))],
        }
    }

    #[test]
    fn display_clause() {
        let c = problems_clause();
        assert_eq!(
            c.to_string(),
            "problems[t1 + 2, t2 + 2](database) <- course[t1, t2](database)."
        );
    }

    #[test]
    fn display_constraint_and_fact() {
        let c = Clause {
            head: Atom::new("p", vec![TemporalTerm::var("t")], vec![]),
            body: vec![BodyAtom::Constraint(ConstraintAtom {
                lhs: TemporalTerm::var("t"),
                op: CmpOp::Lt,
                rhs: TemporalTerm::Const(10),
            })],
        };
        assert_eq!(c.to_string(), "p[t] <- t < 10.");
        let fact = Clause {
            head: Atom::new("q", vec![TemporalTerm::Const(0)], vec![]),
            body: vec![],
        };
        assert_eq!(fact.to_string(), "q[0].");
    }

    #[test]
    fn intensional_extensional_split() {
        let p = Program {
            clauses: vec![
                problems_clause(),
                Clause {
                    head: Atom::new(
                        "problems",
                        vec![
                            TemporalTerm::var_plus("t1", 48),
                            TemporalTerm::var_plus("t2", 48),
                        ],
                        vec![DataTerm::var("C")],
                    ),
                    body: vec![BodyAtom::Pred(Atom::new(
                        "problems",
                        vec![TemporalTerm::var("t1"), TemporalTerm::var("t2")],
                        vec![DataTerm::var("C")],
                    ))],
                },
            ],
        };
        assert_eq!(p.intensional_preds(), vec!["problems"]);
        assert_eq!(p.extensional_preds(), vec!["course"]);
    }

    #[test]
    fn temporal_term_display() {
        assert_eq!(TemporalTerm::var("t").to_string(), "t");
        assert_eq!(TemporalTerm::var_plus("t", 5).to_string(), "t + 5");
        assert_eq!(TemporalTerm::var_plus("t", -3).to_string(), "t - 3");
        assert_eq!(TemporalTerm::Const(-7).to_string(), "-7");
        assert_eq!(TemporalTerm::var("t").var_name(), Some("t"));
        assert_eq!(TemporalTerm::Const(1).var_name(), None);
    }
}
