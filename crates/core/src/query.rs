//! Goal-style querying of computed models.
//!
//! A query is an [`Atom`] pattern over a relation: temporal constants
//! select, repeated temporal variables impose equalities (with offsets),
//! data constants filter, and the answer is the generalized relation over
//! the pattern's distinct variables — in closed form, exactly as the
//! paper's answers "can be finitely represented as temporal databases".
//!
//! Example: against the Example 4.1 model, the pattern
//! `problems[t, t + 2](database)` asks for the session start times `t`
//! whose matching end time is `t + 2`.

use crate::ast::{Atom, DataTerm, TemporalTerm};
use itdb_lrp::{
    algebra, Constraint, Error, GeneralizedRelation, GeneralizedTuple, Result, Schema, Var,
};

/// Evaluates an atom pattern against a relation; see the module docs.
///
/// The answer's temporal columns are the pattern's distinct temporal
/// variables in order of first occurrence; likewise for data columns.
pub fn query(
    rel: &GeneralizedRelation,
    pattern: &Atom,
    budget: u64,
) -> Result<GeneralizedRelation> {
    let schema = rel.schema();
    if pattern.temporal.len() != schema.temporal {
        return Err(Error::ArityMismatch {
            expected: schema.temporal,
            found: pattern.temporal.len(),
        });
    }
    if pattern.data.len() != schema.data {
        return Err(Error::ArityMismatch {
            expected: schema.data,
            found: pattern.data.len(),
        });
    }

    // Distinct temporal variables with their representative column/offset.
    let mut tvars: Vec<(&str, usize, i64)> = Vec::new(); // (name, column, offset)
    let mut constraints: Vec<Constraint> = Vec::new();
    for (col, term) in pattern.temporal.iter().enumerate() {
        match term {
            TemporalTerm::Const(c) => constraints.push(Constraint::EqConst(Var(col), *c)),
            TemporalTerm::Var { name, offset } => {
                match tvars.iter().find(|(n, _, _)| n == name) {
                    Some(&(_, rep_col, rep_off)) => {
                        // col = v + offset, rep = v + rep_off
                        // → col = rep + (offset − rep_off).
                        constraints.push(Constraint::EqVar(
                            Var(col),
                            Var(rep_col),
                            offset.checked_sub(rep_off).ok_or(Error::Overflow)?,
                        ));
                    }
                    None => tvars.push((name, col, *offset)),
                }
            }
        }
    }

    // Select by the induced temporal constraints.
    let selected = algebra::select(rel, &constraints)?;

    // Data handling: constants filter; repeated variables impose equality.
    let mut dvars: Vec<(&str, usize)> = Vec::new();
    let mut filtered = GeneralizedRelation::empty(schema);
    'tuples: for t in selected.tuples() {
        let mut seen: Vec<(&str, usize)> = Vec::new();
        for (col, term) in pattern.data.iter().enumerate() {
            match term {
                DataTerm::Const(c) => {
                    if &t.data()[col] != c {
                        continue 'tuples;
                    }
                }
                DataTerm::Var(v) => match seen.iter().find(|(n, _)| n == v) {
                    Some(&(_, first)) => {
                        if t.data()[first] != t.data()[col] {
                            continue 'tuples;
                        }
                    }
                    None => seen.push((v, col)),
                },
            }
        }
        filtered.insert(t.clone())?;
    }
    for (col, term) in pattern.data.iter().enumerate() {
        if let DataTerm::Var(v) = term {
            if !dvars.iter().any(|(n, _)| n == v) {
                dvars.push((v, col));
            }
        }
    }

    // Undo per-variable offsets (column holds v + offset; the answer column
    // should hold v), then project onto representatives.
    let mut shifted = filtered;
    for &(_, col, off) in &tvars {
        if off != 0 {
            shifted =
                algebra::shift_column(&shifted, col, off.checked_neg().ok_or(Error::Overflow)?)?;
        }
    }
    let temporal_keep: Vec<usize> = tvars.iter().map(|&(_, c, _)| c).collect();
    let data_keep: Vec<usize> = dvars.iter().map(|&(_, c)| c).collect();
    let mut out = algebra::project(&shifted, &temporal_keep, &data_keep, budget)?;
    out.normalize(budget)?;
    Ok(out)
}

/// A boolean (yes/no) query: does any ground tuple match the pattern?
pub fn ask(rel: &GeneralizedRelation, pattern: &Atom, budget: u64) -> Result<bool> {
    let ans = query(rel, pattern, budget)?;
    Ok(!ans.is_empty_semantic(budget)?)
}

/// Builds a single-tuple relation — convenience for tests and examples.
pub fn singleton(schema: Schema, tuple: GeneralizedTuple) -> Result<GeneralizedRelation> {
    GeneralizedRelation::from_tuples(schema, vec![tuple])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::engine::evaluate;
    use crate::parser::{parse_atom, parse_program};
    use itdb_lrp::{DataValue, DEFAULT_RESIDUE_BUDGET as B};

    fn problems_model() -> GeneralizedRelation {
        let p = parse_program(
            "problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
             problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();
        evaluate(&p, &db)
            .unwrap()
            .relation("problems")
            .unwrap()
            .clone()
    }

    #[test]
    fn pattern_with_offset_relation() {
        let rel = problems_model();
        // Start times t such that problems[t, t+2](database).
        let ans = query(
            &rel,
            &parse_atom("problems[t, t + 2](database)").unwrap(),
            B,
        )
        .unwrap();
        assert_eq!(ans.schema(), Schema::new(1, 0));
        for t in [10i64, 34, 58, 82, 106, 130, 154, 178] {
            assert!(ans.contains(&[t], &[]), "t={t}");
        }
        assert!(!ans.contains(&[8], &[]));
        assert!(!ans.contains(&[11], &[]));
        // A wrong offset yields an empty answer.
        let none = query(
            &rel,
            &parse_atom("problems[t, t + 3](database)").unwrap(),
            B,
        )
        .unwrap();
        assert!(none.is_empty_semantic(B).unwrap());
    }

    #[test]
    fn temporal_constant_selects() {
        let rel = problems_model();
        let ans = query(&rel, &parse_atom("problems[10, t](database)").unwrap(), B).unwrap();
        assert_eq!(ans.schema(), Schema::new(1, 0));
        assert!(ans.contains(&[12], &[]));
        assert!(!ans.contains(&[13], &[]));
    }

    #[test]
    fn data_variable_projects() {
        let rel = problems_model();
        let ans = query(&rel, &parse_atom("problems[t1, t2](C)").unwrap(), B).unwrap();
        assert_eq!(ans.schema(), Schema::new(2, 1));
        assert!(ans.contains(&[10, 12], &[DataValue::sym("database")]));
    }

    #[test]
    fn wrong_data_constant_empty() {
        let rel = problems_model();
        let ans = query(&rel, &parse_atom("problems[t1, t2](chemistry)").unwrap(), B).unwrap();
        assert!(ans.is_empty_semantic(B).unwrap());
    }

    #[test]
    fn ask_boolean() {
        let rel = problems_model();
        assert!(ask(
            &rel,
            &parse_atom("problems[t, t + 2](database)").unwrap(),
            B
        )
        .unwrap());
        assert!(!ask(&rel, &parse_atom("problems[t, t](database)").unwrap(), B).unwrap());
        assert!(ask(&rel, &parse_atom("problems[58, 60](database)").unwrap(), B).unwrap());
        assert!(!ask(&rel, &parse_atom("problems[59, 61](database)").unwrap(), B).unwrap());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let rel = problems_model();
        assert!(query(&rel, &parse_atom("problems[t](database)").unwrap(), B).is_err());
        assert!(query(&rel, &parse_atom("problems[t1, t2]").unwrap(), B).is_err());
    }

    #[test]
    fn repeated_temporal_variable_enforces_equality() {
        // Build a small relation with both equal and unequal pairs.
        let mut db = Database::new();
        db.insert_parsed("r", "(6n, 6n) : T2 = T1\n(6n+1, 6n+3) : T2 = T1 + 2")
            .unwrap();
        let rel = db.get("r").unwrap();
        let ans = query(rel, &parse_atom("r[t, t]").unwrap(), B).unwrap();
        assert!(ans.contains(&[0], &[]));
        assert!(ans.contains(&[6], &[]));
        assert!(!ans.contains(&[1], &[]));
    }

    #[test]
    fn repeated_data_variable_enforces_equality() {
        let mut db = Database::new();
        db.insert_parsed("pairs", "(2n; a, a)\n(2n; a, b)").unwrap();
        let rel = db.get("pairs").unwrap();
        let ans = query(rel, &parse_atom("pairs[t](X, X)").unwrap(), B).unwrap();
        assert_eq!(ans.schema(), Schema::new(1, 1));
        assert!(ans.contains(&[0], &[DataValue::sym("a")]));
        assert!(!ans.contains(&[0], &[DataValue::sym("b")]));
    }
}
