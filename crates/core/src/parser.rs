//! Parser for the deductive language's concrete syntax.
//!
//! Grammar (whitespace-insensitive; `%` starts a line comment):
//!
//! ```text
//! program    ::= clause*
//! clause     ::= atom ("<-" body)? "."
//! body       ::= literal ("," literal)*
//! literal    ::= atom | constraint
//! atom       ::= IDENT "[" tterm ("," tterm)* "]" ("(" dterm ("," dterm)* ")")?
//!              | IDENT "(" dterm ("," dterm)* ")"          (temporal arity 0)
//!              | IDENT                                      (propositional)
//! tterm      ::= IDENT (("+"|"-") INT)? | INT               temporal term
//! dterm      ::= UPPER_IDENT | LOWER_IDENT | "#" INT        var / const / int const
//! constraint ::= tterm ("<"|"<="|"="|">="|">") tterm
//! ```
//!
//! By convention (Prolog-style) a data term starting with an uppercase
//! letter is a variable and anything else is a constant; temporal terms in
//! `[...]` are variables whatever their case, or integer literals.

use crate::ast::{Atom, BodyAtom, Clause, CmpOp, ConstraintAtom, DataTerm, Program, TemporalTerm};
use itdb_lrp::{DataValue, Error, Result};

/// Parses a whole program.
pub fn parse_program(input: &str) -> Result<Program> {
    let mut p = P::new(input);
    let mut clauses = Vec::new();
    while !p.at_eof() {
        clauses.push(p.clause()?);
    }
    Ok(Program { clauses })
}

/// Parses a single clause (must end with `.`).
pub fn parse_clause(input: &str) -> Result<Clause> {
    let mut p = P::new(input);
    let c = p.clause()?;
    p.expect_eof()?;
    Ok(c)
}

/// Parses a single atom (no trailing period).
pub fn parse_atom(input: &str) -> Result<Atom> {
    let mut p = P::new(input);
    let a = p.atom()?;
    p.expect_eof()?;
    Ok(a)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn new(src: &'a str) -> Self {
        P {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error::Parse {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn at_eof(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.eat(b) {
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        if self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphabetic() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        } else {
            self.err("expected an identifier")
        }
    }

    fn uint(&mut self) -> Result<i64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected an integer");
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .ok_or(Error::Parse {
                message: "integer overflows i64".into(),
                offset: start,
            })
    }

    fn int(&mut self) -> Result<i64> {
        let neg = self.eat(b'-');
        let v = self.uint()?;
        Ok(if neg { -v } else { v })
    }

    fn tterm(&mut self) -> Result<TemporalTerm> {
        match self.peek() {
            Some(b) if b.is_ascii_digit() || b == b'-' => Ok(TemporalTerm::Const(self.int()?)),
            _ => {
                let name = self.ident()?;
                let offset = match self.peek() {
                    Some(b'+') => {
                        self.pos += 1;
                        self.uint()?
                    }
                    Some(b'-') => {
                        self.pos += 1;
                        -self.uint()?
                    }
                    _ => 0,
                };
                Ok(TemporalTerm::Var { name, offset })
            }
        }
    }

    fn dterm(&mut self) -> Result<DataTerm> {
        self.skip_ws();
        if self.eat(b'#') {
            return Ok(DataTerm::Const(DataValue::Int(self.int()?)));
        }
        let name = self.ident()?;
        if name.as_bytes()[0].is_ascii_uppercase() {
            Ok(DataTerm::Var(name))
        } else {
            Ok(DataTerm::Const(DataValue::sym(&name)))
        }
    }

    pub(crate) fn atom(&mut self) -> Result<Atom> {
        let pred = self.ident()?;
        let mut temporal = Vec::new();
        let mut data = Vec::new();
        if self.eat(b'[') {
            if self.peek() != Some(b']') {
                temporal.push(self.tterm()?);
                while self.eat(b',') {
                    temporal.push(self.tterm()?);
                }
            }
            self.expect(b']')?;
        }
        if self.eat(b'(') {
            if self.peek() != Some(b')') {
                data.push(self.dterm()?);
                while self.eat(b',') {
                    data.push(self.dterm()?);
                }
            }
            self.expect(b')')?;
        }
        Ok(Atom {
            pred,
            temporal,
            data,
        })
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        self.skip_ws();
        if self.eat_str("<=") {
            Ok(CmpOp::Le)
        } else if self.eat_str(">=") {
            Ok(CmpOp::Ge)
        } else if self.eat_str("<") {
            Ok(CmpOp::Lt)
        } else if self.eat_str(">") {
            Ok(CmpOp::Gt)
        } else if self.eat_str("=") {
            Ok(CmpOp::Eq)
        } else {
            self.err("expected a comparison operator")
        }
    }

    fn literal(&mut self) -> Result<BodyAtom> {
        // Negated literal?
        if self.eat(b'!') {
            return Ok(BodyAtom::Neg(self.atom()?));
        }
        // A literal is a constraint iff, after the first temporal term, a
        // comparison operator follows. Try constraint shape first when the
        // literal starts with a digit or '-' (constants can only begin
        // constraints), otherwise parse an identifier and look ahead.
        self.skip_ws();
        let save = self.pos;
        // Attempt: parse a temporal term then an operator.
        if let Ok(lhs) = self.tterm() {
            let save_op = self.pos;
            if let Ok(op) = self.cmp_op() {
                let rhs = self.tterm()?;
                return Ok(BodyAtom::Constraint(ConstraintAtom { lhs, op, rhs }));
            }
            self.pos = save_op;
            // Not a constraint. If the term was a bare variable name it may
            // be a predicate atom; rewind fully and parse as an atom.
            self.pos = save;
        } else {
            self.pos = save;
        }
        Ok(BodyAtom::Pred(self.atom()?))
    }

    fn clause(&mut self) -> Result<Clause> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.eat_str("<-") {
            body.push(self.literal()?);
            while self.eat(b',') {
                body.push(self.literal()?);
            }
        }
        self.expect(b'.')?;
        Ok(Clause { head, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_4_1_program() {
        let p = parse_program(
            "% Example 4.1 from the paper
             problems[t1 + 2, t2 + 2](database) <- course[t1, t2](database).
             problems[t1 + 48, t2 + 48](database) <- problems[t1, t2](database).",
        )
        .unwrap();
        assert_eq!(p.clauses.len(), 2);
        assert_eq!(p.intensional_preds(), vec!["problems"]);
        assert_eq!(p.extensional_preds(), vec!["course"]);
        assert_eq!(
            p.clauses[0].to_string(),
            "problems[t1 + 2, t2 + 2](database) <- course[t1, t2](database)."
        );
    }

    #[test]
    fn constraints_in_body() {
        let c = parse_clause("p[t] <- q[t], t < 100, 0 <= t, t = s + 5, r[s].").unwrap();
        assert_eq!(c.body.len(), 5);
        assert!(matches!(c.body[1], BodyAtom::Constraint(_)));
        assert!(matches!(c.body[2], BodyAtom::Constraint(_)));
        assert!(matches!(c.body[3], BodyAtom::Constraint(_)));
        assert!(matches!(c.body[4], BodyAtom::Pred(_)));
    }

    #[test]
    fn facts_and_propositional_atoms() {
        let p = parse_program("start[0]. flag. pair[1, 2](a, B).").unwrap();
        assert_eq!(p.clauses.len(), 3);
        assert_eq!(p.clauses[0].head.temporal, vec![TemporalTerm::Const(0)]);
        assert!(p.clauses[1].head.temporal.is_empty());
        let pair = &p.clauses[2].head;
        assert_eq!(pair.data[0], DataTerm::Const(DataValue::sym("a")));
        assert_eq!(pair.data[1], DataTerm::Var("B".into()));
    }

    #[test]
    fn negative_offsets_and_constants() {
        let c = parse_clause("p[t - 3] <- q[t], r[-5].").unwrap();
        assert_eq!(c.head.temporal[0], TemporalTerm::var_plus("t", -3));
        if let BodyAtom::Pred(a) = &c.body[1] {
            assert_eq!(a.temporal[0], TemporalTerm::Const(-5));
        } else {
            panic!("expected atom");
        }
    }

    #[test]
    fn integer_data_constants() {
        let c = parse_clause("p[t](#7, x) <- q[t](#7, x).").unwrap();
        assert_eq!(c.head.data[0], DataTerm::Const(DataValue::Int(7)));
    }

    #[test]
    fn comments_skipped() {
        let p = parse_program("% nothing here\n p[t] <- q[t]. % trailing\n").unwrap();
        assert_eq!(p.clauses.len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_clause("p[t] <- q[t]").is_err()); // missing period
        assert!(parse_clause("p[t <- q[t].").is_err());
        assert!(parse_clause("[t] <- q[t].").is_err());
        assert!(parse_program("p[t] <- 3 < .").is_err());
    }

    #[test]
    fn atom_round_trip() {
        for s in ["p[t1 + 2, t2 - 1](a, B)", "q[0]", "flag", "r(x)"] {
            let a = parse_atom(s).unwrap();
            assert_eq!(parse_atom(&a.to_string()).unwrap(), a);
        }
    }
}
