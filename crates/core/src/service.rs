//! Shared serving layer: a loaded program + EDB evaluated per request
//! under per-request resource governors.
//!
//! This is the model `itdb-serve` (and anything else that wants to answer
//! many queries against one workload) builds on. A [`Workload`] is parsed
//! once from a simple line format — a subset of the shell's script
//! commands, so CI fixtures read the same either way:
//!
//! ```text
//! # comment
//! tuple course (168n+8, 168n+10; database) : T2 = T1 + 2
//! rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
//! ```
//!
//! Each [`Service::run_query`] call evaluates the program bottom-up under
//! its **own** [`Governor`] (fuel/deadline from the request, falling back
//! to server defaults) and answers the query pattern against the computed
//! model. Per-request isolation is exact: a trip in one request is
//! invisible to every other, and with equal budgets the same query always
//! produces byte-identical answers, concurrent or not.
//!
//! ## Statistics across a worker pool
//!
//! `itdb_lrp::stats` counters are **thread-local**. A server that lets
//! each pooled worker evaluate requests cannot recover aggregate numbers
//! by calling `itdb_lrp::stats::snapshot()` from the thread that renders
//! `/metrics` — that thread's counters never moved. Worse, two requests
//! interleaved on one worker would mis-attribute each other's work if the
//! scope weren't per-evaluation. The engine already scopes each
//! evaluation's counters by snapshot subtraction *on the evaluating
//! thread*; [`Service`] completes the story by folding every request's
//! [`EvalStats`] into a mutex-guarded aggregate with
//! [`EvalStats::absorb`]. The regression test
//! `pooled_workers_fold_stats_exactly` pins both halves down.

// User-reachable serving path: failures must flow through the error
// taxonomy, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::ast::Program;
use crate::db::Database;
use crate::engine::{evaluate_governed, EvalOptions, EvalOutcome, EvalStats};
use crate::parser::{parse_atom, parse_clause};
use crate::query::query;
use itdb_lrp::{
    parser as lrp_parser, Error, GeneralizedRelation, Governor, Result, Schema, TripReason,
};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A parsed serving workload: the deductive program and its extensional
/// database.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// The program evaluated per request.
    pub program: Program,
    /// The extensional relations.
    pub edb: Database,
}

impl Workload {
    /// Renders the workload back into the line format [`parse_workload`]
    /// accepts: one `tuple NAME (…)` line per generalized tuple (in
    /// relation order) followed by one `rule CLAUSE.` line per clause.
    /// `parse(w.to_text())` reproduces the workload exactly — the
    /// round-trip the `prop_workload` suite pins down.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, rel) in self.edb.iter() {
            for t in rel.tuples() {
                out.push_str(&format!("tuple {name} {t}\n"));
            }
        }
        for c in &self.program.clauses {
            out.push_str(&format!("rule {c}\n"));
        }
        out
    }
}

/// Why one workload line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadErrorKind {
    /// A `tuple` directive without both a relation name and a tuple.
    MissingTupleParts,
    /// The tuple text did not parse (reason from the lrp parser).
    BadTuple(String),
    /// The tuple parsed but could not join its relation (schema clash).
    BadRelation(String),
    /// The rule text did not parse (reason from the clause parser).
    BadRule(String),
    /// A directive that is not `tuple` or `rule`.
    UnknownDirective(String),
}

impl fmt::Display for WorkloadErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadErrorKind::MissingTupleParts => write!(f, "usage: tuple NAME (…)"),
            WorkloadErrorKind::BadTuple(e) => write!(f, "bad tuple: {e}"),
            WorkloadErrorKind::BadRelation(e) => write!(f, "{e}"),
            WorkloadErrorKind::BadRule(e) => write!(f, "bad rule: {e}"),
            WorkloadErrorKind::UnknownDirective(d) => write!(
                f,
                "unsupported directive `{d}` \
                 (serving workloads are declarative: only `tuple` and `rule`)"
            ),
        }
    }
}

/// A workload parse failure: the offending 1-based line plus a typed
/// reason. Nothing is ever silently skipped — the first bad line aborts
/// the parse and is reported exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub kind: WorkloadErrorKind,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for WorkloadError {}

impl From<WorkloadError> for Error {
    fn from(e: WorkloadError) -> Self {
        Error::Eval(e.to_string())
    }
}

/// Parses the workload line format: blank lines and `#`/`%` comments are
/// skipped; `tuple NAME (…)` adds one generalized tuple to the named
/// relation; `rule CLAUSE.` adds one clause. Anything else — including
/// shell commands like `eval` that make no sense in a declarative
/// workload — is rejected with the offending line number.
pub fn parse_workload(text: &str) -> Result<Workload> {
    parse_workload_typed(text).map_err(Into::into)
}

/// [`parse_workload`] with a structured error: the exact line number and
/// a typed reason ([`WorkloadErrorKind`]) instead of a flattened string.
pub fn parse_workload_typed(text: &str) -> std::result::Result<Workload, WorkloadError> {
    let mut program = Program::default();
    let mut relations: Vec<(String, GeneralizedRelation)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let lineno = lineno + 1;
        let fail = |kind: WorkloadErrorKind| WorkloadError { line: lineno, kind };
        match cmd {
            "tuple" => {
                let (name, tuple_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| fail(WorkloadErrorKind::MissingTupleParts))?;
                let tuple = lrp_parser::parse_tuple(tuple_text.trim())
                    .map_err(|e| fail(WorkloadErrorKind::BadTuple(e.to_string())))?;
                let schema = Schema::new(tuple.temporal_arity(), tuple.data_arity());
                match relations.iter_mut().find(|(n, _)| n == name) {
                    Some((_, rel)) => rel
                        .insert(tuple)
                        .map_err(|e| fail(WorkloadErrorKind::BadRelation(e.to_string())))?,
                    None => relations.push((
                        name.to_string(),
                        GeneralizedRelation::from_tuples(schema, vec![tuple])
                            .map_err(|e| fail(WorkloadErrorKind::BadRelation(e.to_string())))?,
                    )),
                }
            }
            "rule" => {
                let clause = parse_clause(rest)
                    .map_err(|e| fail(WorkloadErrorKind::BadRule(e.to_string())))?;
                program.clauses.push(clause);
            }
            other => {
                return Err(fail(WorkloadErrorKind::UnknownDirective(other.to_string())));
            }
        }
    }
    let mut edb = Database::new();
    for (name, rel) in relations {
        edb.insert(name, rel);
    }
    Ok(Workload { program, edb })
}

/// Server-side default resource ceilings, applied when a request does not
/// bring its own.
#[derive(Debug, Clone, Default)]
pub struct ServiceDefaults {
    /// Default derivation fuel per request (`None` = unlimited).
    pub fuel: Option<u64>,
    /// Default wall-clock deadline per request (`None` = unlimited).
    pub timeout: Option<Duration>,
}

/// One query request: a pattern plus optional per-request ceilings.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The atom pattern, e.g. `problems[t, t + 2](database)`.
    pub pattern: String,
    /// Derivation-fuel override for this request.
    pub fuel: Option<u64>,
    /// Deadline override for this request.
    pub timeout: Option<Duration>,
    /// Request id installed as the thread's trace context for the
    /// evaluation (see `itdb_trace::context`) and echoed in the response.
    pub request_id: Option<String>,
}

/// How a served query's evaluation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStatus {
    /// The least model was computed exactly.
    Complete,
    /// The model is not finitely representable by this process (or needed
    /// more grace iterations); the answers below are over a sound partial
    /// model.
    Diverged,
    /// The per-request governor tripped; the answers below are over a
    /// sound partial model.
    Interrupted(TripReason),
}

/// The answer to one served query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The queried predicate.
    pub pred: String,
    /// How the evaluation backing this answer ended.
    pub status: QueryStatus,
    /// Generalized answer tuples in the textual closed form, one per
    /// tuple, in the deterministic order of the computed relation.
    pub answers: Vec<String>,
    /// This request's evaluation statistics (already folded into the
    /// service aggregate).
    pub stats: EvalStats,
    /// The request id this answer belongs to (echoed from the request).
    pub request_id: Option<String>,
}

impl QueryResponse {
    /// Renders the response as one JSON object via the workspace's
    /// hand-rolled encoder (stable field order, strings escaped).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        out.push_str("{\"predicate\":\"");
        itdb_trace::json::escape_into(&self.pred, &mut out);
        let status = match &self.status {
            QueryStatus::Complete => "complete",
            QueryStatus::Diverged => "diverged",
            QueryStatus::Interrupted(_) => "interrupted",
        };
        let _ = write!(out, "\",\"status\":\"{status}\"");
        if let QueryStatus::Interrupted(reason) = &self.status {
            out.push_str(",\"trip\":\"");
            itdb_trace::json::escape_into(&reason.to_string(), &mut out);
            out.push('"');
        }
        out.push_str(",\"answers\":[");
        for (i, a) in self.answers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            itdb_trace::json::escape_into(a, &mut out);
            out.push('"');
        }
        let _ = write!(out, "],\"stats\":{}", self.stats.to_json());
        // Rendered after `stats` so byte-comparison harnesses that strip
        // everything from `,"stats":` onward keep working unchanged.
        if let Some(id) = &self.request_id {
            out.push_str(",\"request_id\":\"");
            itdb_trace::json::escape_into(id, &mut out);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Aggregate serving counters, folded under one lock.
#[derive(Debug, Clone, Default)]
pub struct ServiceTotals {
    /// Queries answered (any status).
    pub queries: u64,
    /// Queries whose evaluation was interrupted by the governor.
    pub interrupted: u64,
    /// Folded per-request evaluation statistics. `strata` stays empty —
    /// per-stratum timing is a per-evaluation notion, not a fleet one.
    pub stats: EvalStats,
}

/// A workload plus the machinery to answer queries against it repeatedly,
/// safely from many threads at once.
pub struct Service {
    workload: Workload,
    defaults: ServiceDefaults,
    totals: Mutex<ServiceTotals>,
}

impl Service {
    /// Wraps a workload with serving defaults.
    pub fn new(workload: Workload, defaults: ServiceDefaults) -> Self {
        Service {
            workload,
            defaults,
            totals: Mutex::new(ServiceTotals::default()),
        }
    }

    /// The loaded workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The configured serving defaults.
    pub fn defaults(&self) -> &ServiceDefaults {
        &self.defaults
    }

    /// Locks the totals, recovering from poison. A panicking worker can
    /// only have left the aggregate mid-`absorb` — every field is a plain
    /// counter, so the worst case is one request's stats partially folded;
    /// wedging `/metrics` forever over that would be strictly worse.
    fn lock_totals(&self) -> std::sync::MutexGuard<'_, ServiceTotals> {
        self.totals.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Answers one query: evaluate the program under a fresh per-request
    /// governor, then run the pattern against the computed (or partial)
    /// model. Extensional predicates are served straight from the EDB.
    pub fn run_query(&self, req: &QueryRequest) -> Result<QueryResponse> {
        self.run_query_observed(req, |_| {})
    }

    /// [`Self::run_query`], additionally handing the per-request
    /// [`Governor`] to `observe` before evaluation starts. The serve
    /// layer uses this to publish the governor in its in-flight request
    /// table — `GovernorStats` is all atomics, so `/debug/requests` can
    /// read fuel spent from another thread while the evaluation runs.
    ///
    /// If the request carries an id, it is installed as the thread's
    /// trace context for the duration, so every event the evaluation
    /// emits — including events folded back from parallel workers —
    /// carries the id.
    pub fn run_query_observed(
        &self,
        req: &QueryRequest,
        observe: impl FnOnce(&Arc<Governor>),
    ) -> Result<QueryResponse> {
        let _ctx = req
            .request_id
            .as_deref()
            .map(itdb_trace::context::set_request_id);
        let atom = parse_atom(&req.pattern)?;
        let opts = EvalOptions {
            max_derived_tuples: req.fuel.or(self.defaults.fuel),
            timeout: req.timeout.or(self.defaults.timeout),
            ..EvalOptions::default()
        };
        let governor = Governor::new(opts.governor_config());
        observe(&governor);
        let eval = evaluate_governed(&self.workload.program, &self.workload.edb, &opts, &governor)?;
        let rel = match eval.relation(&atom.pred) {
            Some(r) => r,
            None => self.workload.edb.get(&atom.pred).ok_or_else(|| {
                Error::Eval(format!(
                    "unknown predicate `{}` (neither derived nor extensional)",
                    atom.pred
                ))
            })?,
        };
        let answers_rel = query(rel, &atom, opts.residue_budget)?;
        let answers: Vec<String> = answers_rel.tuples().iter().map(|t| t.to_string()).collect();
        let status = match &eval.outcome {
            EvalOutcome::Converged { .. } => QueryStatus::Complete,
            EvalOutcome::DivergedAfterFeSafety { .. } => QueryStatus::Diverged,
            EvalOutcome::Interrupted(i) => QueryStatus::Interrupted(i.reason.clone()),
        };
        // The explicit cross-thread fold — see the module docs.
        {
            let mut totals = self.lock_totals();
            totals.queries += 1;
            if matches!(status, QueryStatus::Interrupted(_)) {
                totals.interrupted += 1;
            }
            totals.stats.absorb(&eval.stats);
        }
        Ok(QueryResponse {
            pred: atom.pred.clone(),
            status,
            answers,
            stats: eval.stats,
            request_id: req.request_id.clone(),
        })
    }

    /// A snapshot of the folded aggregate counters.
    pub fn totals(&self) -> ServiceTotals {
        self.lock_totals().clone()
    }

    /// Replaces the aggregate counters wholesale — the restore half of a
    /// serve-layer checkpoint (counters persisted before a crash carry on
    /// instead of restarting from zero).
    pub fn restore_totals(&self, totals: ServiceTotals) {
        *self.lock_totals() = totals;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const WORKLOAD: &str = "\
        # Example 4.1, serving edition.\n\
        tuple course (168n+8, 168n+10; database) : T2 = T1 + 2\n\
        rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).\n\
        rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).\n";

    const DIVERGING: &str = "\
        tuple seed (n) : T1 = 0\n\
        rule p[t] <- seed[t].\n\
        rule p[t + 1] <- p[t].\n";

    fn service(src: &str) -> Service {
        Service::new(parse_workload(src).unwrap(), ServiceDefaults::default())
    }

    fn req(pattern: &str, fuel: Option<u64>) -> QueryRequest {
        QueryRequest {
            pattern: pattern.to_string(),
            fuel,
            timeout: None,
            request_id: None,
        }
    }

    #[test]
    fn workload_parses_tuples_and_rules() {
        let w = parse_workload(WORKLOAD).unwrap();
        assert_eq!(w.program.clauses.len(), 2);
        assert_eq!(w.edb.len(), 1);
    }

    #[test]
    fn workload_rejects_non_declarative_directives() {
        let err = parse_workload("tuple p (n)\neval\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("eval"), "{msg}");
        assert!(parse_workload("tuple p\n").is_err(), "missing tuple text");
        assert!(parse_workload("rule p[t] <-\n").is_err(), "bad clause");
    }

    #[test]
    fn query_answers_in_closed_form() {
        let s = service(WORKLOAD);
        let resp = s
            .run_query(&req("problems[t, t + 2](database)", None))
            .unwrap();
        assert_eq!(resp.status, QueryStatus::Complete);
        assert!(!resp.answers.is_empty());
        let json = resp.to_json();
        assert!(json.contains("\"status\":\"complete\""), "{json}");
        assert!(json.contains("\"answers\":["), "{json}");
    }

    #[test]
    fn extensional_predicates_are_queryable() {
        let s = service(WORKLOAD);
        let resp = s.run_query(&req("course[t1, t2](C)", None)).unwrap();
        assert_eq!(resp.status, QueryStatus::Complete);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn unknown_predicate_is_a_proper_error() {
        let s = service(WORKLOAD);
        assert!(s.run_query(&req("nope[t]", None)).is_err());
    }

    #[test]
    fn per_request_fuel_isolates_trips() {
        let s = service(DIVERGING);
        // A starved request trips …
        let starved = s.run_query(&req("p[t]", Some(3))).unwrap();
        assert!(matches!(starved.status, QueryStatus::Interrupted(_)));
        // … and still answers from the sound partial model.
        assert!(!starved.answers.is_empty());
        // A well-fed diverging request reports divergence (grace ran out)
        // without inheriting the starved request's trip.
        let t = s.totals();
        assert_eq!(t.queries, 1);
        assert_eq!(t.interrupted, 1);
    }

    /// The request-id chain at the service layer: the id is installed as
    /// the trace context for exactly the duration of the evaluation, every
    /// emitted event carries it (including events folded back from the
    /// parallel derive pool when `ITDB_PARALLEL` forces sharding), and the
    /// response echoes it after `stats` so byte-comparison harnesses that
    /// strip from `,"stats":` onward are unaffected.
    #[test]
    fn request_id_is_echoed_and_stamped_on_every_event() {
        let s = service(WORKLOAD);
        let mut r = req("problems[t, t + 2](database)", None);
        r.request_id = Some("req-echo-42".into());
        let mem = std::sync::Arc::new(itdb_trace::MemorySink::new());
        let sink = itdb_trace::add_sink(mem.clone());
        let resp = s.run_query(&r);
        itdb_trace::remove_sink(sink);
        let resp = resp.unwrap();
        assert_eq!(resp.request_id.as_deref(), Some("req-echo-42"));
        let json = resp.to_json();
        assert!(json.ends_with(",\"request_id\":\"req-echo-42\"}"), "{json}");
        let events = mem.take();
        assert!(!events.is_empty(), "evaluation must emit events");
        for e in &events {
            assert_eq!(
                e.request_id.as_deref(),
                Some("req-echo-42"),
                "unstamped event: {}",
                e.to_json()
            );
        }
        assert_eq!(
            itdb_trace::current_request_id(),
            None,
            "context must not leak past the request"
        );
    }

    /// `run_query_observed` publishes the per-request governor before
    /// evaluation; its stats stay readable (all atomics) from the
    /// observer's copy while and after the query runs.
    #[test]
    fn observed_governor_reports_fuel_spent() {
        let s = service(DIVERGING);
        let mut observed = None;
        let resp = s
            .run_query_observed(&req("p[t]", Some(5)), |g| observed = Some(Arc::clone(g)))
            .unwrap();
        let governor = observed.expect("observer ran");
        assert!(matches!(resp.status, QueryStatus::Interrupted(_)));
        assert!(
            governor.stats().derived >= 5,
            "fuel spent visible cross-thread (saw {})",
            governor.stats().derived
        );
    }

    #[test]
    fn equal_budgets_give_byte_identical_answers() {
        let s = service(DIVERGING);
        let a = s.run_query(&req("p[t]", Some(5))).unwrap();
        let b = s.run_query(&req("p[t]", Some(5))).unwrap();
        // Everything but wall-clock timing is deterministic.
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.status, b.status);
        assert_eq!(a.stats.tuples_derived, b.stats.tuples_derived);
        assert_eq!(a.stats.counters, b.stats.counters);
    }

    /// A worker panicking while holding the totals lock poisons it; the
    /// service must keep serving real numbers (and keep folding new ones)
    /// instead of wedging `/metrics` with defaults forever.
    #[test]
    fn poisoned_totals_recover_instead_of_wedging() {
        let s = std::sync::Arc::new(service(WORKLOAD));
        s.run_query(&req("problems[t, t + 2](database)", None))
            .unwrap();
        let before = s.totals();
        assert_eq!(before.queries, 1);
        // Poison the mutex: panic while holding the guard.
        let poisoner = std::sync::Arc::clone(&s);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock_totals();
            panic!("injected worker panic");
        })
        .join();
        assert!(s.totals.is_poisoned());
        // Reads still see the true aggregate …
        assert_eq!(s.totals().queries, 1);
        // … and new requests still fold into it.
        s.run_query(&req("problems[t, t + 2](database)", None))
            .unwrap();
        let after = s.totals();
        assert_eq!(after.queries, 2);
        assert!(after.stats.tuples_derived > before.stats.tuples_derived);
        // restore_totals also works through the poison.
        s.restore_totals(ServiceTotals::default());
        assert_eq!(s.totals().queries, 0);
    }

    /// The tentpole regression: N pooled workers answer queries; the
    /// coordinator's thread-local counters see nothing, while the folded
    /// aggregate equals the sum of the per-request stats exactly.
    #[test]
    fn pooled_workers_fold_stats_exactly() {
        let s = std::sync::Arc::new(service(WORKLOAD));
        let coordinator_before = itdb_lrp::stats::snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    s.run_query(&req("problems[t, t + 2](database)", None))
                        .map(|r| r.stats)
                })
            })
            .collect();
        let mut expected = EvalStats::default();
        for h in handles {
            let stats = h.join().map_err(|_| "worker panicked").unwrap().unwrap();
            assert!(
                stats.counters.subsumption_checks > 0,
                "per-request stats must reflect the evaluating worker's work"
            );
            expected.absorb(&stats);
        }
        let coordinator_delta = itdb_lrp::stats::snapshot() - coordinator_before;
        assert_eq!(
            coordinator_delta,
            itdb_lrp::stats::Counters::default(),
            "snapshotting from the coordinator would mis-attribute (see module docs)"
        );
        let totals = s.totals();
        assert_eq!(totals.queries, 4);
        assert_eq!(totals.stats.counters, expected.counters);
        assert_eq!(totals.stats.tuples_derived, expected.tuples_derived);
        assert_eq!(totals.stats.tuples_inserted, expected.tuples_inserted);
    }
}
