//! Prometheus text-format export of evaluation statistics and span
//! profiles (`--metrics file.prom`, and the shell's metrics snapshot).
//!
//! Rendering goes through [`itdb_trace::prom::PromText`], which validates
//! metric and label names and escapes label values, so the output is
//! always a well-formed exposition-format document regardless of what the
//! program's rule texts contain.

use crate::checkpoint::CheckpointReport;
use crate::engine::EvalStats;
use itdb_trace::prom::PromText;
use itdb_trace::{Profile, SpanKind};

/// Renders `stats` (and, when given, a span `profile`) as one Prometheus
/// text exposition-format document.
pub fn render_metrics(stats: &EvalStats, profile: Option<&Profile>) -> String {
    render_metrics_full(stats, profile, None)
}

/// [`render_metrics`] plus durable-checkpoint counters when the evaluation
/// ran with a checkpoint policy (snapshot sizes, write latency, resume
/// provenance).
pub fn render_metrics_full(
    stats: &EvalStats,
    profile: Option<&Profile>,
    checkpoints: Option<&CheckpointReport>,
) -> String {
    let mut p = PromText::new();
    write_metrics_into(&mut p, stats, profile, checkpoints);
    p.finish()
}

/// Writes the metric families of [`render_metrics_full`] into an existing
/// [`PromText`] builder, so callers (e.g. the HTTP server) can compose one
/// exposition document from evaluation statistics plus families of their
/// own.
pub fn write_metrics_into(
    p: &mut PromText,
    stats: &EvalStats,
    profile: Option<&Profile>,
    checkpoints: Option<&CheckpointReport>,
) {
    p.counter(
        "itdb_tuples_derived_total",
        "Candidate head tuples produced by clause applications.",
        stats.tuples_derived,
    );
    p.counter(
        "itdb_tuples_inserted_total",
        "Tuples that survived subsumption and entered the model.",
        stats.tuples_inserted,
    );
    p.counter(
        "itdb_tuples_subsumed_total",
        "Tuples derived but already covered by the interpretation.",
        stats.tuples_subsumed,
    );
    let c = &stats.counters;
    p.counter(
        "itdb_subsumption_checks_total",
        "Semantic subsumption checks performed.",
        c.subsumption_checks,
    );
    p.counter(
        "itdb_index_candidates_total",
        "Tuples consulted through the data-vector index.",
        c.index_candidates,
    );
    p.counter(
        "itdb_index_scanned_naive_total",
        "Tuples a full linear scan would have consulted at the same sites.",
        c.index_scanned_naive,
    );
    p.counter(
        "itdb_canonicalize_calls_total",
        "Zone canonicalization fixpoints run.",
        c.canonicalize_calls,
    );
    p.counter(
        "itdb_canonical_cache_hits_total",
        "Canonical-form requests answered from the per-tuple memo.",
        c.canonical_cache_hits,
    );
    p.counter(
        "itdb_canonical_cache_misses_total",
        "Canonical-form requests that had to compute.",
        c.canonical_cache_misses,
    );
    p.counter(
        "itdb_empty_cache_hits_total",
        "Emptiness verdicts answered from the per-tuple memo.",
        c.empty_cache_hits,
    );
    p.counter(
        "itdb_empty_cache_misses_total",
        "Emptiness verdicts that had to compute.",
        c.empty_cache_misses,
    );
    p.gauge(
        "itdb_elapsed_seconds",
        "Total evaluation wall clock, final coalescing included.",
        stats.elapsed.as_secs_f64(),
    );
    p.counter(
        "itdb_trace_dropped_events_total",
        "Trace events dropped by JSONL sinks after exhausting write retries.",
        itdb_trace::dropped_events(),
    );
    if let Some(cp) = checkpoints {
        p.counter(
            "itdb_checkpoints_written_total",
            "Durable checkpoints successfully written this evaluation.",
            cp.written,
        );
        p.counter(
            "itdb_checkpoint_write_failures_total",
            "Checkpoint writes that failed (evaluation continued).",
            cp.failed,
        );
        p.gauge(
            "itdb_checkpoint_last_bytes",
            "Image size of the most recent checkpoint, in bytes.",
            cp.last_bytes as f64,
        );
        p.gauge(
            "itdb_checkpoint_last_write_seconds",
            "Wall clock of the most recent checkpoint write (encode + fsync).",
            cp.last_write_us as f64 / 1e6,
        );
        p.gauge(
            "itdb_checkpoint_last_generation",
            "Generation number of the most recent checkpoint (0 = none).",
            cp.last_generation.unwrap_or(0) as f64,
        );
    }

    let stratum_labels: Vec<(String, String)> = stats
        .strata
        .iter()
        .enumerate()
        .map(|(i, s)| (i.to_string(), s.preds.join(",")))
        .collect();
    let per_stratum = |f: &dyn Fn(&crate::engine::StratumStats) -> f64| {
        stats
            .strata
            .iter()
            .zip(&stratum_labels)
            .map(|(s, (idx, preds))| {
                (
                    vec![("stratum", idx.as_str()), ("preds", preds.as_str())],
                    f(s),
                )
            })
            .collect::<Vec<_>>()
    };
    p.family(
        "itdb_stratum_iterations",
        "T_GP iterations run per stratum.",
        "gauge",
        &per_stratum(&|s| s.iterations as f64),
    );
    p.family(
        "itdb_stratum_inserted",
        "Tuples inserted per stratum.",
        "gauge",
        &per_stratum(&|s| s.inserted as f64),
    );
    p.family(
        "itdb_stratum_seconds",
        "Wall clock per stratum.",
        "gauge",
        &per_stratum(&|s| s.elapsed.as_secs_f64()),
    );

    if let Some(profile) = profile {
        let rules: Vec<&itdb_trace::ProfileEntry> = profile.of_kind(SpanKind::Rule).collect();
        let self_samples: Vec<(Vec<(&str, &str)>, f64)> = rules
            .iter()
            .map(|e| (vec![("rule", e.label.as_str())], e.self_time.as_secs_f64()))
            .collect();
        p.family(
            "itdb_rule_self_seconds",
            "Wall clock inside each rule's clause applications, child spans excluded.",
            "gauge",
            &self_samples,
        );
        let count_samples: Vec<(Vec<(&str, &str)>, f64)> = rules
            .iter()
            .map(|e| (vec![("rule", e.label.as_str())], e.count as f64))
            .collect();
        p.family(
            "itdb_rule_applications",
            "Times each rule was applied.",
            "gauge",
            &count_samples,
        );
        let ops: Vec<(Vec<(&str, &str)>, f64)> = profile
            .of_kind(SpanKind::Op)
            .map(|e| (vec![("op", e.label.as_str())], e.self_time.as_secs_f64()))
            .collect();
        p.family(
            "itdb_op_self_seconds",
            "Wall clock inside instrumented algebra/relation operations.",
            "gauge",
            &ops,
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::engine::evaluate;
    use crate::parser::parse_program;

    #[test]
    fn metrics_render_well_formed_exposition_text() {
        let p = parse_program("p[t + 5] <- e[t]. p[t + 5] <- p[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(15n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let text = render_metrics(&eval.stats, None);
        assert!(text.contains("# TYPE itdb_tuples_derived_total counter"));
        assert!(text.contains("itdb_stratum_iterations{stratum=\"0\",preds=\"p\"}"));
        assert!(text.contains("itdb_elapsed_seconds"));
        // Every line is a comment or a `name{labels} value` sample with a
        // parseable float value.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().expect("value is a number");
        }
    }

    #[test]
    fn metrics_include_checkpoint_counters_when_given() {
        let p = parse_program("p[t + 5] <- e[t]. p[t + 5] <- p[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(15n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let report = crate::checkpoint::CheckpointReport {
            written: 2,
            failed: 1,
            last_generation: Some(2),
            last_bytes: 4096,
            last_write_us: 1500,
            resumed_from: None,
        };
        let text = render_metrics_full(&eval.stats, None, Some(&report));
        assert!(text.contains("itdb_checkpoints_written_total 2"), "{text}");
        assert!(
            text.contains("itdb_checkpoint_write_failures_total 1"),
            "{text}"
        );
        assert!(text.contains("itdb_checkpoint_last_bytes 4096"), "{text}");
        assert!(text.contains("itdb_trace_dropped_events_total"), "{text}");
        // Without a report the checkpoint family is absent but the dropped
        // counter still renders.
        let bare = render_metrics(&eval.stats, None);
        assert!(!bare.contains("itdb_checkpoints_written_total"));
        assert!(bare.contains("itdb_trace_dropped_events_total"));
    }

    #[test]
    fn metrics_include_rule_profile_when_given() {
        let p = parse_program("p[t + 5] <- e[t]. p[t + 5] <- p[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(15n)").unwrap();
        itdb_trace::set_profiling(true);
        let eval = evaluate(&p, &db).unwrap();
        itdb_trace::set_profiling(false);
        let profile = itdb_trace::take_profile();
        let text = render_metrics(&eval.stats, Some(&profile));
        assert!(
            text.contains("itdb_rule_self_seconds{rule=\"r1: p[t + 5] <- p[t].\"}")
                || text.contains("itdb_rule_self_seconds{rule=\"r1"),
            "{text}"
        );
        assert!(text.contains("itdb_rule_applications"), "{text}");
    }
}
