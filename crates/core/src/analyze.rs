//! Static analysis of deductive programs.
//!
//! Checks performed before evaluation:
//!
//! * **signature consistency** — every occurrence of a predicate symbol has
//!   the same temporal and data arities;
//! * **intensional/extensional separation** — extensional predicates never
//!   appear in clause heads (they come from the generalized database);
//! * **data safety** — every data *variable* in a clause head occurs in some
//!   body predicate atom (temporal variables need no such restriction: an
//!   unbound temporal variable ranges over all of ℤ, which is representable
//!   as the lrp `n`);
//! * **dependency information** — the predicate dependency graph and the
//!   set of recursive predicates, used by the engine's semi-naive mode and
//!   reported for diagnostics.

use crate::ast::{BodyAtom, DataTerm, Program};
use itdb_lrp::{Error, Result, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// Result of analyzing a program.
#[derive(Debug, Clone)]
pub struct ProgramInfo {
    /// Arity signature of every predicate mentioned by the program.
    pub signatures: BTreeMap<String, Schema>,
    /// Predicates defined by clause heads.
    pub intensional: BTreeSet<String>,
    /// Predicates only read (must be supplied by the EDB).
    pub extensional: BTreeSet<String>,
    /// Edges `p → q` meaning "p's definition depends on q".
    pub dependencies: BTreeSet<(String, String)>,
    /// Intensional predicates involved in a dependency cycle.
    pub recursive: BTreeSet<String>,
    /// Evaluation order for stratified negation: head predicates grouped by
    /// dependency SCC, lower strata first. Negated atoms may only refer to
    /// strictly lower strata (or extensional predicates).
    pub strata: Vec<BTreeSet<String>>,
}

impl ProgramInfo {
    /// Does the program contain recursion at all?
    pub fn has_recursion(&self) -> bool {
        !self.recursive.is_empty()
    }
}

/// Analyzes a program; fails with a descriptive error on any violation.
pub fn analyze(p: &Program) -> Result<ProgramInfo> {
    let mut signatures: BTreeMap<String, Schema> = BTreeMap::new();
    let mut check = |pred: &str, temporal: usize, data: usize| -> Result<()> {
        let s = Schema::new(temporal, data);
        match signatures.get(pred) {
            Some(prev) if *prev != s => Err(Error::SchemaMismatch(format!(
                "predicate {pred} used with arities {prev} and {s}"
            ))),
            _ => {
                signatures.insert(pred.to_string(), s);
                Ok(())
            }
        }
    };

    for c in &p.clauses {
        check(&c.head.pred, c.head.temporal.len(), c.head.data.len())?;
        for b in &c.body {
            if let BodyAtom::Pred(a) | BodyAtom::Neg(a) = b {
                check(&a.pred, a.temporal.len(), a.data.len())?;
            }
        }
    }

    let intensional: BTreeSet<String> = p.clauses.iter().map(|c| c.head.pred.clone()).collect();
    let mut extensional = BTreeSet::new();
    let mut dependencies = BTreeSet::new();
    let mut neg_dependencies: BTreeSet<(String, String)> = BTreeSet::new();
    for c in &p.clauses {
        for b in &c.body {
            if let BodyAtom::Pred(a) | BodyAtom::Neg(a) = b {
                if !intensional.contains(&a.pred) {
                    extensional.insert(a.pred.clone());
                }
                dependencies.insert((c.head.pred.clone(), a.pred.clone()));
                if matches!(b, BodyAtom::Neg(_)) && intensional.contains(&a.pred) {
                    neg_dependencies.insert((c.head.pred.clone(), a.pred.clone()));
                }
            }
        }
    }

    // Data safety: head data variables and the data variables of negated
    // atoms must be bound by a positive body atom.
    for c in &p.clauses {
        let mut bound: BTreeSet<&str> = BTreeSet::new();
        for b in &c.body {
            if let BodyAtom::Pred(a) = b {
                for d in &a.data {
                    if let DataTerm::Var(v) = d {
                        bound.insert(v);
                    }
                }
            }
        }
        for d in &c.head.data {
            if let DataTerm::Var(v) = d {
                if !bound.contains(v.as_str()) {
                    return Err(Error::SchemaMismatch(format!(
                        "unsafe clause `{c}`: head data variable {v} is not bound by any body atom"
                    )));
                }
            }
        }
        for b in &c.body {
            if let BodyAtom::Neg(a) = b {
                for d in &a.data {
                    if let DataTerm::Var(v) = d {
                        if !bound.contains(v.as_str()) {
                            return Err(Error::SchemaMismatch(format!(
                                "unsafe clause `{c}`: data variable {v} occurs only under negation"
                            )));
                        }
                    }
                }
            }
        }
    }

    // Recursive predicates: nodes on a cycle of the dependency graph.
    let recursive = find_recursive(&intensional, &dependencies);

    // Strata: SCCs of the dependency graph (restricted to intensional
    // predicates), dependencies first; negation must cross strata.
    let strata = stratify(&intensional, &dependencies, &neg_dependencies)?;

    Ok(ProgramInfo {
        signatures,
        intensional,
        extensional,
        dependencies,
        recursive,
        strata,
    })
}

/// SCC condensation in evaluation order; errors on recursion through
/// negation.
fn stratify(
    nodes: &BTreeSet<String>,
    deps: &BTreeSet<(String, String)>,
    neg: &BTreeSet<(String, String)>,
) -> Result<Vec<BTreeSet<String>>> {
    let reach = |from: &str| -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut frontier = vec![from.to_string()];
        while let Some(n) = frontier.pop() {
            for (a, b) in deps.iter() {
                if a == &n && nodes.contains(b) && seen.insert(b.clone()) {
                    frontier.push(b.clone());
                }
            }
        }
        seen
    };
    let reachability: BTreeMap<&String, BTreeSet<String>> =
        nodes.iter().map(|n| (n, reach(n))).collect();
    let mut assigned: BTreeSet<&String> = BTreeSet::new();
    let mut sccs: Vec<BTreeSet<String>> = Vec::new();
    for n in nodes {
        if assigned.contains(n) {
            continue;
        }
        let mut scc: BTreeSet<String> = [n.clone()].into();
        for m in nodes {
            if m != n && reachability[n].contains(m) && reachability[m].contains(n) {
                scc.insert(m.clone());
            }
        }
        for m in &scc {
            assigned.insert(nodes.get(m).expect("member"));
        }
        sccs.push(scc);
    }
    for (a, b) in neg {
        let sa = sccs.iter().position(|s| s.contains(a));
        let sb = sccs.iter().position(|s| s.contains(b));
        if sa.is_some() && sa == sb {
            return Err(Error::Eval(format!(
                "recursion through negation between {a} and {b}; stratified \
                 negation is required"
            )));
        }
    }
    // Order with dependencies first.
    let mut ordered: Vec<BTreeSet<String>> = Vec::new();
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    while ordered.len() < sccs.len() {
        let mut progressed = false;
        for scc in &sccs {
            if scc.iter().any(|m| emitted.contains(m)) {
                continue;
            }
            let ready = scc.iter().all(|m| {
                deps.iter()
                    .filter(|(a, _)| a == m)
                    .all(|(_, b)| !nodes.contains(b) || scc.contains(b) || emitted.contains(b))
            });
            if ready {
                for m in scc {
                    emitted.insert(m.clone());
                }
                ordered.push(scc.clone());
                progressed = true;
            }
        }
        assert!(progressed, "stratum ordering must make progress");
    }
    Ok(ordered)
}

/// Predicates that can reach themselves through the dependency graph.
fn find_recursive(
    intensional: &BTreeSet<String>,
    deps: &BTreeSet<(String, String)>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for start in intensional {
        // BFS from each intensional predicate; quadratic but programs are
        // small (analysis is not on the evaluation hot path).
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut frontier: Vec<&str> = deps
            .iter()
            .filter(|(p, _)| p == start)
            .map(|(_, q)| q.as_str())
            .collect();
        while let Some(q) = frontier.pop() {
            if q == start {
                out.insert(start.clone());
                break;
            }
            if seen.insert(q) {
                frontier.extend(deps.iter().filter(|(p, _)| p == q).map(|(_, r)| r.as_str()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn example_4_1_analysis() {
        let p = parse_program(
            "problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
             problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        )
        .unwrap();
        let info = analyze(&p).unwrap();
        assert_eq!(info.signatures["problems"], Schema::new(2, 1));
        assert_eq!(info.signatures["course"], Schema::new(2, 1));
        assert!(info.intensional.contains("problems"));
        assert!(info.extensional.contains("course"));
        assert!(info.recursive.contains("problems"));
        assert!(info.has_recursion());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let p = parse_program("p[t] <- q[t]. p[t, s] <- q[t].").unwrap();
        assert!(analyze(&p).is_err());
        let p = parse_program("p[t] <- q[t](a). r[t] <- q[t].").unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn unsafe_head_data_variable_rejected() {
        let p = parse_program("p[t](X) <- q[t].").unwrap();
        let e = analyze(&p).unwrap_err();
        assert!(e.to_string().contains("unsafe"), "{e}");
        // Bound through a body atom: fine.
        let p = parse_program("p[t](X) <- q[t](X).").unwrap();
        assert!(analyze(&p).is_ok());
        // Head data constants are always safe.
        let p = parse_program("p[t](a) <- q[t].").unwrap();
        assert!(analyze(&p).is_ok());
    }

    #[test]
    fn mutual_recursion_detected() {
        let p = parse_program("p[t + 1] <- q[t]. q[t + 1] <- p[t]. r[t] <- p[t].").unwrap();
        let info = analyze(&p).unwrap();
        assert!(info.recursive.contains("p"));
        assert!(info.recursive.contains("q"));
        assert!(!info.recursive.contains("r"));
    }

    #[test]
    fn nonrecursive_program() {
        let p = parse_program("p[t + 1] <- e[t]. r[t] <- p[t].").unwrap();
        let info = analyze(&p).unwrap();
        assert!(!info.has_recursion());
        assert_eq!(info.extensional.len(), 1);
        assert!(info.dependencies.contains(&("r".into(), "p".into())));
    }

    #[test]
    fn temporal_head_variable_unbound_is_allowed() {
        // `always[t].` — extension is all of ℤ; representable as lrp n.
        let p = parse_program("always[t].").unwrap();
        assert!(analyze(&p).is_ok());
    }
}
