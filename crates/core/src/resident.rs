//! Long-lived resident models: evaluate once, then *maintain* under
//! streaming EDB ingestion.
//!
//! A [`ResidentModel`] holds a converged evaluation of a workload and
//! applies batches of new extensional facts **incrementally**: the new
//! EDB tuples seed the semi-naive delta frontier and propagation resumes
//! from the affected strata, instead of re-running the full fixpoint.
//! Reads become closed-form lookups against the maintained relations —
//! microseconds instead of an evaluation.
//!
//! ## Incremental maintenance invariants
//!
//! Let `M` be the converged model and `Δ` a batch of new EDB tuples.
//!
//! 1. **Insert-only is monotone for positive programs.** Every rule
//!    firing of `T_GP(edb ∪ Δ)` either (a) uses no tuple newer than `M`,
//!    and was therefore already fired, or (b) uses at least one new
//!    tuple. [`ResidentModel::apply_batch`] covers (b) exactly: each
//!    clause is fired once per body position holding a changed
//!    predicate, with the frontier relation at that position and the
//!    *updated* full relations elsewhere — the textbook semi-naive
//!    argument, seeded at the EDB instead of at iteration 1.
//! 2. **Strata below the lowest affected predicate are untouched.**
//!    A stratum re-enters its fixpoint only if some clause body mentions
//!    a predicate whose extension changed (transitively).
//! 3. **Negation over a changed predicate falls back.** Inserting EDB
//!    tuples can *shrink* a predicate defined through negation, which
//!    delta insertion cannot express. When any affected clause negates
//!    an affected predicate, the apply degrades to one honest full
//!    re-evaluation (reported via [`ApplyOutcome::full_reeval`]).
//! 4. **Determinism.** Given the same starting state and the same batch
//!    sequence, `apply_batch` produces byte-identical relations — the
//!    property WAL replay and the crash-recovery chaos tests build on.
//! 5. **Divergence stays detected.** The same free-extension-key grace
//!    rule as the engine guards each incremental fixpoint; a batch that
//!    makes the workload diverge is refused rather than looping.
//!
//! The `*_full_reeval` twin ([`ResidentModel::apply_batch_full_reeval`])
//! recomputes the model from scratch; a ×64 proptest pins the
//! equivalence of the two paths on random workloads and batch sequences.

// User-reachable ingestion path: failures must flow through the error
// taxonomy, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::analyze::{analyze, ProgramInfo};
use crate::ast::Program;
use crate::checkpoint::{get_relations, hash_program, put_relations};
use crate::db::Database;
use crate::engine::{eval_clause, evaluate_with, EvalOptions, EvalOutcome, Pending};
use crate::normalize::{normalize_program, NormClause};
use itdb_lrp::{Error, GeneralizedRelation, GeneralizedTuple, Lrp, Result};
use itdb_store::{ByteReader, ByteWriter, Section};
use std::collections::{BTreeMap, BTreeSet};

/// One extensional fact to ingest: a predicate name and a generalized
/// tuple (which may, as everywhere in the paper, denote infinitely many
/// ground facts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Extensional predicate the tuple extends.
    pub pred: String,
    /// The generalized tuple.
    pub tuple: GeneralizedTuple,
}

/// What one [`ResidentModel::apply_batch`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// EDB tuples newly inserted (not subsumed by the existing relation).
    pub applied: u64,
    /// EDB tuples already covered by the relation — idempotent re-sends.
    pub duplicates: u64,
    /// IDB tuples inserted by delta propagation (0 on full re-eval).
    pub derived_inserted: u64,
    /// Strata whose fixpoint was re-entered.
    pub strata_touched: usize,
    /// Semi-naive iterations run across all touched strata.
    pub iterations: u64,
    /// Whether negation over a changed predicate forced a full
    /// re-evaluation instead of delta propagation.
    pub full_reeval: bool,
}

/// Lifetime counters for a resident model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Batches applied.
    pub applies: u64,
    /// Total EDB tuples newly inserted.
    pub facts_applied: u64,
    /// Total EDB tuples subsumed as duplicates.
    pub facts_duplicate: u64,
    /// Total IDB tuples inserted by propagation.
    pub derived_inserted: u64,
    /// Applies that degraded to a full re-evaluation.
    pub full_reevals: u64,
}

/// Section tags for [`ResidentModel::snapshot_sections`].
const SEC_RES_META: u8 = 21;
const SEC_RES_EDB: u8 = 22;
const SEC_RES_IDB: u8 = 23;
const RES_SNAPSHOT_VERSION: u8 = 1;

type FeKey = (Vec<Lrp>, Vec<itdb_lrp::DataValue>);

/// A converged evaluation kept resident and maintained incrementally
/// under fact ingestion. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct ResidentModel {
    program: Program,
    info: ProgramInfo,
    clauses: Vec<NormClause>,
    program_hash: u128,
    edb: Database,
    idb: BTreeMap<String, GeneralizedRelation>,
    empty: BTreeMap<String, GeneralizedRelation>,
    opts: EvalOptions,
    stats: ResidentStats,
    poisoned: bool,
}

impl ResidentModel {
    /// Evaluates the workload once and keeps the converged model
    /// resident. A workload that diverges or trips its governor cannot
    /// be maintained incrementally and is refused.
    pub fn new(program: Program, edb: Database, opts: EvalOptions) -> Result<Self> {
        let eval = evaluate_with(&program, &edb, &opts)?;
        if !matches!(eval.outcome, EvalOutcome::Converged { .. }) {
            return Err(Error::Eval(format!(
                "resident model requires a convergent workload, got: {:?}",
                eval.outcome
            )));
        }
        Self::assemble(program, edb, eval.idb, opts)
    }

    fn assemble(
        program: Program,
        edb: Database,
        idb: BTreeMap<String, GeneralizedRelation>,
        opts: EvalOptions,
    ) -> Result<Self> {
        let info = analyze(&program)?;
        let all_clauses = normalize_program(&program)?;
        let program_hash = hash_program(&all_clauses);
        let clauses: Vec<NormClause> = all_clauses.into_iter().filter(|c| !c.dead).collect();
        let empty: BTreeMap<String, GeneralizedRelation> = info
            .signatures
            .iter()
            .map(|(p, s)| (p.clone(), GeneralizedRelation::empty(*s)))
            .collect();
        Ok(ResidentModel {
            program,
            info,
            clauses,
            program_hash,
            edb,
            idb,
            empty,
            opts,
            stats: ResidentStats::default(),
            poisoned: false,
        })
    }

    /// The workload program this model maintains.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The current extensional database (grown by ingestion).
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// The maintained intensional relations.
    pub fn idb(&self) -> &BTreeMap<String, GeneralizedRelation> {
        &self.idb
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ResidentStats {
        self.stats
    }

    /// True after an apply left the model inconsistent (a recovery
    /// re-evaluation failed to converge). A poisoned model refuses
    /// further applies; callers should rebuild or stop serving writes.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The relation answering queries for `pred`: maintained IDB first,
    /// raw EDB otherwise.
    pub fn relation(&self, pred: &str) -> Option<&GeneralizedRelation> {
        self.idb.get(pred).or_else(|| self.edb.get(pred))
    }

    /// Validates one fact against the program's signatures and the
    /// current EDB. Intensional predicates cannot be ingested.
    fn check_fact(&self, fact: &Fact) -> Result<()> {
        if self.info.intensional.contains(&fact.pred) {
            return Err(Error::Eval(format!(
                "cannot ingest facts for intensional predicate `{}` (derived by rules)",
                fact.pred
            )));
        }
        let schema = itdb_lrp::Schema::new(fact.tuple.temporal_arity(), fact.tuple.data_arity());
        if let Some(expected) = self.info.signatures.get(&fact.pred) {
            if *expected != schema {
                return Err(Error::SchemaMismatch(format!(
                    "fact for `{}` has schema {schema} but the program uses {expected}",
                    fact.pred
                )));
            }
        } else if let Some(rel) = self.edb.get(&fact.pred) {
            if rel.schema() != schema {
                return Err(Error::SchemaMismatch(format!(
                    "fact for `{}` has schema {schema} but the relation holds {}",
                    fact.pred,
                    rel.schema()
                )));
            }
        }
        Ok(())
    }

    /// Inserts the batch into the EDB with subsumption, returning the
    /// per-predicate delta of tuples that were actually new.
    fn ingest_edb(
        &mut self,
        facts: &[Fact],
    ) -> Result<(BTreeMap<String, GeneralizedRelation>, u64, u64)> {
        for f in facts {
            self.check_fact(f)?;
        }
        let mut delta: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
        let (mut applied, mut duplicates) = (0u64, 0u64);
        for f in facts {
            let Some(tuple) = f.tuple.canonical() else {
                // Empty zone: denotes no ground facts at all.
                duplicates += 1;
                continue;
            };
            let schema = itdb_lrp::Schema::new(tuple.temporal_arity(), tuple.data_arity());
            if self.edb.get(&f.pred).is_none() {
                self.edb
                    .insert(f.pred.clone(), GeneralizedRelation::empty(schema));
            }
            let rel = self.edb.get_mut(&f.pred).ok_or_else(|| {
                Error::Eval(format!("internal: EDB relation `{}` vanished", f.pred))
            })?;
            let new = if self.opts.use_index {
                rel.insert_if_new(tuple.clone(), self.opts.residue_budget)?
            } else {
                rel.insert_if_new_naive(tuple.clone(), self.opts.residue_budget)?
            };
            if new {
                applied += 1;
                delta
                    .entry(f.pred.clone())
                    .or_insert_with(|| GeneralizedRelation::empty(schema))
                    .insert(tuple)?;
            } else {
                duplicates += 1;
            }
        }
        Ok((delta, applied, duplicates))
    }

    /// Predicates whose extension may change when `changed` grows:
    /// transitive closure of the dependency graph, upward.
    fn affected_preds(&self, changed: &BTreeSet<String>) -> BTreeSet<String> {
        let mut affected = changed.clone();
        loop {
            let before = affected.len();
            for (head, dep) in &self.info.dependencies {
                if affected.contains(dep) {
                    affected.insert(head.clone());
                }
            }
            if affected.len() == before {
                return affected;
            }
        }
    }

    /// Does any clause with an affected head negate an affected
    /// predicate? If so, delta insertion is unsound (the model may
    /// shrink) and the apply must fall back to full re-evaluation.
    fn negation_over(&self, affected: &BTreeSet<String>) -> bool {
        self.clauses.iter().any(|c| {
            affected.contains(&c.head_pred) && c.neg_body.iter().any(|a| affected.contains(&a.pred))
        })
    }

    /// Applies one batch incrementally. See the module docs for the
    /// soundness argument; [`Self::apply_batch_full_reeval`] is the
    /// oracle twin.
    pub fn apply_batch(&mut self, facts: &[Fact]) -> Result<ApplyOutcome> {
        if self.poisoned {
            return Err(Error::Eval(
                "resident model is poisoned; rebuild before ingesting".to_string(),
            ));
        }
        let (edb_delta, applied, duplicates) = self.ingest_edb(facts)?;
        let mut out = ApplyOutcome {
            applied,
            duplicates,
            ..ApplyOutcome::default()
        };
        if !edb_delta.is_empty() {
            match self.propagate(edb_delta, &mut out) {
                Ok(()) => {}
                Err(e) => {
                    // The EDB inserts stand; restore IDB consistency with
                    // one honest full re-evaluation. Only if *that* fails
                    // is the model genuinely broken.
                    self.recover_full(&mut out).map_err(|e2| {
                        Error::Eval(format!(
                            "incremental apply failed ({e}) and recovery re-evaluation \
                             failed ({e2}); model is poisoned"
                        ))
                    })?;
                }
            }
        }
        self.stats.applies += 1;
        self.stats.facts_applied += out.applied;
        self.stats.facts_duplicate += out.duplicates;
        self.stats.derived_inserted += out.derived_inserted;
        self.stats.full_reevals += u64::from(out.full_reeval);
        Ok(out)
    }

    /// The oracle twin: same EDB insertion and dedup accounting, then a
    /// full re-evaluation replaces the maintained IDB wholesale.
    pub fn apply_batch_full_reeval(&mut self, facts: &[Fact]) -> Result<ApplyOutcome> {
        if self.poisoned {
            return Err(Error::Eval(
                "resident model is poisoned; rebuild before ingesting".to_string(),
            ));
        }
        let (edb_delta, applied, duplicates) = self.ingest_edb(facts)?;
        let mut out = ApplyOutcome {
            applied,
            duplicates,
            full_reeval: true,
            ..ApplyOutcome::default()
        };
        if !edb_delta.is_empty() {
            self.recover_full(&mut out)?;
        }
        self.stats.applies += 1;
        self.stats.facts_applied += out.applied;
        self.stats.facts_duplicate += out.duplicates;
        self.stats.full_reevals += 1;
        Ok(out)
    }

    /// Replaces the IDB with a fresh full evaluation of the (already
    /// updated) EDB. Poisons the model if the evaluation no longer
    /// converges.
    fn recover_full(&mut self, out: &mut ApplyOutcome) -> Result<()> {
        out.full_reeval = true;
        out.derived_inserted = 0;
        let eval = evaluate_with(&self.program, &self.edb, &self.opts)?;
        if !matches!(eval.outcome, EvalOutcome::Converged { .. }) {
            self.poisoned = true;
            return Err(Error::Eval(format!(
                "re-evaluation after ingest did not converge: {:?}",
                eval.outcome
            )));
        }
        self.idb = eval.idb;
        Ok(())
    }

    /// Delta propagation: seed the semi-naive frontier with the new EDB
    /// tuples and resume the fixpoint from the affected strata.
    fn propagate(
        &mut self,
        edb_delta: BTreeMap<String, GeneralizedRelation>,
        out: &mut ApplyOutcome,
    ) -> Result<()> {
        let changed_edb: BTreeSet<String> = edb_delta.keys().cloned().collect();
        let affected = self.affected_preds(&changed_edb);
        if !affected.iter().any(|p| self.info.intensional.contains(p)) {
            return Ok(()); // pure-EDB growth: nothing derives from it
        }
        if self.negation_over(&affected) {
            return self.recover_full(out);
        }

        // Cumulative per-predicate delta across strata: starts as the new
        // EDB tuples, grows with every IDB insert, and is what seeds the
        // frontier of each higher stratum.
        let mut acc_delta = edb_delta;

        for (stratum_idx, stratum) in self.info.strata.iter().enumerate() {
            if !stratum.iter().any(|p| affected.contains(p)) {
                continue; // below the lowest affected stratum, or disjoint
            }
            let stratum_clauses: Vec<&NormClause> = self
                .clauses
                .iter()
                .filter(|c| stratum.contains(&c.head_pred))
                .collect();
            if stratum_clauses.is_empty() {
                continue;
            }
            let _span = itdb_trace::span_with(itdb_trace::SpanKind::Stratum, || {
                format!("maintain stratum {stratum_idx}")
            });
            out.strata_touched += 1;

            // Free-extension guard, seeded from the *current* relations of
            // this stratum's predicates: the same grace rule as the
            // engine, so a batch that makes the workload diverge is
            // detected instead of looping.
            let mut fe_keys: BTreeMap<String, BTreeSet<FeKey>> = BTreeMap::new();
            for pred in stratum.iter() {
                let keys: BTreeSet<FeKey> = self
                    .idb
                    .get(pred)
                    .map(|rel| {
                        rel.tuples()
                            .iter()
                            .map(|t| t.free_extension_key())
                            .collect()
                    })
                    .unwrap_or_default();
                fe_keys.insert(pred.clone(), keys);
            }
            let mut fe_safe_streak = 0usize;

            // Iteration 1 fires from everything changed so far (EDB +
            // lower strata); later iterations from this stratum's newly
            // inserted tuples only — standard semi-naive.
            let mut frontier: BTreeMap<String, GeneralizedRelation> = acc_delta.clone();
            let mut stratum_iters = 0usize;
            loop {
                stratum_iters += 1;
                out.iterations += 1;
                if stratum_iters > self.opts.max_iterations {
                    return Err(Error::Eval(format!(
                        "incremental maintenance exceeded {} iterations in stratum {stratum_idx}",
                        self.opts.max_iterations
                    )));
                }
                let changed: Vec<&str> = frontier
                    .iter()
                    .filter(|(_, rel)| !rel.is_empty())
                    .map(|(p, _)| p.as_str())
                    .collect();
                if changed.is_empty() {
                    break;
                }
                let mut derived: Vec<Pending> = Vec::new();
                for clause in &stratum_clauses {
                    let dposes = clause.body_positions_of(&changed);
                    if dposes.is_empty() {
                        continue;
                    }
                    let neg_rels: Vec<&GeneralizedRelation> = clause
                        .neg_body
                        .iter()
                        .map(|a| self.stable_rel(&a.pred))
                        .collect();
                    for dpos in dposes {
                        let rel_for = |i: usize| -> &GeneralizedRelation {
                            let pred = clause.body[i].pred.as_str();
                            if i == dpos {
                                frontier.get(pred).unwrap_or_else(|| self.empty_rel(pred))
                            } else {
                                self.stable_rel(pred)
                            }
                        };
                        eval_clause(
                            clause,
                            &rel_for,
                            &neg_rels,
                            self.opts.residue_budget,
                            self.opts.use_index,
                            false,
                            None,
                            &mut |t, _| {
                                derived.push(Pending {
                                    pred: clause.head_pred.clone(),
                                    rule: clause.idx,
                                    tuple: t,
                                    sources: Vec::new(),
                                })
                            },
                        )?;
                    }
                }

                let mut next: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
                let mut new_fe_key = false;
                for Pending { pred, tuple, .. } in derived {
                    let Some(tuple) = tuple.canonical() else {
                        continue;
                    };
                    let rel = self.idb.get_mut(&pred).ok_or_else(|| {
                        Error::Eval(format!(
                            "internal: derived tuple for non-intensional predicate {pred}"
                        ))
                    })?;
                    let ins = if self.opts.use_index {
                        rel.insert_if_new(tuple.clone(), self.opts.residue_budget)?
                    } else {
                        rel.insert_if_new_naive(tuple.clone(), self.opts.residue_budget)?
                    };
                    if ins {
                        out.derived_inserted += 1;
                        if let Some(keys) = fe_keys.get_mut(&pred) {
                            if keys.insert(tuple.free_extension_key()) {
                                new_fe_key = true;
                            }
                        }
                        let schema =
                            itdb_lrp::Schema::new(tuple.temporal_arity(), tuple.data_arity());
                        next.entry(pred.clone())
                            .or_insert_with(|| GeneralizedRelation::empty(schema))
                            .insert(tuple)?;
                    }
                }
                if next.is_empty() {
                    break;
                }
                if new_fe_key {
                    fe_safe_streak = 0;
                } else {
                    fe_safe_streak += 1;
                    if fe_safe_streak > self.opts.grace_after_fe_safety {
                        return Err(Error::Eval(format!(
                            "incremental maintenance diverged in stratum {stratum_idx} \
                             (no new free-extension key for {fe_safe_streak} iterations)"
                        )));
                    }
                }
                // Fold the stratum's new tuples into the cumulative delta
                // for downstream strata.
                for (pred, rel) in &next {
                    let schema = rel.schema();
                    let acc = acc_delta
                        .entry(pred.clone())
                        .or_insert_with(|| GeneralizedRelation::empty(schema));
                    for t in rel.tuples() {
                        acc.insert(t.clone())?;
                    }
                }
                frontier = next;
            }
        }
        Ok(())
    }

    /// The current full relation for `pred`: maintained IDB for
    /// intensional predicates, (updated) EDB otherwise.
    fn stable_rel(&self, pred: &str) -> &GeneralizedRelation {
        if self.info.intensional.contains(pred) {
            self.idb.get(pred).unwrap_or_else(|| self.empty_rel(pred))
        } else {
            self.edb.get(pred).unwrap_or_else(|| self.empty_rel(pred))
        }
    }

    /// An empty relation of `pred`'s schema (interned; falls back to a
    /// shared 0/0 schema only for predicates the program never mentions).
    fn empty_rel(&self, pred: &str) -> &GeneralizedRelation {
        static FALLBACK: std::sync::OnceLock<GeneralizedRelation> = std::sync::OnceLock::new();
        self.empty.get(pred).unwrap_or_else(|| {
            FALLBACK.get_or_init(|| GeneralizedRelation::empty(itdb_lrp::Schema::new(0, 0)))
        })
    }

    /// Encodes the full resident state (EDB + IDB + applied-through WAL
    /// sequence) as store sections — the checkpoint half of the
    /// checkpoint+WAL pairing. Tuple order is preserved exactly, so a
    /// restore followed by replay is byte-identical to the uninterrupted
    /// run.
    pub fn snapshot_sections(&self, applied_seq: u64) -> Vec<Section> {
        let mut meta = ByteWriter::new();
        meta.put_u8(RES_SNAPSHOT_VERSION);
        meta.put_u64((self.program_hash >> 64) as u64);
        meta.put_u64(self.program_hash as u64);
        meta.put_u64(applied_seq);
        let mut edb = ByteWriter::new();
        put_relations(&mut edb, self.edb.relations());
        let mut idb = ByteWriter::new();
        put_relations(&mut idb, &self.idb);
        vec![
            Section::new(SEC_RES_META, meta.into_bytes()),
            Section::new(SEC_RES_EDB, edb.into_bytes()),
            Section::new(SEC_RES_IDB, idb.into_bytes()),
        ]
    }

    /// Restores a resident model from [`Self::snapshot_sections`] output.
    /// The program must hash-match the snapshot (a snapshot is only valid
    /// for the workload that wrote it). Returns the model and the WAL
    /// sequence it is current through — replay starts after it.
    pub fn restore_from_sections(
        program: Program,
        opts: EvalOptions,
        sections: &[Section],
    ) -> Result<(Self, u64)> {
        let find = |tag: u8| -> Result<&[u8]> {
            sections
                .iter()
                .find(|s| s.tag == tag)
                .map(|s| s.payload.as_slice())
                .ok_or_else(|| Error::Eval(format!("resident snapshot: missing section {tag}")))
        };
        let bad = |what: &str| Error::Eval(format!("resident snapshot: truncated {what}"));
        let mut meta = ByteReader::new(find(SEC_RES_META)?);
        let version = meta.get_u8().map_err(|_| bad("meta"))?;
        if version != RES_SNAPSHOT_VERSION {
            return Err(Error::Eval(format!(
                "resident snapshot: unsupported version {version}"
            )));
        }
        let hi = meta.get_u64().map_err(|_| bad("meta"))?;
        let lo = meta.get_u64().map_err(|_| bad("meta"))?;
        let snapshot_hash = (u128::from(hi) << 64) | u128::from(lo);
        let applied_seq = meta.get_u64().map_err(|_| bad("meta"))?;

        let expected = hash_program(&normalize_program(&program)?);
        if snapshot_hash != expected {
            return Err(Error::Eval(
                "resident snapshot was written by a different workload program".to_string(),
            ));
        }
        let mut edb_r = ByteReader::new(find(SEC_RES_EDB)?);
        let edb = Database::from_relations(
            get_relations(&mut edb_r)
                .map_err(|e| Error::Eval(format!("resident snapshot: {e}")))?,
        );
        let mut idb_r = ByteReader::new(find(SEC_RES_IDB)?);
        let idb = get_relations(&mut idb_r)
            .map_err(|e| Error::Eval(format!("resident snapshot: {e}")))?;
        let model = Self::assemble(program, edb, idb, opts)?;
        Ok((model, applied_seq))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use itdb_lrp::parser::parse_tuple;

    const PROGRAM: &str = "\
        problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
        problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).";

    fn model() -> ResidentModel {
        let program = parse_program(PROGRAM).unwrap();
        let mut edb = Database::new();
        edb.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();
        ResidentModel::new(program, edb, EvalOptions::default()).unwrap()
    }

    fn fact(pred: &str, text: &str) -> Fact {
        Fact {
            pred: pred.to_string(),
            tuple: parse_tuple(text).unwrap(),
        }
    }

    #[test]
    fn incremental_apply_matches_full_reeval() {
        let mut inc = model();
        let mut full = model();
        let batch = vec![fact(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let a = inc.apply_batch(&batch).unwrap();
        let b = full.apply_batch_full_reeval(&batch).unwrap();
        assert_eq!(a.applied, 1);
        assert_eq!(b.applied, 1);
        assert!(!a.full_reeval, "positive program propagates incrementally");
        for (pred, rel) in inc.idb() {
            let other = &full.idb()[pred];
            assert!(
                rel.equivalent(other, 100_000).unwrap(),
                "{pred} differs between incremental and full re-eval"
            );
        }
    }

    #[test]
    fn duplicate_batch_is_idempotent() {
        let mut m = model();
        let batch = vec![fact(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let first = m.apply_batch(&batch).unwrap();
        assert_eq!((first.applied, first.duplicates), (1, 0));
        let before = m.idb().clone();
        let second = m.apply_batch(&batch).unwrap();
        assert_eq!((second.applied, second.duplicates), (0, 1));
        assert_eq!(second.derived_inserted, 0, "no re-derivation");
        for (pred, rel) in m.idb() {
            assert_eq!(
                rel.tuples(),
                before[pred].tuples(),
                "idempotent replay is byte-identical"
            );
        }
    }

    #[test]
    fn intensional_facts_are_rejected() {
        let mut m = model();
        let err = m
            .apply_batch(&[fact(
                "problems",
                "(168n+10, 168n+12; database) : T2 = T1 + 2",
            )])
            .unwrap_err();
        assert!(err.to_string().contains("intensional"), "{err}");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut m = model();
        let err = m.apply_batch(&[fact("course", "(5n+1)")]).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn negation_over_changed_pred_falls_back_to_full_reeval() {
        let program = parse_program(
            "lit[t](C) <- candidate[t](C), !blocked[t](C).
             blocked[t](C) <- veto[t](C).",
        )
        .unwrap();
        let mut edb = Database::new();
        edb.insert_parsed("candidate", "(7n+1; a)").unwrap();
        edb.insert_parsed("veto", "(14n+1; a)").unwrap();
        let mut m =
            ResidentModel::new(program.clone(), edb.clone(), EvalOptions::default()).unwrap();
        let out = m.apply_batch(&[fact("veto", "(14n+8; a)")]).unwrap();
        assert!(out.full_reeval, "negation over changed pred must fall back");
        // Oracle: full evaluation over the updated EDB.
        let mut edb2 = edb;
        let mut veto = edb2.get("veto").unwrap().clone();
        veto.insert(parse_tuple("(14n+8; a)").unwrap()).unwrap();
        edb2.insert("veto", veto);
        let oracle = evaluate_with(&program, &edb2, &EvalOptions::default()).unwrap();
        for (pred, rel) in m.idb() {
            assert!(
                rel.equivalent(&oracle.idb[pred], 100_000).unwrap(),
                "{pred} differs from oracle after fallback"
            );
        }
    }

    #[test]
    fn new_pure_edb_predicate_is_queryable() {
        let mut m = model();
        let out = m.apply_batch(&[fact("audit", "(24n+3; ops)")]).unwrap();
        assert_eq!(out.applied, 1);
        assert_eq!(out.strata_touched, 0, "no rules reference audit");
        assert!(m.relation("audit").is_some());
    }

    #[test]
    fn snapshot_round_trips_and_replay_is_byte_identical() {
        let mut uninterrupted = model();
        let b1 = vec![fact(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let b2 = vec![fact("course", "(168n+50, 168n+52; logic) : T2 = T1 + 2")];
        uninterrupted.apply_batch(&b1).unwrap();
        // Snapshot mid-stream (as if compaction ran here at WAL seq 1).
        let sections = uninterrupted.snapshot_sections(1);
        uninterrupted.apply_batch(&b2).unwrap();

        let program = parse_program(PROGRAM).unwrap();
        let (mut restored, seq) =
            ResidentModel::restore_from_sections(program, EvalOptions::default(), &sections)
                .unwrap();
        assert_eq!(seq, 1);
        restored.apply_batch(&b2).unwrap(); // replay everything after seq 1
        for (pred, rel) in uninterrupted.idb() {
            assert_eq!(
                rel.tuples(),
                restored.idb()[pred].tuples(),
                "{pred}: restore+replay must be byte-identical to uninterrupted"
            );
        }
        for (pred, rel) in uninterrupted.edb().iter() {
            assert_eq!(rel.tuples(), restored.edb().get(pred).unwrap().tuples());
        }
    }

    #[test]
    fn snapshot_refuses_other_program() {
        let m = model();
        let sections = m.snapshot_sections(0);
        let other = parse_program("p[t] <- q[t].").unwrap();
        let err = ResidentModel::restore_from_sections(other, EvalOptions::default(), &sections)
            .unwrap_err();
        assert!(err.to_string().contains("different workload"), "{err}");
    }
}
