//! Long-lived resident models: evaluate once, then *maintain* under
//! streaming EDB ingestion — inserts **and retractions**.
//!
//! A [`ResidentModel`] holds a converged evaluation of a workload and
//! applies batches of extensional operations **incrementally**: newly
//! asserted EDB tuples seed the semi-naive delta frontier and propagation
//! resumes from the affected strata; retracted EDB tuples trigger a
//! DRed-style delete/re-derive pass. Reads stay closed-form lookups
//! against the maintained relations.
//!
//! ## Incremental maintenance invariants
//!
//! Let `M` be the converged model and `Δ` a batch of operations.
//!
//! 1. **Insert-only is monotone for positive programs.** Every rule
//!    firing of `T_GP(edb ∪ Δ)` either (a) uses no tuple newer than `M`,
//!    and was therefore already fired, or (b) uses at least one new
//!    tuple. The insert path of [`ResidentModel::apply_ops`] covers (b)
//!    exactly: each clause is fired once per body position holding a
//!    changed predicate, with the frontier relation at that position and
//!    the *updated* full relations elsewhere — the textbook semi-naive
//!    argument, seeded at the EDB instead of at iteration 1.
//! 2. **Retraction is delete/re-derive (DRed).** A retraction removes
//!    the stored EDB tuples semantically contained in the retracted
//!    tuple, then *over-deletes* the IDB: every tuple whose recorded
//!    derivation transitively touches a removed tuple is deleted (the
//!    provenance cone, when complete provenance is available), or every
//!    tuple of every affected intensional predicate (the per-stratum
//!    wipe fallback). The standard fixpoint then re-derives, per
//!    affected stratum bottom-up, everything with a surviving
//!    alternative derivation. Both modes start the re-derive from a
//!    *subset* of the true fixpoint, so convergence lands exactly on it.
//! 3. **Negation constrains the over-delete mode.** Retraction can
//!    *grow* a predicate defined through negation, and recorded positive
//!    sources cannot witness negation-dependent invalidation — so the
//!    provenance cone is only used when no affected clause negates an
//!    affected predicate. The wipe fallback is sound even then:
//!    stratification puts every negated predicate in a strictly lower
//!    stratum, which is rebuilt to its final value first.
//! 4. **Representation-level retraction semantics.** Retracting `t`
//!    removes stored tuples *subsumed by* `t`. Content of `t` that was
//!    folded into a strictly broader stored tuple is **not** carved
//!    out — the generalized relation is the unit of storage, exactly as
//!    in the paper's closed representation. Callers that need carve-out
//!    must ingest at the granularity they intend to retract.
//! 5. **Failed batches roll back; the model never wedges.** Every apply
//!    is transactional: a governor trip or divergence mid-batch restores
//!    the exact pre-batch EDB, IDB, and provenance state and surfaces
//!    [`ApplyError::RolledBack`]. The model stays healthy and continues
//!    to serve reads and later batches — there is no poisoned state.
//! 6. **Determinism.** Given the same starting state and the same
//!    operation sequence, `apply_ops` produces byte-identical relations
//!    (and byte-identical rollback decisions, for deterministic
//!    governors) — the property WAL replay and the crash-recovery chaos
//!    tests build on. The over-delete mode is itself deterministic from
//!    persisted state: snapshots carry the derivation log, so a restore
//!    replays retractions in the same mode as the uninterrupted run.
//! 7. **Divergence stays detected.** The same free-extension-key grace
//!    rule as the engine guards each incremental fixpoint; a batch that
//!    makes the workload diverge is rolled back rather than looping.
//!
//! The `*_full_reeval` twins recompute the model from scratch; ×64
//! proptests pin the equivalence of the incremental and oracle paths on
//! random workloads and interleaved insert/retract sequences.

// User-reachable ingestion path: failures must flow through the error
// taxonomy, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::analyze::{analyze, ProgramInfo};
use crate::ast::Program;
use crate::checkpoint::{get_relations, get_tuple, hash_program, put_relations, put_tuple};
use crate::db::Database;
use crate::engine::{eval_clause, evaluate_with, Derivation, EvalOptions, EvalOutcome, Pending};
use crate::normalize::{normalize_program, NormClause};
use itdb_lrp::{Error, GeneralizedRelation, GeneralizedTuple, Lrp, Result, Schema};
use itdb_store::{ByteReader, ByteWriter, Section};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// One extensional fact: a predicate name and a generalized tuple (which
/// may, as everywhere in the paper, denote infinitely many ground facts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Extensional predicate the tuple extends.
    pub pred: String,
    /// The generalized tuple.
    pub tuple: GeneralizedTuple,
}

/// One ingest operation: assert a fact into the EDB, or retract every
/// stored tuple semantically contained in the fact's tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert the fact (subsumption-deduplicated, idempotent).
    Assert(Fact),
    /// Remove stored tuples subsumed by the fact's tuple, then DRed-
    /// maintain the IDB. See module invariant 4 for the exact semantics.
    Retract(Fact),
}

impl Op {
    /// The fact this operation carries.
    pub fn fact(&self) -> &Fact {
        match self {
            Op::Assert(f) | Op::Retract(f) => f,
        }
    }

    /// Is this a retraction?
    pub fn is_retract(&self) -> bool {
        matches!(self, Op::Retract(_))
    }
}

/// Why an [`ResidentModel::apply_ops`] call did not apply.
#[derive(Debug)]
pub enum ApplyError {
    /// The batch was rejected by up-front validation (unknown/intensional
    /// predicate, schema mismatch). The model was not touched at all.
    Invalid(Error),
    /// The batch failed mid-flight (governor trip, divergence, budget
    /// exhaustion) and every mutation was rolled back: the model is the
    /// exact pre-batch state and stays fully serviceable. Retrying the
    /// identical batch under the same limits will fail identically.
    RolledBack(Error),
}

impl ApplyError {
    /// Unwraps the underlying evaluation error.
    pub fn into_error(self) -> Error {
        match self {
            ApplyError::Invalid(e) | ApplyError::RolledBack(e) => e,
        }
    }

    /// Was the model mutated and restored (as opposed to never touched)?
    pub fn rolled_back(&self) -> bool {
        matches!(self, ApplyError::RolledBack(_))
    }
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Invalid(e) => write!(f, "invalid batch: {e}"),
            ApplyError::RolledBack(e) => write!(f, "batch rolled back: {e}"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// What one [`ResidentModel::apply_ops`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// EDB tuples newly inserted (not subsumed by the existing relation).
    pub applied: u64,
    /// EDB tuples already covered by the relation — idempotent re-sends.
    pub duplicates: u64,
    /// Stored EDB tuples removed by retract operations.
    pub retracted: u64,
    /// Retract operations that matched no stored tuple (no-ops).
    pub retract_noops: u64,
    /// IDB tuples inserted by insert-only delta propagation.
    pub derived_inserted: u64,
    /// IDB tuples removed by the DRed over-delete phase.
    pub overdeleted: u64,
    /// IDB tuples re-inserted by the DRed re-derive phase.
    pub rederived: u64,
    /// Whether the over-delete used the provenance cone (`true`) or the
    /// per-stratum wipe fallback (`false`; also `false` when no
    /// retraction reached the IDB).
    pub dred_cone: bool,
    /// Strata whose fixpoint was re-entered.
    pub strata_touched: usize,
    /// Semi-naive iterations run across all touched strata.
    pub iterations: u64,
    /// Whether the batch degraded to one full re-evaluation (insert-path
    /// negation fallback, or the `*_full_reeval` oracle twins).
    pub full_reeval: bool,
}

/// Lifetime counters for a resident model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Batches applied successfully.
    pub applies: u64,
    /// Total EDB tuples newly inserted.
    pub facts_applied: u64,
    /// Total EDB tuples subsumed as duplicates.
    pub facts_duplicate: u64,
    /// Total stored EDB tuples removed by retractions.
    pub facts_retracted: u64,
    /// Total IDB tuples inserted by insert-path propagation.
    pub derived_inserted: u64,
    /// Total IDB tuples removed by DRed over-deletes.
    pub retraction_overdeleted: u64,
    /// Total IDB tuples re-inserted by DRed re-derives.
    pub retraction_rederived: u64,
    /// Applies that degraded to a full re-evaluation.
    pub full_reevals: u64,
    /// Batches that failed mid-flight and were rolled back.
    pub rollbacks: u64,
}

/// Section tags for [`ResidentModel::snapshot_sections`].
const SEC_RES_META: u8 = 21;
const SEC_RES_EDB: u8 = 22;
const SEC_RES_IDB: u8 = 23;
const SEC_RES_PROV: u8 = 24;
const RES_SNAPSHOT_VERSION: u8 = 1;

type FeKey = (Vec<Lrp>, Vec<itdb_lrp::DataValue>);

/// How to restore one EDB relation if the batch rolls back.
enum Undo {
    /// The batch created the relation: remove it entirely.
    Created,
    /// Only asserts touched it (append-only): truncate to the old length.
    Truncate(usize),
    /// A retract touched it: restore the full pre-batch clone.
    Restore(GeneralizedRelation),
}

/// Records the rollback action for `pred` before its first mutation.
fn record_undo(
    edb: &Database,
    undos: &mut BTreeMap<String, Undo>,
    pred: &str,
    retract_preds: &BTreeSet<String>,
) {
    if undos.contains_key(pred) {
        return;
    }
    let undo = match edb.get(pred) {
        None => Undo::Created,
        Some(rel) if retract_preds.contains(pred) => Undo::Restore(rel.clone()),
        Some(rel) => Undo::Truncate(rel.tuples().len()),
    };
    undos.insert(pred.to_string(), undo);
}

/// A converged evaluation kept resident and maintained incrementally
/// under fact ingestion and retraction. See the module docs for the
/// invariants.
#[derive(Debug, Clone)]
pub struct ResidentModel {
    program: Program,
    info: ProgramInfo,
    clauses: Vec<NormClause>,
    program_hash: u128,
    edb: Database,
    idb: BTreeMap<String, GeneralizedRelation>,
    empty: BTreeMap<String, GeneralizedRelation>,
    opts: EvalOptions,
    stats: ResidentStats,
    /// Insertion-ordered derivation log (every source of a derivation
    /// precedes it): the provenance cone DRed consults. Complete only
    /// while [`Self::provenance_complete`] holds.
    derivations: Vec<Derivation>,
    /// True when `derivations` records every IDB insertion since the
    /// model's birth (provenance on, coalesce off, and no restore from a
    /// provenance-free snapshot) — the precondition for cone-mode DRed.
    provenance_complete: bool,
}

impl ResidentModel {
    /// Evaluates the workload once and keeps the converged model
    /// resident. A workload that diverges or trips its governor cannot
    /// be maintained incrementally and is refused.
    pub fn new(program: Program, edb: Database, opts: EvalOptions) -> Result<Self> {
        let eval = evaluate_with(&program, &edb, &opts)?;
        if !matches!(eval.outcome, EvalOutcome::Converged { .. }) {
            return Err(Error::Eval(format!(
                "resident model requires a convergent workload, got: {:?}",
                eval.outcome
            )));
        }
        Self::assemble(program, edb, eval.idb, opts, eval.derivations, true)
    }

    fn assemble(
        program: Program,
        edb: Database,
        idb: BTreeMap<String, GeneralizedRelation>,
        opts: EvalOptions,
        derivations: Vec<Derivation>,
        provenance_flag: bool,
    ) -> Result<Self> {
        let info = analyze(&program)?;
        let all_clauses = normalize_program(&program)?;
        let program_hash = hash_program(&all_clauses);
        let clauses: Vec<NormClause> = all_clauses.into_iter().filter(|c| !c.dead).collect();
        let empty: BTreeMap<String, GeneralizedRelation> = info
            .signatures
            .iter()
            .map(|(p, s)| (p.clone(), GeneralizedRelation::empty(*s)))
            .collect();
        let provenance_complete = provenance_flag && opts.provenance && !opts.coalesce;
        Ok(ResidentModel {
            program,
            info,
            clauses,
            program_hash,
            edb,
            idb,
            empty,
            opts,
            stats: ResidentStats::default(),
            derivations,
            provenance_complete,
        })
    }

    /// The workload program this model maintains.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The current extensional database (grown and shrunk by ingestion).
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// The maintained intensional relations.
    pub fn idb(&self) -> &BTreeMap<String, GeneralizedRelation> {
        &self.idb
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ResidentStats {
        self.stats
    }

    /// The insertion-ordered derivation log (empty unless provenance
    /// recording is on).
    pub fn derivations(&self) -> &[Derivation] {
        &self.derivations
    }

    /// True when retractions can use provenance-cone over-deletion (see
    /// the field docs); false means the per-stratum wipe fallback.
    pub fn provenance_complete(&self) -> bool {
        self.provenance_complete
    }

    /// The relation answering queries for `pred`: maintained IDB first,
    /// raw EDB otherwise.
    pub fn relation(&self, pred: &str) -> Option<&GeneralizedRelation> {
        self.idb.get(pred).or_else(|| self.edb.get(pred))
    }

    /// Validates one asserted fact against the program's signatures and
    /// the current EDB. Intensional predicates cannot be ingested.
    fn check_fact(&self, fact: &Fact) -> Result<()> {
        if self.info.intensional.contains(&fact.pred) {
            return Err(Error::Eval(format!(
                "cannot ingest facts for intensional predicate `{}` (derived by rules)",
                fact.pred
            )));
        }
        let schema = Schema::new(fact.tuple.temporal_arity(), fact.tuple.data_arity());
        if let Some(expected) = self.info.signatures.get(&fact.pred) {
            if *expected != schema {
                return Err(Error::SchemaMismatch(format!(
                    "fact for `{}` has schema {schema} but the program uses {expected}",
                    fact.pred
                )));
            }
        } else if let Some(rel) = self.edb.get(&fact.pred) {
            if rel.schema() != schema {
                return Err(Error::SchemaMismatch(format!(
                    "fact for `{}` has schema {schema} but the relation holds {}",
                    fact.pred,
                    rel.schema()
                )));
            }
        }
        Ok(())
    }

    /// Validates one retraction. `batch_created` holds predicates (and
    /// schemas) introduced by earlier asserts of the same batch, so
    /// assert-then-retract of a brand-new predicate is well-formed.
    fn check_retract(&self, fact: &Fact, batch_created: &BTreeMap<String, Schema>) -> Result<()> {
        if self.info.intensional.contains(&fact.pred) {
            return Err(Error::Eval(format!(
                "cannot retract intensional predicate `{}` (derived by rules; \
                 retract its extensional sources instead)",
                fact.pred
            )));
        }
        let schema = Schema::new(fact.tuple.temporal_arity(), fact.tuple.data_arity());
        let known = self
            .info
            .signatures
            .get(&fact.pred)
            .copied()
            .or_else(|| self.edb.get(&fact.pred).map(|r| r.schema()))
            .or_else(|| batch_created.get(&fact.pred).copied());
        match known {
            None => Err(Error::Eval(format!(
                "cannot retract from unknown predicate `{}`",
                fact.pred
            ))),
            Some(expected) if expected != schema => Err(Error::SchemaMismatch(format!(
                "retraction for `{}` has schema {schema} but the relation holds {expected}",
                fact.pred
            ))),
            Some(_) => Ok(()),
        }
    }

    /// Predicates whose extension may change when `changed` changes:
    /// transitive closure of the dependency graph, upward. The analysis
    /// dependency edges include negated body atoms, so the closure is an
    /// over-approximation for retraction too.
    fn affected_preds(&self, changed: &BTreeSet<String>) -> BTreeSet<String> {
        let mut affected = changed.clone();
        loop {
            let before = affected.len();
            for (head, dep) in &self.info.dependencies {
                if affected.contains(dep) {
                    affected.insert(head.clone());
                }
            }
            if affected.len() == before {
                return affected;
            }
        }
    }

    /// Does any clause with an affected head negate an affected
    /// predicate? If so, delta insertion (and provenance-cone deletion)
    /// is unsound inside the affected region.
    fn negation_over(&self, affected: &BTreeSet<String>) -> bool {
        self.clauses.iter().any(|c| {
            affected.contains(&c.head_pred) && c.neg_body.iter().any(|a| affected.contains(&a.pred))
        })
    }

    /// Applies one batch of assert/retract operations incrementally.
    /// Transactional: on [`ApplyError::RolledBack`] the model is the
    /// exact pre-batch state. [`Self::apply_ops_full_reeval`] is the
    /// oracle twin.
    pub fn apply_ops(&mut self, ops: &[Op]) -> std::result::Result<ApplyOutcome, ApplyError> {
        self.apply_ops_inner(ops, false)
    }

    /// The oracle twin: same EDB walk and accounting, then a full
    /// re-evaluation replaces the maintained IDB wholesale.
    pub fn apply_ops_full_reeval(
        &mut self,
        ops: &[Op],
    ) -> std::result::Result<ApplyOutcome, ApplyError> {
        self.apply_ops_inner(ops, true)
    }

    /// Insert-only compatibility wrapper over [`Self::apply_ops`].
    pub fn apply_batch(&mut self, facts: &[Fact]) -> Result<ApplyOutcome> {
        let ops: Vec<Op> = facts.iter().cloned().map(Op::Assert).collect();
        self.apply_ops(&ops).map_err(ApplyError::into_error)
    }

    /// Insert-only compatibility wrapper over
    /// [`Self::apply_ops_full_reeval`].
    pub fn apply_batch_full_reeval(&mut self, facts: &[Fact]) -> Result<ApplyOutcome> {
        let ops: Vec<Op> = facts.iter().cloned().map(Op::Assert).collect();
        self.apply_ops_full_reeval(&ops)
            .map_err(ApplyError::into_error)
    }

    fn apply_ops_inner(
        &mut self,
        ops: &[Op],
        force_full: bool,
    ) -> std::result::Result<ApplyOutcome, ApplyError> {
        // Phase 1: validate everything up front — an invalid batch must
        // leave the model untouched.
        let mut batch_created: BTreeMap<String, Schema> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Assert(f) => {
                    self.check_fact(f).map_err(ApplyError::Invalid)?;
                    let schema = Schema::new(f.tuple.temporal_arity(), f.tuple.data_arity());
                    if !self.info.signatures.contains_key(&f.pred)
                        && self.edb.get(&f.pred).is_none()
                    {
                        batch_created.entry(f.pred.clone()).or_insert(schema);
                    }
                }
                Op::Retract(f) => {
                    self.check_retract(f, &batch_created)
                        .map_err(ApplyError::Invalid)?;
                }
            }
        }
        let retract_preds: BTreeSet<String> = ops
            .iter()
            .filter(|o| o.is_retract())
            .map(|o| o.fact().pred.clone())
            .collect();

        // Phase 2: walk the operations over the EDB in order, recording
        // per-relation undo actions before the first mutation.
        let mut out = ApplyOutcome::default();
        let mut undos: BTreeMap<String, Undo> = BTreeMap::new();
        let mut insert_delta: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
        let mut retract_seed: BTreeMap<String, Vec<GeneralizedTuple>> = BTreeMap::new();
        if let Err(e) = self.walk_ops(
            ops,
            &retract_preds,
            &mut undos,
            &mut insert_delta,
            &mut retract_seed,
            &mut out,
        ) {
            self.rollback_edb(undos);
            self.stats.rollbacks += 1;
            return Err(ApplyError::RolledBack(e));
        }

        // Phase 3: derivation maintenance, with IDB + provenance
        // snapshots so a mid-flight failure rolls everything back.
        let changed: BTreeSet<String> = insert_delta
            .keys()
            .chain(retract_seed.keys())
            .cloned()
            .collect();
        let affected = self.affected_preds(&changed);
        let touches_idb = affected.iter().any(|p| self.info.intensional.contains(p));
        if !changed.is_empty() && touches_idb {
            let idb_snapshot: BTreeMap<String, GeneralizedRelation> = affected
                .iter()
                .filter(|p| self.info.intensional.contains(*p))
                .filter_map(|p| self.idb.get(p).map(|r| (p.clone(), r.clone())))
                .collect();
            let deriv_snapshot = self.derivations.clone();
            let result = if force_full {
                self.recover_full(&mut out)
            } else if retract_seed.is_empty() {
                if self.negation_over(&affected) {
                    self.recover_full(&mut out)
                } else {
                    self.propagate(insert_delta, &mut out)
                }
            } else {
                let cone = self.over_delete(&retract_seed, &affected, &mut out);
                out.dred_cone = cone;
                self.rederive(&affected, &mut out)
            };
            if let Err(e) = result {
                for (pred, rel) in idb_snapshot {
                    self.idb.insert(pred, rel);
                }
                self.derivations = deriv_snapshot;
                self.rollback_edb(undos);
                self.stats.rollbacks += 1;
                return Err(ApplyError::RolledBack(e));
            }
        }

        self.stats.applies += 1;
        self.stats.facts_applied += out.applied;
        self.stats.facts_duplicate += out.duplicates;
        self.stats.facts_retracted += out.retracted;
        self.stats.derived_inserted += out.derived_inserted;
        self.stats.retraction_overdeleted += out.overdeleted;
        self.stats.retraction_rederived += out.rederived;
        self.stats.full_reevals += u64::from(out.full_reeval);
        Ok(out)
    }

    /// Applies the operations to the EDB in order: asserts insert with
    /// subsumption; retracts remove stored tuples subsumed by the
    /// retracted tuple. Fills the insert delta (for propagation) and the
    /// retract seed (for DRed).
    fn walk_ops(
        &mut self,
        ops: &[Op],
        retract_preds: &BTreeSet<String>,
        undos: &mut BTreeMap<String, Undo>,
        insert_delta: &mut BTreeMap<String, GeneralizedRelation>,
        retract_seed: &mut BTreeMap<String, Vec<GeneralizedTuple>>,
        out: &mut ApplyOutcome,
    ) -> Result<()> {
        for op in ops {
            match op {
                Op::Assert(f) => {
                    let Some(tuple) = f.tuple.canonical() else {
                        // Empty zone: denotes no ground facts at all.
                        out.duplicates += 1;
                        continue;
                    };
                    let schema = Schema::new(tuple.temporal_arity(), tuple.data_arity());
                    record_undo(&self.edb, undos, &f.pred, retract_preds);
                    if self.edb.get(&f.pred).is_none() {
                        self.edb
                            .insert(f.pred.clone(), GeneralizedRelation::empty(schema));
                    }
                    let rel = self.edb.get_mut(&f.pred).ok_or_else(|| {
                        Error::Eval(format!("internal: EDB relation `{}` vanished", f.pred))
                    })?;
                    let new = if self.opts.use_index {
                        rel.insert_if_new(tuple.clone(), self.opts.residue_budget)?
                    } else {
                        rel.insert_if_new_naive(tuple.clone(), self.opts.residue_budget)?
                    };
                    if new {
                        out.applied += 1;
                        insert_delta
                            .entry(f.pred.clone())
                            .or_insert_with(|| GeneralizedRelation::empty(schema))
                            .insert(tuple)?;
                    } else {
                        out.duplicates += 1;
                    }
                }
                Op::Retract(f) => {
                    let Some(tuple) = f.tuple.canonical() else {
                        out.retract_noops += 1;
                        continue;
                    };
                    let Some(rel) = self.edb.get(&f.pred) else {
                        out.retract_noops += 1;
                        continue;
                    };
                    if rel.is_empty() {
                        out.retract_noops += 1;
                        continue;
                    }
                    record_undo(&self.edb, undos, &f.pred, retract_preds);
                    let rel = self.edb.get_mut(&f.pred).ok_or_else(|| {
                        Error::Eval(format!("internal: EDB relation `{}` vanished", f.pred))
                    })?;
                    let removed = rel.remove_subsumed_by(&tuple, self.opts.residue_budget)?;
                    if removed.is_empty() {
                        out.retract_noops += 1;
                    } else {
                        out.retracted += removed.len() as u64;
                        // Same-batch assert-then-retract: the retracted
                        // tuples must not seed the insert frontier.
                        if let Some(delta) = insert_delta.get_mut(&f.pred) {
                            let _ = delta.remove_subsumed_by(&tuple, self.opts.residue_budget)?;
                            if delta.is_empty() {
                                insert_delta.remove(&f.pred);
                            }
                        }
                        retract_seed
                            .entry(f.pred.clone())
                            .or_default()
                            .extend(removed);
                    }
                }
            }
        }
        Ok(())
    }

    /// Restores every EDB relation the failed batch touched.
    fn rollback_edb(&mut self, undos: BTreeMap<String, Undo>) {
        for (pred, undo) in undos {
            match undo {
                Undo::Created => {
                    self.edb.remove(&pred);
                }
                Undo::Truncate(len) => {
                    if let Some(rel) = self.edb.get_mut(&pred) {
                        rel.truncate(len);
                    }
                }
                Undo::Restore(rel) => {
                    self.edb.insert(pred, rel);
                }
            }
        }
    }

    /// DRed phase 1: over-delete. Returns `true` when the provenance
    /// cone was used, `false` for the per-stratum wipe fallback.
    fn over_delete(
        &mut self,
        retract_seed: &BTreeMap<String, Vec<GeneralizedTuple>>,
        affected: &BTreeSet<String>,
        out: &mut ApplyOutcome,
    ) -> bool {
        let cone = self.provenance_complete && !self.negation_over(affected);
        if cone {
            // Dead-set fixpoint in one forward pass: the derivation log
            // is insertion-ordered (sources precede heads), so a single
            // sweep computes the transitive cone of the retracted EDB
            // tuples.
            let mut dead: BTreeMap<String, HashSet<GeneralizedTuple>> = BTreeMap::new();
            for (pred, tuples) in retract_seed {
                dead.entry(pred.clone())
                    .or_default()
                    .extend(tuples.iter().cloned());
            }
            for d in &self.derivations {
                let head_dead = dead.get(&d.pred).is_some_and(|s| s.contains(&d.tuple));
                let src_dead = d
                    .sources
                    .iter()
                    .any(|(p, t)| dead.get(p).is_some_and(|s| s.contains(t)));
                if !head_dead && src_dead {
                    dead.entry(d.pred.clone())
                        .or_default()
                        .insert(d.tuple.clone());
                }
            }
            for pred in affected {
                if !self.info.intensional.contains(pred) {
                    continue;
                }
                let Some(set) = dead.get(pred) else { continue };
                if set.is_empty() {
                    continue;
                }
                if let Some(rel) = self.idb.get_mut(pred) {
                    let removed = rel.remove_where(|t| !set.contains(t));
                    out.overdeleted += removed.len() as u64;
                }
            }
            // Drop every derivation record killed by the over-delete; the
            // re-derive pass records fresh ones for survivors it re-fires.
            self.derivations.retain(|d| {
                !(dead.get(&d.pred).is_some_and(|s| s.contains(&d.tuple))
                    || d.sources
                        .iter()
                        .any(|(p, t)| dead.get(p).is_some_and(|s| s.contains(t))))
            });
        } else {
            // Wipe fallback: clear every affected intensional relation
            // and its derivation records; sound under stratified negation
            // because re-derivation runs bottom-up per stratum.
            for pred in affected {
                if !self.info.intensional.contains(pred) {
                    continue;
                }
                if let Some(rel) = self.idb.get_mut(pred) {
                    out.overdeleted += rel.tuples().len() as u64;
                    *rel = GeneralizedRelation::empty(rel.schema());
                }
            }
            self.derivations.retain(|d| !affected.contains(&d.pred));
        }
        cone
    }

    /// DRed phase 2: re-derive. Runs the standard fixpoint over every
    /// affected stratum bottom-up: iteration 1 fires each affected
    /// clause fully against the current (post-over-delete) relations,
    /// later iterations are semi-naive from the newly re-inserted
    /// frontier. Starting from a subset of the true fixpoint, this
    /// converges exactly onto it.
    fn rederive(&mut self, affected: &BTreeSet<String>, out: &mut ApplyOutcome) -> Result<()> {
        let collect = self.opts.provenance;
        for (stratum_idx, stratum) in self.info.strata.iter().enumerate() {
            if !stratum.iter().any(|p| affected.contains(p)) {
                continue;
            }
            let stratum_clauses: Vec<&NormClause> = self
                .clauses
                .iter()
                .filter(|c| stratum.contains(&c.head_pred) && affected.contains(&c.head_pred))
                .collect();
            if stratum_clauses.is_empty() {
                continue;
            }
            let _span = itdb_trace::span_with(itdb_trace::SpanKind::Stratum, || {
                format!("rederive stratum {stratum_idx}")
            });
            out.strata_touched += 1;

            let mut fe_keys: BTreeMap<String, BTreeSet<FeKey>> = BTreeMap::new();
            for pred in stratum.iter() {
                let keys: BTreeSet<FeKey> = self
                    .idb
                    .get(pred)
                    .map(|rel| {
                        rel.tuples()
                            .iter()
                            .map(|t| t.free_extension_key())
                            .collect()
                    })
                    .unwrap_or_default();
                fe_keys.insert(pred.clone(), keys);
            }
            let mut fe_safe_streak = 0usize;

            let mut frontier: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
            let mut stratum_iters = 0usize;
            loop {
                stratum_iters += 1;
                out.iterations += 1;
                if stratum_iters > self.opts.max_iterations {
                    return Err(Error::Eval(format!(
                        "retraction re-derivation exceeded {} iterations in stratum {stratum_idx}",
                        self.opts.max_iterations
                    )));
                }
                let mut derived: Vec<Pending> = Vec::new();
                if stratum_iters == 1 {
                    // Full firing against the current relations: covers
                    // bodyless clauses and seeds the frontier, exactly
                    // like the engine's first iteration.
                    for clause in &stratum_clauses {
                        let neg_rels: Vec<&GeneralizedRelation> = clause
                            .neg_body
                            .iter()
                            .map(|a| self.stable_rel(&a.pred))
                            .collect();
                        let rel_for = |i: usize| -> &GeneralizedRelation {
                            self.stable_rel(clause.body[i].pred.as_str())
                        };
                        eval_clause(
                            clause,
                            &rel_for,
                            &neg_rels,
                            self.opts.residue_budget,
                            self.opts.use_index,
                            collect,
                            None,
                            &mut |t, sources| {
                                derived.push(Pending {
                                    pred: clause.head_pred.clone(),
                                    rule: clause.idx,
                                    tuple: t,
                                    sources,
                                })
                            },
                        )?;
                    }
                } else {
                    let changed: Vec<&str> = frontier
                        .iter()
                        .filter(|(_, rel)| !rel.is_empty())
                        .map(|(p, _)| p.as_str())
                        .collect();
                    if changed.is_empty() {
                        break;
                    }
                    for clause in &stratum_clauses {
                        let dposes = clause.body_positions_of(&changed);
                        if dposes.is_empty() {
                            continue;
                        }
                        let neg_rels: Vec<&GeneralizedRelation> = clause
                            .neg_body
                            .iter()
                            .map(|a| self.stable_rel(&a.pred))
                            .collect();
                        for dpos in dposes {
                            let rel_for = |i: usize| -> &GeneralizedRelation {
                                let pred = clause.body[i].pred.as_str();
                                if i == dpos {
                                    frontier.get(pred).unwrap_or_else(|| self.empty_rel(pred))
                                } else {
                                    self.stable_rel(pred)
                                }
                            };
                            eval_clause(
                                clause,
                                &rel_for,
                                &neg_rels,
                                self.opts.residue_budget,
                                self.opts.use_index,
                                collect,
                                None,
                                &mut |t, sources| {
                                    derived.push(Pending {
                                        pred: clause.head_pred.clone(),
                                        rule: clause.idx,
                                        tuple: t,
                                        sources,
                                    })
                                },
                            )?;
                        }
                    }
                }

                let mut next: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
                let mut new_fe_key = false;
                for Pending {
                    pred,
                    rule,
                    tuple,
                    sources,
                } in derived
                {
                    let Some(tuple) = tuple.canonical() else {
                        continue;
                    };
                    let rel = self.idb.get_mut(&pred).ok_or_else(|| {
                        Error::Eval(format!(
                            "internal: derived tuple for non-intensional predicate {pred}"
                        ))
                    })?;
                    let ins = if self.opts.use_index {
                        rel.insert_if_new(tuple.clone(), self.opts.residue_budget)?
                    } else {
                        rel.insert_if_new_naive(tuple.clone(), self.opts.residue_budget)?
                    };
                    if ins {
                        out.rederived += 1;
                        if collect {
                            self.derivations.push(Derivation {
                                pred: pred.clone(),
                                tuple: tuple.clone(),
                                rule,
                                sources,
                            });
                        }
                        if let Some(keys) = fe_keys.get_mut(&pred) {
                            if keys.insert(tuple.free_extension_key()) {
                                new_fe_key = true;
                            }
                        }
                        let schema = Schema::new(tuple.temporal_arity(), tuple.data_arity());
                        next.entry(pred.clone())
                            .or_insert_with(|| GeneralizedRelation::empty(schema))
                            .insert(tuple)?;
                    }
                }
                if next.is_empty() {
                    break;
                }
                if new_fe_key {
                    fe_safe_streak = 0;
                } else {
                    fe_safe_streak += 1;
                    if fe_safe_streak > self.opts.grace_after_fe_safety {
                        return Err(Error::Eval(format!(
                            "retraction re-derivation diverged in stratum {stratum_idx} \
                             (no new free-extension key for {fe_safe_streak} iterations)"
                        )));
                    }
                }
                frontier = next;
            }
        }
        Ok(())
    }

    /// Replaces the IDB (and the derivation log) with a fresh full
    /// evaluation of the already-updated EDB.
    fn recover_full(&mut self, out: &mut ApplyOutcome) -> Result<()> {
        out.full_reeval = true;
        out.derived_inserted = 0;
        let eval = evaluate_with(&self.program, &self.edb, &self.opts)?;
        if !matches!(eval.outcome, EvalOutcome::Converged { .. }) {
            return Err(Error::Eval(format!(
                "re-evaluation after ingest did not converge: {:?}",
                eval.outcome
            )));
        }
        self.idb = eval.idb;
        self.derivations = eval.derivations;
        // A from-scratch evaluation re-establishes complete provenance
        // (when recording is on at all).
        self.provenance_complete = self.opts.provenance && !self.opts.coalesce;
        Ok(())
    }

    /// Delta propagation: seed the semi-naive frontier with the new EDB
    /// tuples and resume the fixpoint from the affected strata.
    fn propagate(
        &mut self,
        edb_delta: BTreeMap<String, GeneralizedRelation>,
        out: &mut ApplyOutcome,
    ) -> Result<()> {
        let collect = self.opts.provenance;
        let changed_edb: BTreeSet<String> = edb_delta.keys().cloned().collect();
        let affected = self.affected_preds(&changed_edb);
        if !affected.iter().any(|p| self.info.intensional.contains(p)) {
            return Ok(()); // pure-EDB growth: nothing derives from it
        }
        if self.negation_over(&affected) {
            return self.recover_full(out);
        }

        // Cumulative per-predicate delta across strata: starts as the new
        // EDB tuples, grows with every IDB insert, and is what seeds the
        // frontier of each higher stratum.
        let mut acc_delta = edb_delta;

        for (stratum_idx, stratum) in self.info.strata.iter().enumerate() {
            if !stratum.iter().any(|p| affected.contains(p)) {
                continue; // below the lowest affected stratum, or disjoint
            }
            let stratum_clauses: Vec<&NormClause> = self
                .clauses
                .iter()
                .filter(|c| stratum.contains(&c.head_pred))
                .collect();
            if stratum_clauses.is_empty() {
                continue;
            }
            let _span = itdb_trace::span_with(itdb_trace::SpanKind::Stratum, || {
                format!("maintain stratum {stratum_idx}")
            });
            out.strata_touched += 1;

            // Free-extension guard, seeded from the *current* relations of
            // this stratum's predicates: the same grace rule as the
            // engine, so a batch that makes the workload diverge is
            // detected instead of looping.
            let mut fe_keys: BTreeMap<String, BTreeSet<FeKey>> = BTreeMap::new();
            for pred in stratum.iter() {
                let keys: BTreeSet<FeKey> = self
                    .idb
                    .get(pred)
                    .map(|rel| {
                        rel.tuples()
                            .iter()
                            .map(|t| t.free_extension_key())
                            .collect()
                    })
                    .unwrap_or_default();
                fe_keys.insert(pred.clone(), keys);
            }
            let mut fe_safe_streak = 0usize;

            // Iteration 1 fires from everything changed so far (EDB +
            // lower strata); later iterations from this stratum's newly
            // inserted tuples only — standard semi-naive.
            let mut frontier: BTreeMap<String, GeneralizedRelation> = acc_delta.clone();
            let mut stratum_iters = 0usize;
            loop {
                stratum_iters += 1;
                out.iterations += 1;
                if stratum_iters > self.opts.max_iterations {
                    return Err(Error::Eval(format!(
                        "incremental maintenance exceeded {} iterations in stratum {stratum_idx}",
                        self.opts.max_iterations
                    )));
                }
                let changed: Vec<&str> = frontier
                    .iter()
                    .filter(|(_, rel)| !rel.is_empty())
                    .map(|(p, _)| p.as_str())
                    .collect();
                if changed.is_empty() {
                    break;
                }
                let mut derived: Vec<Pending> = Vec::new();
                for clause in &stratum_clauses {
                    let dposes = clause.body_positions_of(&changed);
                    if dposes.is_empty() {
                        continue;
                    }
                    let neg_rels: Vec<&GeneralizedRelation> = clause
                        .neg_body
                        .iter()
                        .map(|a| self.stable_rel(&a.pred))
                        .collect();
                    for dpos in dposes {
                        let rel_for = |i: usize| -> &GeneralizedRelation {
                            let pred = clause.body[i].pred.as_str();
                            if i == dpos {
                                frontier.get(pred).unwrap_or_else(|| self.empty_rel(pred))
                            } else {
                                self.stable_rel(pred)
                            }
                        };
                        eval_clause(
                            clause,
                            &rel_for,
                            &neg_rels,
                            self.opts.residue_budget,
                            self.opts.use_index,
                            collect,
                            None,
                            &mut |t, sources| {
                                derived.push(Pending {
                                    pred: clause.head_pred.clone(),
                                    rule: clause.idx,
                                    tuple: t,
                                    sources,
                                })
                            },
                        )?;
                    }
                }

                let mut next: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
                let mut new_fe_key = false;
                for Pending {
                    pred,
                    rule,
                    tuple,
                    sources,
                } in derived
                {
                    let Some(tuple) = tuple.canonical() else {
                        continue;
                    };
                    let rel = self.idb.get_mut(&pred).ok_or_else(|| {
                        Error::Eval(format!(
                            "internal: derived tuple for non-intensional predicate {pred}"
                        ))
                    })?;
                    let ins = if self.opts.use_index {
                        rel.insert_if_new(tuple.clone(), self.opts.residue_budget)?
                    } else {
                        rel.insert_if_new_naive(tuple.clone(), self.opts.residue_budget)?
                    };
                    if ins {
                        out.derived_inserted += 1;
                        if collect {
                            self.derivations.push(Derivation {
                                pred: pred.clone(),
                                tuple: tuple.clone(),
                                rule,
                                sources,
                            });
                        }
                        if let Some(keys) = fe_keys.get_mut(&pred) {
                            if keys.insert(tuple.free_extension_key()) {
                                new_fe_key = true;
                            }
                        }
                        let schema = Schema::new(tuple.temporal_arity(), tuple.data_arity());
                        next.entry(pred.clone())
                            .or_insert_with(|| GeneralizedRelation::empty(schema))
                            .insert(tuple)?;
                    }
                }
                if next.is_empty() {
                    break;
                }
                if new_fe_key {
                    fe_safe_streak = 0;
                } else {
                    fe_safe_streak += 1;
                    if fe_safe_streak > self.opts.grace_after_fe_safety {
                        return Err(Error::Eval(format!(
                            "incremental maintenance diverged in stratum {stratum_idx} \
                             (no new free-extension key for {fe_safe_streak} iterations)"
                        )));
                    }
                }
                // Fold the stratum's new tuples into the cumulative delta
                // for downstream strata.
                for (pred, rel) in &next {
                    let schema = rel.schema();
                    let acc = acc_delta
                        .entry(pred.clone())
                        .or_insert_with(|| GeneralizedRelation::empty(schema));
                    for t in rel.tuples() {
                        acc.insert(t.clone())?;
                    }
                }
                frontier = next;
            }
        }
        Ok(())
    }

    /// The current full relation for `pred`: maintained IDB for
    /// intensional predicates, (updated) EDB otherwise.
    fn stable_rel(&self, pred: &str) -> &GeneralizedRelation {
        if self.info.intensional.contains(pred) {
            self.idb.get(pred).unwrap_or_else(|| self.empty_rel(pred))
        } else {
            self.edb.get(pred).unwrap_or_else(|| self.empty_rel(pred))
        }
    }

    /// An empty relation of `pred`'s schema (interned; falls back to a
    /// shared 0/0 schema only for predicates the program never mentions).
    fn empty_rel(&self, pred: &str) -> &GeneralizedRelation {
        static FALLBACK: std::sync::OnceLock<GeneralizedRelation> = std::sync::OnceLock::new();
        self.empty.get(pred).unwrap_or_else(|| {
            FALLBACK.get_or_init(|| GeneralizedRelation::empty(itdb_lrp::Schema::new(0, 0)))
        })
    }

    /// Encodes the full resident state (EDB + IDB + derivation log +
    /// applied-through WAL sequence) as store sections — the checkpoint
    /// half of the checkpoint+WAL pairing. Tuple and derivation order is
    /// preserved exactly, so a restore followed by replay is
    /// byte-identical to the uninterrupted run — including which
    /// over-delete mode later retractions use.
    pub fn snapshot_sections(&self, applied_seq: u64) -> Vec<Section> {
        let mut meta = ByteWriter::new();
        meta.put_u8(RES_SNAPSHOT_VERSION);
        meta.put_u64((self.program_hash >> 64) as u64);
        meta.put_u64(self.program_hash as u64);
        meta.put_u64(applied_seq);
        let mut edb = ByteWriter::new();
        put_relations(&mut edb, self.edb.relations());
        let mut idb = ByteWriter::new();
        put_relations(&mut idb, &self.idb);
        let mut prov = ByteWriter::new();
        prov.put_bool(self.provenance_complete);
        prov.put_usize(self.derivations.len());
        for d in &self.derivations {
            prov.put_str(&d.pred);
            prov.put_usize(d.rule);
            put_tuple(&mut prov, &d.tuple);
            prov.put_usize(d.sources.len());
            for (p, t) in &d.sources {
                prov.put_str(p);
                put_tuple(&mut prov, t);
            }
        }
        vec![
            Section::new(SEC_RES_META, meta.into_bytes()),
            Section::new(SEC_RES_EDB, edb.into_bytes()),
            Section::new(SEC_RES_IDB, idb.into_bytes()),
            Section::new(SEC_RES_PROV, prov.into_bytes()),
        ]
    }

    /// Restores a resident model from [`Self::snapshot_sections`] output.
    /// The program must hash-match the snapshot (a snapshot is only valid
    /// for the workload that wrote it). Returns the model and the WAL
    /// sequence it is current through — replay starts after it. A
    /// snapshot without a provenance section (written before retraction
    /// support) restores fine; retractions then use the wipe fallback
    /// until a full re-evaluation re-establishes complete provenance.
    pub fn restore_from_sections(
        program: Program,
        opts: EvalOptions,
        sections: &[Section],
    ) -> Result<(Self, u64)> {
        let find = |tag: u8| -> Result<&[u8]> {
            sections
                .iter()
                .find(|s| s.tag == tag)
                .map(|s| s.payload.as_slice())
                .ok_or_else(|| Error::Eval(format!("resident snapshot: missing section {tag}")))
        };
        let bad = |what: &str| Error::Eval(format!("resident snapshot: truncated {what}"));
        let mut meta = ByteReader::new(find(SEC_RES_META)?);
        let version = meta.get_u8().map_err(|_| bad("meta"))?;
        if version != RES_SNAPSHOT_VERSION {
            return Err(Error::Eval(format!(
                "resident snapshot: unsupported version {version}"
            )));
        }
        let hi = meta.get_u64().map_err(|_| bad("meta"))?;
        let lo = meta.get_u64().map_err(|_| bad("meta"))?;
        let snapshot_hash = (u128::from(hi) << 64) | u128::from(lo);
        let applied_seq = meta.get_u64().map_err(|_| bad("meta"))?;

        let expected = hash_program(&normalize_program(&program)?);
        if snapshot_hash != expected {
            return Err(Error::Eval(
                "resident snapshot was written by a different workload program".to_string(),
            ));
        }
        let mut edb_r = ByteReader::new(find(SEC_RES_EDB)?);
        let edb = Database::from_relations(
            get_relations(&mut edb_r)
                .map_err(|e| Error::Eval(format!("resident snapshot: {e}")))?,
        );
        let mut idb_r = ByteReader::new(find(SEC_RES_IDB)?);
        let idb = get_relations(&mut idb_r)
            .map_err(|e| Error::Eval(format!("resident snapshot: {e}")))?;

        let (derivations, prov_flag) = match sections.iter().find(|s| s.tag == SEC_RES_PROV) {
            None => (Vec::new(), false),
            Some(s) => {
                let mut r = ByteReader::new(s.payload.as_slice());
                let flag = r.get_bool().map_err(|_| bad("provenance"))?;
                let n = r.get_usize().map_err(|_| bad("provenance"))?;
                let mut ds = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    let pred = r.get_str().map_err(|_| bad("provenance"))?;
                    let rule = r.get_usize().map_err(|_| bad("provenance"))?;
                    let tuple = get_tuple(&mut r)
                        .map_err(|e| Error::Eval(format!("resident snapshot: {e}")))?;
                    let ns = r.get_usize().map_err(|_| bad("provenance"))?;
                    let mut sources = Vec::with_capacity(ns.min(1024));
                    for _ in 0..ns {
                        let sp = r.get_str().map_err(|_| bad("provenance"))?;
                        let st = get_tuple(&mut r)
                            .map_err(|e| Error::Eval(format!("resident snapshot: {e}")))?;
                        sources.push((sp, st));
                    }
                    ds.push(Derivation {
                        pred,
                        tuple,
                        rule,
                        sources,
                    });
                }
                (ds, flag)
            }
        };
        let model = Self::assemble(program, edb, idb, opts, derivations, prov_flag)?;
        Ok((model, applied_seq))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use itdb_lrp::parser::parse_tuple;

    const PROGRAM: &str = "\
        problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
        problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).";

    fn model() -> ResidentModel {
        model_with(EvalOptions::default())
    }

    fn model_with(opts: EvalOptions) -> ResidentModel {
        let program = parse_program(PROGRAM).unwrap();
        let mut edb = Database::new();
        edb.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();
        ResidentModel::new(program, edb, opts).unwrap()
    }

    fn prov_opts() -> EvalOptions {
        EvalOptions {
            provenance: true,
            ..EvalOptions::default()
        }
    }

    fn fact(pred: &str, text: &str) -> Fact {
        Fact {
            pred: pred.to_string(),
            tuple: parse_tuple(text).unwrap(),
        }
    }

    fn assert_op(pred: &str, text: &str) -> Op {
        Op::Assert(fact(pred, text))
    }

    fn retract_op(pred: &str, text: &str) -> Op {
        Op::Retract(fact(pred, text))
    }

    /// Asserts that every IDB relation of `a` is semantically equivalent
    /// to the corresponding relation of `b`.
    fn assert_equivalent(a: &ResidentModel, b: &ResidentModel, ctx: &str) {
        for (pred, rel) in a.idb() {
            assert!(
                rel.equivalent(&b.idb()[pred], 100_000).unwrap(),
                "{ctx}: {pred} differs"
            );
        }
    }

    #[test]
    fn incremental_apply_matches_full_reeval() {
        let mut inc = model();
        let mut full = model();
        let batch = vec![fact(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let a = inc.apply_batch(&batch).unwrap();
        let b = full.apply_batch_full_reeval(&batch).unwrap();
        assert_eq!(a.applied, 1);
        assert_eq!(b.applied, 1);
        assert!(!a.full_reeval, "positive program propagates incrementally");
        assert_equivalent(&inc, &full, "incremental vs full re-eval");
    }

    #[test]
    fn duplicate_batch_is_idempotent() {
        let mut m = model();
        let batch = vec![fact(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let first = m.apply_batch(&batch).unwrap();
        assert_eq!((first.applied, first.duplicates), (1, 0));
        let before = m.idb().clone();
        let second = m.apply_batch(&batch).unwrap();
        assert_eq!((second.applied, second.duplicates), (0, 1));
        assert_eq!(second.derived_inserted, 0, "no re-derivation");
        for (pred, rel) in m.idb() {
            assert_eq!(
                rel.tuples(),
                before[pred].tuples(),
                "idempotent replay is byte-identical"
            );
        }
    }

    #[test]
    fn intensional_facts_are_rejected() {
        let mut m = model();
        let err = m
            .apply_batch(&[fact(
                "problems",
                "(168n+10, 168n+12; database) : T2 = T1 + 2",
            )])
            .unwrap_err();
        assert!(err.to_string().contains("intensional"), "{err}");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut m = model();
        let err = m.apply_batch(&[fact("course", "(5n+1)")]).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn negation_over_changed_pred_falls_back_to_full_reeval() {
        let program = parse_program(
            "lit[t](C) <- candidate[t](C), !blocked[t](C).
             blocked[t](C) <- veto[t](C).",
        )
        .unwrap();
        let mut edb = Database::new();
        edb.insert_parsed("candidate", "(7n+1; a)").unwrap();
        edb.insert_parsed("veto", "(14n+1; a)").unwrap();
        let mut m =
            ResidentModel::new(program.clone(), edb.clone(), EvalOptions::default()).unwrap();
        let out = m.apply_batch(&[fact("veto", "(14n+8; a)")]).unwrap();
        assert!(out.full_reeval, "negation over changed pred must fall back");
        // Oracle: full evaluation over the updated EDB.
        let mut edb2 = edb;
        let mut veto = edb2.get("veto").unwrap().clone();
        veto.insert(parse_tuple("(14n+8; a)").unwrap()).unwrap();
        edb2.insert("veto", veto);
        let oracle = evaluate_with(&program, &edb2, &EvalOptions::default()).unwrap();
        for (pred, rel) in m.idb() {
            assert!(
                rel.equivalent(&oracle.idb[pred], 100_000).unwrap(),
                "{pred} differs from oracle after fallback"
            );
        }
    }

    #[test]
    fn new_pure_edb_predicate_is_queryable() {
        let mut m = model();
        let out = m.apply_batch(&[fact("audit", "(24n+3; ops)")]).unwrap();
        assert_eq!(out.applied, 1);
        assert_eq!(out.strata_touched, 0, "no rules reference audit");
        assert!(m.relation("audit").is_some());
    }

    #[test]
    fn snapshot_round_trips_and_replay_is_byte_identical() {
        let mut uninterrupted = model();
        let b1 = vec![fact(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let b2 = vec![fact("course", "(168n+50, 168n+52; logic) : T2 = T1 + 2")];
        uninterrupted.apply_batch(&b1).unwrap();
        // Snapshot mid-stream (as if compaction ran here at WAL seq 1).
        let sections = uninterrupted.snapshot_sections(1);
        uninterrupted.apply_batch(&b2).unwrap();

        let program = parse_program(PROGRAM).unwrap();
        let (mut restored, seq) =
            ResidentModel::restore_from_sections(program, EvalOptions::default(), &sections)
                .unwrap();
        assert_eq!(seq, 1);
        restored.apply_batch(&b2).unwrap(); // replay everything after seq 1
        for (pred, rel) in uninterrupted.idb() {
            assert_eq!(
                rel.tuples(),
                restored.idb()[pred].tuples(),
                "{pred}: restore+replay must be byte-identical to uninterrupted"
            );
        }
        for (pred, rel) in uninterrupted.edb().iter() {
            assert_eq!(rel.tuples(), restored.edb().get(pred).unwrap().tuples());
        }
    }

    #[test]
    fn snapshot_refuses_other_program() {
        let m = model();
        let sections = m.snapshot_sections(0);
        let other = parse_program("p[t] <- q[t].").unwrap();
        let err = ResidentModel::restore_from_sections(other, EvalOptions::default(), &sections)
            .unwrap_err();
        assert!(err.to_string().contains("different workload"), "{err}");
    }

    // ---- retraction ----

    /// Cone mode (provenance on): retract matches the full-reeval oracle,
    /// and two incremental twins are byte-identical (determinism).
    #[test]
    fn retract_matches_oracle_cone_mode() {
        let ops1 = vec![assert_op(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let ops2 = vec![retract_op(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let mut inc = model_with(prov_opts());
        let mut twin = model_with(prov_opts());
        let mut oracle = model_with(prov_opts());
        for ops in [&ops1, &ops2] {
            inc.apply_ops(ops).unwrap();
            twin.apply_ops(ops).unwrap();
            oracle.apply_ops_full_reeval(ops).unwrap();
        }
        assert!(inc.provenance_complete(), "provenance stays complete");
        assert_equivalent(&inc, &oracle, "cone retract vs oracle");
        for (pred, rel) in inc.idb() {
            assert_eq!(rel.tuples(), twin.idb()[pred].tuples(), "{pred}: twins");
        }
        let out = {
            let mut m = model_with(prov_opts());
            m.apply_ops(&ops1).unwrap();
            m.apply_ops(&ops2).unwrap()
        };
        assert!(out.dred_cone, "provenance-complete model uses the cone");
        assert!(out.retracted >= 1);
        assert!(out.overdeleted >= 1, "consequences over-deleted");
    }

    /// Wipe mode (provenance off): same semantics through the fallback.
    #[test]
    fn retract_matches_oracle_wipe_mode() {
        let ops1 = vec![assert_op(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let ops2 = vec![retract_op(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let mut inc = model();
        let mut oracle = model();
        let mut cone = model_with(prov_opts());
        inc.apply_ops(&ops1).unwrap();
        oracle.apply_ops_full_reeval(&ops1).unwrap();
        cone.apply_ops(&ops1).unwrap();
        let out = inc.apply_ops(&ops2).unwrap();
        assert!(!out.dred_cone, "no provenance: wipe fallback");
        oracle.apply_ops_full_reeval(&ops2).unwrap();
        cone.apply_ops(&ops2).unwrap();
        assert_equivalent(&inc, &oracle, "wipe retract vs oracle");
        assert_equivalent(&inc, &cone, "wipe vs cone agreement");
    }

    /// Retraction through stratified negation *grows* a predicate; the
    /// wipe fallback rebuilds lower strata first, so the result matches
    /// the oracle without a whole-model full re-evaluation.
    #[test]
    fn retract_through_negation_regrows_correctly() {
        let program = parse_program(
            "lit[t](C) <- candidate[t](C), !blocked[t](C).
             blocked[t](C) <- veto[t](C).",
        )
        .unwrap();
        let mut edb = Database::new();
        edb.insert_parsed("candidate", "(7n+1; a)").unwrap();
        edb.insert_parsed("veto", "(14n+1; a)").unwrap();
        let mut inc = ResidentModel::new(program.clone(), edb.clone(), prov_opts()).unwrap();
        let mut oracle = ResidentModel::new(program, edb, prov_opts()).unwrap();
        let ops = vec![retract_op("veto", "(14n+1; a)")];
        let out = inc.apply_ops(&ops).unwrap();
        assert!(
            !out.dred_cone,
            "negation inside the affected region forbids the cone"
        );
        oracle.apply_ops_full_reeval(&ops).unwrap();
        assert_equivalent(&inc, &oracle, "negation regrow vs oracle");
        // lit must now cover every candidate instant (veto is empty).
        let lit = inc.idb().get("lit").unwrap();
        let cand = inc.edb().get("candidate").unwrap();
        assert!(lit.equivalent(cand, 100_000).unwrap(), "lit == candidate");
    }

    /// Retracting content folded inside a strictly broader stored tuple
    /// is a representation-level no-op (module invariant 4).
    #[test]
    fn retract_of_folded_content_is_noop() {
        let mut m = model_with(prov_opts());
        // (168n+8, 168n+10) is stored as one broad tuple; retracting the
        // strictly narrower every-other-week subset does not carve it out.
        let out = m
            .apply_ops(&[retract_op(
                "course",
                "(336n+8, 336n+10; database) : T2 = T1 + 2",
            )])
            .unwrap();
        assert_eq!(out.retracted, 0);
        assert_eq!(out.retract_noops, 1);
        assert_eq!(out.overdeleted, 0, "no IDB churn on a no-op retract");
    }

    #[test]
    fn retract_unknown_and_intensional_are_invalid() {
        let mut m = model_with(prov_opts());
        let before = m.stats();
        let err = m
            .apply_ops(&[retract_op("nonexistent", "(5n+1; x)")])
            .unwrap_err();
        assert!(matches!(err, ApplyError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("unknown predicate"), "{err}");
        let err = m
            .apply_ops(&[retract_op(
                "problems",
                "(168n+10, 168n+12; database) : T2 = T1 + 2",
            )])
            .unwrap_err();
        assert!(matches!(err, ApplyError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("intensional"), "{err}");
        assert_eq!(
            m.stats(),
            before,
            "invalid batches leave the model untouched"
        );
    }

    /// Assert-then-retract of the same tuple in one batch nets out; the
    /// model ends equivalent to never having seen the tuple.
    #[test]
    fn assert_then_retract_in_one_batch_nets_out() {
        let mut m = model_with(prov_opts());
        let reference = model_with(prov_opts());
        let out = m
            .apply_ops(&[
                assert_op("course", "(168n+30, 168n+32; compilers) : T2 = T1 + 2"),
                retract_op("course", "(168n+30, 168n+32; compilers) : T2 = T1 + 2"),
            ])
            .unwrap();
        assert_eq!(out.applied, 1);
        assert_eq!(out.retracted, 1);
        assert_equivalent(&m, &reference, "net-zero batch");
        // A brand-new predicate asserted and retracted in one batch is
        // also well-formed.
        let out = m
            .apply_ops(&[
                assert_op("audit", "(24n+3; ops)"),
                retract_op("audit", "(24n+3; ops)"),
            ])
            .unwrap();
        assert_eq!((out.applied, out.retracted), (1, 1));
        assert!(m.relation("audit").unwrap().is_empty());
    }

    /// A batch that trips the iteration governor mid-derivation rolls
    /// back to the exact pre-batch state and the model keeps serving —
    /// the wedged-server bugfix.
    #[test]
    fn tripped_batch_rolls_back_and_model_stays_healthy() {
        let program = parse_program(
            "p[t + 2](C) <- e[t](C).
             p[t + 48](C) <- p[t](C).
             q[t](C) <- f[t](C).",
        )
        .unwrap();
        let mut edb = Database::new();
        edb.insert("e", GeneralizedRelation::empty(Schema::new(1, 1)));
        edb.insert("f", GeneralizedRelation::empty(Schema::new(1, 1)));
        let opts = EvalOptions {
            max_iterations: 3,
            ..EvalOptions::default()
        };
        let mut m = ResidentModel::new(program, edb, opts).unwrap();
        let edb_before: Vec<(String, Vec<GeneralizedTuple>)> = m
            .edb()
            .iter()
            .map(|(p, r)| (p.to_string(), r.tuples().to_vec()))
            .collect();
        let idb_before = m.idb().clone();

        // The +48 recursion mod 168 needs ~7 iterations; the cap is 3.
        let err = m.apply_ops(&[assert_op("e", "(168n+1; x)")]).unwrap_err();
        assert!(matches!(err, ApplyError::RolledBack(_)), "{err}");
        assert_eq!(m.stats().rollbacks, 1);
        // Byte-identical rollback.
        let edb_after: Vec<(String, Vec<GeneralizedTuple>)> = m
            .edb()
            .iter()
            .map(|(p, r)| (p.to_string(), r.tuples().to_vec()))
            .collect();
        assert_eq!(edb_before, edb_after, "EDB restored exactly");
        for (pred, rel) in m.idb() {
            assert_eq!(rel.tuples(), idb_before[pred].tuples(), "{pred} restored");
        }
        // The model still applies unrelated batches — no wedge.
        let out = m.apply_ops(&[assert_op("f", "(24n+1; y)")]).unwrap();
        assert_eq!(out.applied, 1);
        assert!(!m.idb()["q"].is_empty(), "q derived after recovery");
    }

    /// Snapshots carry the derivation log, so a restored model keeps
    /// using cone-mode DRed and replay stays byte-identical across
    /// retraction-bearing histories.
    #[test]
    fn snapshot_preserves_provenance_and_retraction_replay() {
        let mut uninterrupted = model_with(prov_opts());
        let b1 = vec![assert_op(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        let b2 = vec![retract_op(
            "course",
            "(168n+30, 168n+32; compilers) : T2 = T1 + 2",
        )];
        uninterrupted.apply_ops(&b1).unwrap();
        let sections = uninterrupted.snapshot_sections(1);
        let out = uninterrupted.apply_ops(&b2).unwrap();
        assert!(out.dred_cone);

        let program = parse_program(PROGRAM).unwrap();
        let (mut restored, seq) =
            ResidentModel::restore_from_sections(program.clone(), prov_opts(), &sections).unwrap();
        assert_eq!(seq, 1);
        assert!(
            restored.provenance_complete(),
            "provenance completeness survives the snapshot"
        );
        let out = restored.apply_ops(&b2).unwrap();
        assert!(out.dred_cone, "restored model replays in the same mode");
        for (pred, rel) in uninterrupted.idb() {
            assert_eq!(
                rel.tuples(),
                restored.idb()[pred].tuples(),
                "{pred}: restore+replay byte-identical across a retraction"
            );
        }
        for (pred, rel) in uninterrupted.edb().iter() {
            assert_eq!(rel.tuples(), restored.edb().get(pred).unwrap().tuples());
        }

        // A pre-retraction snapshot (no provenance section) still
        // restores; retraction then runs in wipe mode.
        let stripped: Vec<Section> = sections
            .iter()
            .filter(|s| s.tag != SEC_RES_PROV)
            .cloned()
            .collect();
        let (mut old, _) =
            ResidentModel::restore_from_sections(program, prov_opts(), &stripped).unwrap();
        assert!(!old.provenance_complete());
        let out = old.apply_ops(&b2).unwrap();
        assert!(!out.dred_cone, "provenance-free restore wipes");
        assert_equivalent(&old, &restored, "wipe after restore vs cone");
    }

    /// Empty-zone retractions and retracts against absent relations are
    /// counted as no-ops, not errors.
    #[test]
    fn retract_noop_accounting() {
        let program = parse_program(PROGRAM).unwrap();
        let mut edb = Database::new();
        edb.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();
        edb.insert("extra", GeneralizedRelation::empty(Schema::new(1, 1)));
        let mut m = ResidentModel::new(program, edb, prov_opts()).unwrap();
        let out = m.apply_ops(&[retract_op("extra", "(5n+1; x)")]).unwrap();
        assert_eq!((out.retracted, out.retract_noops), (0, 1));
    }
}
