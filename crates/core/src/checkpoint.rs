//! Durable checkpoints of partial fixpoints (crash-safe snapshots).
//!
//! A [`Checkpoint`] captures everything the engine needs to re-enter the
//! stratified semi-naive loop exactly where it stopped: the partial IDB,
//! the evaluation cursor (stratum index, iteration counts, free-extension
//! bookkeeping, the semi-naive delta), aggregate statistics, a snapshot of
//! the governor's counters (so operators can size resume budgets), and
//! content hashes of the normalized program and the EDB so a checkpoint
//! written for a different program or database is rejected with a typed
//! error instead of silently resuming into the wrong model.
//!
//! Serialization rides on `itdb-store`'s section-framed container: the
//! checkpoint encodes into tagged sections ([`SEC_META`] … [`SEC_STATS`]),
//! each independently CRC-checked by the store, written atomically as the
//! next snapshot *generation*. Loading walks generations newest-first and
//! falls back past damaged ones ([`load_latest`]), emitting
//! `checkpoint_recovery` trace events for each skipped generation.
//!
//! The cursor uses **redo semantics** for trips that strike mid-iteration:
//! the saved iteration count points at the last *completed* iteration and
//! the saved delta is widened with whatever the interrupted iteration had
//! already inserted, so re-running the iteration re-derives (harmlessly
//! subsumed) tuples and still propagates the consequences of the partial
//! inserts — resume reaches the same model as an uninterrupted run.
//! Aggregate statistics may double-count the one redone iteration; model
//! contents never drift.

use crate::engine::{EvalStats, StratumStats};
use itdb_lrp::{
    Bound, DataValue, Dbm, Error, GeneralizedRelation, GeneralizedTuple, GovernorStats, Lrp,
    Schema, Zone,
};
use itdb_store::{
    BackgroundWriter, ByteReader, ByteWriter, CodecError, Section, SnapshotStore, StoreError,
    Written,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Section tag: hashes, cursor, governor counters.
pub const SEC_META: u8 = 1;
/// Section tag: the partial IDB (all intensional relations).
pub const SEC_IDB: u8 = 2;
/// Section tag: the semi-naive delta of the in-flight stratum.
pub const SEC_DELTA: u8 = 3;
/// Section tag: free-extension keys per predicate.
pub const SEC_FEKEYS: u8 = 4;
/// Section tag: aggregate and per-stratum statistics.
pub const SEC_STATS: u8 = 5;

/// The free-extension key of a generalized tuple: canonical lrp vector
/// plus data vector (Theorem 4.2 bookkeeping).
pub type FeKey = (Vec<Lrp>, Vec<DataValue>);

/// Why a checkpoint could not be saved, loaded, or accepted for resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// The snapshot store failed (I/O, corruption detected by the
    /// container layer).
    Store(StoreError),
    /// The container was intact but a section payload did not decode.
    Decode(String),
    /// The checkpoint was written for a different (normalized) program.
    StaleProgramHash {
        /// Hash of the program being resumed.
        expected: u128,
        /// Hash recorded in the checkpoint.
        found: u128,
    },
    /// The checkpoint was written against a different EDB.
    StaleEdbHash {
        /// Hash of the EDB being resumed.
        expected: u128,
        /// Hash recorded in the checkpoint.
        found: u128,
    },
    /// No generation in the store survived validation.
    NoCheckpoint,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Store(e) => write!(f, "store: {e}"),
            CheckpointError::Decode(msg) => write!(f, "decode: {msg}"),
            CheckpointError::StaleProgramHash { expected, found } => write!(
                f,
                "stale checkpoint: program hash {found:032x} does not match {expected:032x}"
            ),
            CheckpointError::StaleEdbHash { expected, found } => write!(
                f,
                "stale checkpoint: EDB hash {found:032x} does not match {expected:032x}"
            ),
            CheckpointError::NoCheckpoint => write!(f, "no valid checkpoint in the store"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> Self {
        CheckpointError::Store(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Decode(e.0)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        Error::Eval(format!("checkpoint: {e}"))
    }
}

/// When the engine writes checkpoints.
#[derive(Clone)]
pub struct CheckpointPolicy {
    /// Where snapshots go.
    pub store: Arc<SnapshotStore>,
    /// Write a checkpoint every N completed iterations (`None` = only on
    /// trip). N = 0 is treated as `None`.
    pub every_iterations: Option<u64>,
    /// Write a checkpoint when the governor trips, preserving the partial
    /// fixpoint the trip would otherwise strand in memory.
    pub on_trip: bool,
    /// When set, checkpoint images are handed to this background writer
    /// instead of being fsynced on the evaluation thread: the hot path
    /// pays encoding only, and bursts coalesce to the newest snapshot.
    /// The `checkpoint_written` trace event is skipped in this mode (the
    /// durable write happens on the writer thread, which carries no trace
    /// sink); consult [`BackgroundWriter::stats`] instead. Callers that
    /// need the image on disk (graceful shutdown) should flush the writer.
    pub background: Option<Arc<BackgroundWriter>>,
}

impl fmt::Debug for CheckpointPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointPolicy")
            .field("store", &self.store)
            .field("every_iterations", &self.every_iterations)
            .field("on_trip", &self.on_trip)
            .field("background", &self.background.is_some())
            .finish()
    }
}

impl CheckpointPolicy {
    /// Checkpoint only when the governor trips.
    pub fn on_trip(store: Arc<SnapshotStore>) -> Self {
        CheckpointPolicy {
            store,
            every_iterations: None,
            on_trip: true,
            background: None,
        }
    }

    /// Checkpoint every `n` iterations *and* on trip.
    pub fn every(store: Arc<SnapshotStore>, n: u64) -> Self {
        CheckpointPolicy {
            store,
            every_iterations: (n > 0).then_some(n),
            on_trip: true,
            background: None,
        }
    }

    /// Moves this policy's writes onto `writer` (see
    /// [`CheckpointPolicy::background`]).
    pub fn with_background(mut self, writer: Arc<BackgroundWriter>) -> Self {
        self.background = Some(writer);
        self
    }
}

/// What checkpointing did during one evaluation (attached to
/// [`crate::engine::Evaluation`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Checkpoints successfully written.
    pub written: u64,
    /// Checkpoint writes that failed (the evaluation continues; failures
    /// are reported, never fatal).
    pub failed: u64,
    /// Generation of the most recent successful write.
    pub last_generation: Option<u64>,
    /// Image size of the most recent successful write, in bytes.
    pub last_bytes: u64,
    /// Wall clock of the most recent successful write (encode + durable
    /// write), in µs.
    pub last_write_us: u64,
    /// Generation this evaluation resumed from, if it did.
    pub resumed_from: Option<u64>,
}

/// A self-contained, durable snapshot of a partial fixpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Generation this checkpoint was loaded from (`None` for freshly
    /// built, not-yet-persisted checkpoints). Transient — not serialized.
    pub generation: Option<u64>,
    /// Content hash of the normalized program (all clauses, pre
    /// dead-clause filtering).
    pub program_hash: u128,
    /// Content hash of the extensional database.
    pub edb_hash: u128,
    /// Index of the in-flight stratum.
    pub stratum: usize,
    /// Global iterations of `T_GP` *completed* (redo semantics: a trip
    /// mid-iteration records the previous iteration).
    pub iteration: usize,
    /// Iterations completed within the in-flight stratum.
    pub stratum_iter: usize,
    /// Iteration at which free-extension safety was observed, if it was.
    pub fe_safe_at: Option<usize>,
    /// Consecutive iterations without a new free-extension key.
    pub fe_safe_streak: usize,
    /// Predicates still growing in the most recent productive iteration.
    pub last_growing: Vec<String>,
    /// The partial IDB: every intensional relation as derived so far.
    pub idb: BTreeMap<String, GeneralizedRelation>,
    /// The semi-naive frontier of the in-flight stratum.
    pub delta: BTreeMap<String, GeneralizedRelation>,
    /// Free-extension keys observed per intensional predicate.
    pub fe_keys: BTreeMap<String, BTreeSet<FeKey>>,
    /// Governor counters at checkpoint time (fuel used, tuples held,
    /// elapsed ms) — lets operators size the resume budget.
    pub governor: GovernorStats,
    /// Aggregate tuple-flow counters at checkpoint time.
    pub tuples_derived: u64,
    /// See [`EvalStats::tuples_inserted`].
    pub tuples_inserted: u64,
    /// See [`EvalStats::tuples_subsumed`].
    pub tuples_subsumed: u64,
    /// Per-stratum statistics at checkpoint time.
    pub strata: Vec<SavedStratum>,
}

/// Serializable form of [`StratumStats`] (durations as integer µs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedStratum {
    /// Predicates defined in the stratum.
    pub preds: Vec<String>,
    /// Iterations the stratum ran.
    pub iterations: usize,
    /// Tuples the stratum inserted.
    pub inserted: u64,
    /// Wall clock spent, µs.
    pub elapsed_us: u64,
}

impl SavedStratum {
    /// Converts engine statistics into the serializable form.
    pub fn from_stats(s: &StratumStats) -> Self {
        SavedStratum {
            preds: s.preds.clone(),
            iterations: s.iterations,
            inserted: s.inserted,
            elapsed_us: u64::try_from(s.elapsed.as_micros()).unwrap_or(u64::MAX),
        }
    }

    /// Converts back into engine statistics.
    pub fn to_stats(&self) -> StratumStats {
        StratumStats {
            preds: self.preds.clone(),
            iterations: self.iterations,
            inserted: self.inserted,
            elapsed: Duration::from_micros(self.elapsed_us),
        }
    }
}

/// The result of [`load_latest`]: the newest checkpoint that both the
/// store *and* the decoder accepted, plus the generations skipped on the
/// way down.
#[derive(Debug)]
pub struct Recovered {
    /// Generation the checkpoint came from.
    pub generation: u64,
    /// The decoded checkpoint (its `generation` field is set).
    pub checkpoint: Checkpoint,
    /// Damaged generations skipped, newest first, with the rendered error.
    pub skipped: Vec<(u64, String)>,
}

// ---------------------------------------------------------------------------
// Content hashing (FNV-1a, 128-bit)

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

fn fnv1a(hash: &mut u128, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u128::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Content hash of a normalized program. Hashes the `Debug` rendering of
/// every normalized clause (stable: normalized clauses carry no interior
/// mutability), **before** dead-clause filtering, so any source-level edit
/// that survives normalization changes the hash.
pub fn hash_program(clauses: &[crate::normalize::NormClause]) -> u128 {
    let mut h = FNV_OFFSET;
    for c in clauses {
        fnv1a(&mut h, format!("{c:?}").as_bytes());
        fnv1a(&mut h, b"\x00");
    }
    h
}

/// Content hash of an extensional database: relation names, schemas, and
/// each tuple's display rendering (displays are stable; `Debug` is not,
/// because tuples memoize canonical forms in `OnceLock`s).
pub fn hash_database(edb: &crate::db::Database) -> u128 {
    let mut h = FNV_OFFSET;
    for (name, rel) in edb.iter() {
        fnv1a(&mut h, name.as_bytes());
        let schema = rel.schema();
        fnv1a(&mut h, &(schema.temporal as u64).to_le_bytes());
        fnv1a(&mut h, &(schema.data as u64).to_le_bytes());
        for t in rel.tuples() {
            fnv1a(&mut h, t.to_string().as_bytes());
            fnv1a(&mut h, b"\x00");
        }
        fnv1a(&mut h, b"\x01");
    }
    h
}

// ---------------------------------------------------------------------------
// Encoding

fn put_u128(w: &mut ByteWriter, v: u128) {
    w.put_u64((v >> 64) as u64);
    w.put_u64(v as u64);
}

fn get_u128(r: &mut ByteReader<'_>) -> Result<u128, CodecError> {
    let hi = r.get_u64()?;
    let lo = r.get_u64()?;
    Ok((u128::from(hi) << 64) | u128::from(lo))
}

fn put_data_value(w: &mut ByteWriter, v: &DataValue) {
    match v {
        DataValue::Sym(s) => {
            w.put_u8(0);
            w.put_str(s);
        }
        DataValue::Int(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
    }
}

fn get_data_value(r: &mut ByteReader<'_>) -> Result<DataValue, CodecError> {
    match r.get_u8()? {
        0 => Ok(DataValue::sym(r.get_str()?)),
        1 => Ok(DataValue::Int(r.get_i64()?)),
        t => Err(CodecError(format!("bad data-value tag {t}"))),
    }
}

fn put_lrps(w: &mut ByteWriter, lrps: &[Lrp]) {
    w.put_usize(lrps.len());
    for l in lrps {
        w.put_i64(l.period());
        w.put_i64(l.offset());
    }
}

fn get_lrps(r: &mut ByteReader<'_>) -> Result<Vec<Lrp>, CheckpointError> {
    let n = r.get_usize()?;
    let mut lrps = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let period = r.get_i64()?;
        let offset = r.get_i64()?;
        lrps.push(
            Lrp::new(period, offset)
                .map_err(|e| CheckpointError::Decode(format!("bad lrp: {e}")))?,
        );
    }
    Ok(lrps)
}

pub(crate) fn put_tuple(w: &mut ByteWriter, t: &GeneralizedTuple) {
    put_lrps(w, t.zone().lrps());
    let dbm = t.zone().dbm();
    w.put_usize(dbm.dim());
    for i in 0..dbm.dim() {
        for j in 0..dbm.dim() {
            match dbm.get(i, j) {
                Bound::Inf => w.put_u8(0),
                Bound::Finite(c) => {
                    w.put_u8(1);
                    w.put_i64(c);
                }
            }
        }
    }
    w.put_usize(t.data().len());
    for v in t.data() {
        put_data_value(w, v);
    }
}

pub(crate) fn get_tuple(r: &mut ByteReader<'_>) -> Result<GeneralizedTuple, CheckpointError> {
    let lrps = get_lrps(r)?;
    let dim = r.get_usize()?;
    if dim == 0 || dim > 1 + lrps.len() {
        return Err(CheckpointError::Decode(format!(
            "dbm dimension {dim} inconsistent with {} lrps",
            lrps.len()
        )));
    }
    let mut dbm = Dbm::unconstrained(dim - 1);
    for i in 0..dim {
        for j in 0..dim {
            let b = match r.get_u8()? {
                0 => Bound::Inf,
                1 => Bound::Finite(r.get_i64()?),
                t => return Err(CheckpointError::Decode(format!("bad bound tag {t}"))),
            };
            dbm.set(i, j, b);
        }
    }
    let zone = Zone::from_parts(lrps, dbm)
        .map_err(|e| CheckpointError::Decode(format!("bad zone: {e}")))?;
    let n = r.get_usize()?;
    let mut data = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        data.push(get_data_value(r)?);
    }
    Ok(GeneralizedTuple::new(zone, data))
}

pub(crate) fn put_relations(w: &mut ByteWriter, rels: &BTreeMap<String, GeneralizedRelation>) {
    w.put_usize(rels.len());
    for (name, rel) in rels {
        w.put_str(name);
        let schema = rel.schema();
        w.put_usize(schema.temporal);
        w.put_usize(schema.data);
        w.put_usize(rel.len());
        for t in rel.tuples() {
            put_tuple(w, t);
        }
    }
}

pub(crate) fn get_relations(
    r: &mut ByteReader<'_>,
) -> Result<BTreeMap<String, GeneralizedRelation>, CheckpointError> {
    let n = r.get_usize()?;
    let mut rels = BTreeMap::new();
    for _ in 0..n {
        let name = r.get_str()?;
        let temporal = r.get_usize()?;
        let data = r.get_usize()?;
        let count = r.get_usize()?;
        let mut tuples = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            tuples.push(get_tuple(r)?);
        }
        let rel = GeneralizedRelation::from_tuples(Schema::new(temporal, data), tuples)
            .map_err(|e| CheckpointError::Decode(format!("bad relation {name}: {e}")))?;
        rels.insert(name, rel);
    }
    Ok(rels)
}

impl Checkpoint {
    /// Encodes the checkpoint into the store's tagged sections.
    pub fn encode(&self) -> Vec<Section> {
        let mut meta = ByteWriter::new();
        put_u128(&mut meta, self.program_hash);
        put_u128(&mut meta, self.edb_hash);
        meta.put_usize(self.stratum);
        meta.put_usize(self.iteration);
        meta.put_usize(self.stratum_iter);
        meta.put_bool(self.fe_safe_at.is_some());
        meta.put_usize(self.fe_safe_at.unwrap_or(0));
        meta.put_usize(self.fe_safe_streak);
        meta.put_usize(self.last_growing.len());
        for p in &self.last_growing {
            meta.put_str(p);
        }
        meta.put_u64(self.governor.iterations);
        meta.put_u64(self.governor.derived);
        meta.put_u64(self.governor.held);
        meta.put_u64(self.governor.checks);
        meta.put_u64(self.governor.elapsed_ms);

        let mut idb = ByteWriter::new();
        put_relations(&mut idb, &self.idb);
        let mut delta = ByteWriter::new();
        put_relations(&mut delta, &self.delta);

        let mut fe = ByteWriter::new();
        fe.put_usize(self.fe_keys.len());
        for (pred, keys) in &self.fe_keys {
            fe.put_str(pred);
            fe.put_usize(keys.len());
            for (lrps, data) in keys {
                put_lrps(&mut fe, lrps);
                fe.put_usize(data.len());
                for v in data {
                    put_data_value(&mut fe, v);
                }
            }
        }

        let mut stats = ByteWriter::new();
        stats.put_u64(self.tuples_derived);
        stats.put_u64(self.tuples_inserted);
        stats.put_u64(self.tuples_subsumed);
        stats.put_usize(self.strata.len());
        for s in &self.strata {
            stats.put_usize(s.preds.len());
            for p in &s.preds {
                stats.put_str(p);
            }
            stats.put_usize(s.iterations);
            stats.put_u64(s.inserted);
            stats.put_u64(s.elapsed_us);
        }

        vec![
            Section::new(SEC_META, meta.into_bytes()),
            Section::new(SEC_IDB, idb.into_bytes()),
            Section::new(SEC_DELTA, delta.into_bytes()),
            Section::new(SEC_FEKEYS, fe.into_bytes()),
            Section::new(SEC_STATS, stats.into_bytes()),
        ]
    }

    /// Decodes a checkpoint from the store's sections.
    pub fn decode(sections: &[Section]) -> Result<Self, CheckpointError> {
        let find = |tag: u8| -> Result<&Section, CheckpointError> {
            sections
                .iter()
                .find(|s| s.tag == tag)
                .ok_or_else(|| CheckpointError::Decode(format!("missing section {tag}")))
        };

        let mut r = ByteReader::new(&find(SEC_META)?.payload);
        let program_hash = get_u128(&mut r)?;
        let edb_hash = get_u128(&mut r)?;
        let stratum = r.get_usize()?;
        let iteration = r.get_usize()?;
        let stratum_iter = r.get_usize()?;
        let has_fe = r.get_bool()?;
        let fe_at = r.get_usize()?;
        let fe_safe_at = has_fe.then_some(fe_at);
        let fe_safe_streak = r.get_usize()?;
        let n = r.get_usize()?;
        let mut last_growing = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            last_growing.push(r.get_str()?);
        }
        let governor = GovernorStats {
            iterations: r.get_u64()?,
            derived: r.get_u64()?,
            held: r.get_u64()?,
            checks: r.get_u64()?,
            elapsed_ms: r.get_u64()?,
        };

        let mut r = ByteReader::new(&find(SEC_IDB)?.payload);
        let idb = get_relations(&mut r)?;
        let mut r = ByteReader::new(&find(SEC_DELTA)?.payload);
        let delta = get_relations(&mut r)?;

        let mut r = ByteReader::new(&find(SEC_FEKEYS)?.payload);
        let n = r.get_usize()?;
        let mut fe_keys: BTreeMap<String, BTreeSet<FeKey>> = BTreeMap::new();
        for _ in 0..n {
            let pred = r.get_str()?;
            let count = r.get_usize()?;
            let mut keys = BTreeSet::new();
            for _ in 0..count {
                let lrps = get_lrps(&mut r)?;
                let dn = r.get_usize()?;
                let mut data = Vec::with_capacity(dn.min(1024));
                for _ in 0..dn {
                    data.push(get_data_value(&mut r)?);
                }
                keys.insert((lrps, data));
            }
            fe_keys.insert(pred, keys);
        }

        let mut r = ByteReader::new(&find(SEC_STATS)?.payload);
        let tuples_derived = r.get_u64()?;
        let tuples_inserted = r.get_u64()?;
        let tuples_subsumed = r.get_u64()?;
        let n = r.get_usize()?;
        let mut strata = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let pn = r.get_usize()?;
            let mut preds = Vec::with_capacity(pn.min(1024));
            for _ in 0..pn {
                preds.push(r.get_str()?);
            }
            strata.push(SavedStratum {
                preds,
                iterations: r.get_usize()?,
                inserted: r.get_u64()?,
                elapsed_us: r.get_u64()?,
            });
        }

        Ok(Checkpoint {
            generation: None,
            program_hash,
            edb_hash,
            stratum,
            iteration,
            stratum_iter,
            fe_safe_at,
            fe_safe_streak,
            last_growing,
            idb,
            delta,
            fe_keys,
            governor,
            tuples_derived,
            tuples_inserted,
            tuples_subsumed,
            strata,
        })
    }

    /// Persists the checkpoint as the store's next generation and emits a
    /// `checkpoint_written` trace event.
    pub fn save(&self, store: &SnapshotStore) -> Result<Written, CheckpointError> {
        let start = std::time::Instant::now();
        let sections = self.encode();
        let written = store.write(&sections)?;
        let write_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        itdb_trace::emit(|| itdb_trace::EventKind::CheckpointWritten {
            generation: written.generation,
            bytes: written.bytes,
            write_us,
        });
        Ok(written)
    }

    /// Rejects checkpoints written for a different program or EDB.
    pub fn validate(&self, program_hash: u128, edb_hash: u128) -> Result<(), CheckpointError> {
        if self.program_hash != program_hash {
            return Err(CheckpointError::StaleProgramHash {
                expected: program_hash,
                found: self.program_hash,
            });
        }
        if self.edb_hash != edb_hash {
            return Err(CheckpointError::StaleEdbHash {
                expected: edb_hash,
                found: self.edb_hash,
            });
        }
        Ok(())
    }

    /// Restores the serialized statistics into an [`EvalStats`] shell (the
    /// lrp-layer counters and total elapsed restart from zero — they
    /// describe the resumed run, not the original one).
    pub fn restore_stats(&self) -> EvalStats {
        EvalStats {
            tuples_derived: self.tuples_derived,
            tuples_inserted: self.tuples_inserted,
            tuples_subsumed: self.tuples_subsumed,
            strata: self.strata.iter().map(SavedStratum::to_stats).collect(),
            ..EvalStats::default()
        }
    }
}

/// Loads the newest checkpoint that passes *both* the store's structural
/// validation and the checkpoint decoder, walking generations newest-first
/// and reporting (not failing on) everything skipped. Each skipped
/// generation emits a `checkpoint_recovery` trace event.
pub fn load_latest(store: &SnapshotStore) -> Result<Recovered, CheckpointError> {
    let mut skipped = Vec::new();
    let generations = store.generations().map_err(CheckpointError::Store)?;
    for g in generations.into_iter().rev() {
        let result = store
            .load_generation(g)
            .map_err(CheckpointError::Store)
            .and_then(|sections| Checkpoint::decode(&sections));
        match result {
            Ok(mut checkpoint) => {
                checkpoint.generation = Some(g);
                return Ok(Recovered {
                    generation: g,
                    checkpoint,
                    skipped,
                });
            }
            Err(e) => {
                let rendered = e.to_string();
                itdb_trace::emit(|| itdb_trace::EventKind::CheckpointRecovery {
                    generation: g,
                    error: rendered.clone(),
                });
                skipped.push((g, rendered));
            }
        }
    }
    Err(CheckpointError::NoCheckpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdb_lrp::Governor;

    fn sample_checkpoint() -> Checkpoint {
        let mut db = crate::db::Database::new();
        db.insert_parsed("p", "(24n+10, 24n+12; a) : T2 = T1 + 2")
            .unwrap();
        db.insert_parsed("q", "(6n+1)").unwrap();
        let idb: BTreeMap<String, GeneralizedRelation> =
            db.iter().map(|(n, r)| (n.to_string(), r.clone())).collect();
        let mut fe_keys = BTreeMap::new();
        let mut keys = BTreeSet::new();
        for t in idb["p"].tuples() {
            keys.insert(t.free_extension_key());
        }
        fe_keys.insert("p".to_string(), keys);
        Checkpoint {
            generation: None,
            program_hash: 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233,
            edb_hash: 42,
            stratum: 1,
            iteration: 7,
            stratum_iter: 3,
            fe_safe_at: Some(5),
            fe_safe_streak: 2,
            last_growing: vec!["p".into()],
            delta: idb.clone(),
            idb,
            fe_keys,
            governor: Governor::unlimited().stats(),
            tuples_derived: 100,
            tuples_inserted: 40,
            tuples_subsumed: 60,
            strata: vec![SavedStratum {
                preds: vec!["p".into(), "q".into()],
                iterations: 3,
                inserted: 40,
                elapsed_us: 1234,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cp = sample_checkpoint();
        let decoded = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(decoded.program_hash, cp.program_hash);
        assert_eq!(decoded.edb_hash, cp.edb_hash);
        assert_eq!(decoded.stratum, cp.stratum);
        assert_eq!(decoded.iteration, cp.iteration);
        assert_eq!(decoded.stratum_iter, cp.stratum_iter);
        assert_eq!(decoded.fe_safe_at, cp.fe_safe_at);
        assert_eq!(decoded.fe_safe_streak, cp.fe_safe_streak);
        assert_eq!(decoded.last_growing, cp.last_growing);
        assert_eq!(decoded.fe_keys, cp.fe_keys);
        assert_eq!(decoded.governor, cp.governor);
        assert_eq!(decoded.strata, cp.strata);
        assert_eq!(decoded.idb.len(), cp.idb.len());
        for (name, rel) in &cp.idb {
            let d = &decoded.idb[name];
            assert_eq!(d.len(), rel.len());
            assert!(d.equivalent(rel, itdb_lrp::DEFAULT_RESIDUE_BUDGET).unwrap());
        }
    }

    #[test]
    fn stale_hashes_are_typed_errors() {
        let cp = sample_checkpoint();
        assert!(cp.validate(cp.program_hash, cp.edb_hash).is_ok());
        assert!(matches!(
            cp.validate(cp.program_hash + 1, cp.edb_hash),
            Err(CheckpointError::StaleProgramHash { .. })
        ));
        assert!(matches!(
            cp.validate(cp.program_hash, cp.edb_hash + 1),
            Err(CheckpointError::StaleEdbHash { .. })
        ));
    }

    #[test]
    fn program_hash_tracks_source_changes() {
        let p1 = crate::parse_program("p[t+1] <- e[t].").unwrap();
        let p2 = crate::parse_program("p[t+2] <- e[t].").unwrap();
        let n1 = crate::normalize::normalize_program(&p1).unwrap();
        let n1b = crate::normalize::normalize_program(&p1).unwrap();
        let n2 = crate::normalize::normalize_program(&p2).unwrap();
        assert_eq!(hash_program(&n1), hash_program(&n1b), "deterministic");
        assert_ne!(hash_program(&n1), hash_program(&n2));
    }

    #[test]
    fn edb_hash_tracks_content_changes() {
        let mut db1 = crate::db::Database::new();
        db1.insert_parsed("e", "(6n+1)").unwrap();
        let mut db1b = crate::db::Database::new();
        db1b.insert_parsed("e", "(6n+1)").unwrap();
        let mut db2 = crate::db::Database::new();
        db2.insert_parsed("e", "(6n+2)").unwrap();
        assert_eq!(hash_database(&db1), hash_database(&db1b));
        assert_ne!(hash_database(&db1), hash_database(&db2));
    }

    #[test]
    fn save_load_round_trips_through_the_store() {
        let dir = std::env::temp_dir().join(format!("itdb_cp_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        let cp = sample_checkpoint();
        let w = cp.save(&store).unwrap();
        let rec = load_latest(&store).unwrap();
        assert_eq!(rec.generation, w.generation);
        assert_eq!(rec.checkpoint.generation, Some(w.generation));
        assert_eq!(rec.checkpoint.iteration, cp.iteration);
        assert!(rec.skipped.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_is_no_checkpoint() {
        let dir = std::env::temp_dir().join(format!("itdb_cp_empty_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(matches!(
            load_latest(&store),
            Err(CheckpointError::NoCheckpoint)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
