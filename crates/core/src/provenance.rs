//! Post-hoc derivation trees ("why is this tuple in the model?").
//!
//! When an evaluation runs with [`EvalOptions::provenance`], every
//! insertion is recorded as a [`Derivation`]: the rule that fired and the
//! body facts it consumed. This module reconstructs, for a queried ground
//! point, the full derivation tree down to extensional (EDB) leaves.
//!
//! Reconstruction is well-founded by construction: derivations are
//! recorded in insertion order, and a rule can only have matched tuples
//! already *in* the model, so every source fact of derivation `i`
//! structurally equals some derivation `j < i` (or an EDB fact). The
//! resolver therefore only ever searches strictly earlier records, which
//! makes the recursion terminate even for recursive programs.
//!
//! [`EvalOptions::provenance`]: crate::engine::EvalOptions::provenance

use crate::engine::{Derivation, Evaluation};
use itdb_lrp::{DataValue, GeneralizedTuple};
use std::fmt::Write as _;

/// One node of a derivation tree.
#[derive(Debug, Clone)]
pub struct DerivationNode {
    /// Predicate of the fact.
    pub pred: String,
    /// The generalized tuple holding the fact.
    pub tuple: GeneralizedTuple,
    /// Source-program clause index of the rule that derived it, `None`
    /// for extensional (EDB) leaves.
    pub rule: Option<usize>,
    /// Sub-derivations of the rule's positive body facts, in body order.
    pub children: Vec<DerivationNode>,
}

impl DerivationNode {
    /// Is every leaf of this tree fully ground: either an extensional
    /// (EDB) fact, or a bodyless program clause (an axiom)? A `false`
    /// means some intensional source could not be resolved to an earlier
    /// derivation — provenance was incomplete.
    pub fn grounded_in_edb(&self, extensional: &std::collections::BTreeSet<String>) -> bool {
        if self.children.is_empty() {
            return match self.rule {
                Some(_) => true, // bodyless program fact
                None => extensional.contains(&self.pred),
            };
        }
        self.children.iter().all(|c| c.grounded_in_edb(extensional))
    }

    /// Renders the tree with box-drawing indentation; `rule_labels` come
    /// from [`Evaluation::rule_labels`].
    pub fn render(&self, rule_labels: &[String]) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", true, true, rule_labels);
        out
    }

    fn render_into(
        &self,
        out: &mut String,
        prefix: &str,
        is_root: bool,
        is_last: bool,
        rule_labels: &[String],
    ) {
        let (branch, child_prefix) = if is_root {
            (String::new(), String::new())
        } else if is_last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let origin = match self.rule {
            Some(r) => rule_labels
                .get(r)
                .cloned()
                .unwrap_or_else(|| format!("r{r}")),
            None => "EDB".to_string(),
        };
        let _ = writeln!(out, "{branch}{} {}   [{origin}]", self.pred, self.tuple);
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(
                out,
                &child_prefix,
                false,
                i + 1 == self.children.len(),
                rule_labels,
            );
        }
    }
}

/// Explains why `pred` holds at the ground point `(temporal, data)`:
/// returns the derivation tree of the latest recorded derivation whose
/// tuple covers the point, or `None` when no recorded derivation does
/// (predicate unknown, point not in the model, or provenance was off).
pub fn explain(
    eval: &Evaluation,
    pred: &str,
    temporal: &[i64],
    data: &[DataValue],
) -> Option<DerivationNode> {
    // Latest match wins: later derivations are at least as refined, and
    // any match yields a valid tree.
    let idx = eval
        .derivations
        .iter()
        .rposition(|d| d.pred == pred && d.tuple.contains(temporal, data))?;
    Some(build(eval, idx))
}

/// Builds the tree rooted at derivation `idx`, resolving each source fact
/// among strictly earlier derivations (intensional) or as an EDB leaf.
fn build(eval: &Evaluation, idx: usize) -> DerivationNode {
    let d = &eval.derivations[idx];
    let children = d
        .sources
        .iter()
        .map(|(pred, tuple)| {
            if eval.info.intensional.contains(pred) {
                if let Some(j) = find_before(&eval.derivations, idx, pred, tuple) {
                    return build(eval, j);
                }
            }
            // Extensional fact — or an intensional source whose record
            // predates provenance collection (shouldn't happen when
            // provenance was on for the whole run).
            DerivationNode {
                pred: pred.clone(),
                tuple: tuple.clone(),
                rule: None,
                children: Vec::new(),
            }
        })
        .collect();
    DerivationNode {
        pred: d.pred.clone(),
        tuple: d.tuple.clone(),
        rule: Some(d.rule),
        children,
    }
}

/// The latest derivation before `idx` whose predicate and tuple match
/// `tuple` structurally (tuples are compared in display form: inserted
/// tuples are canonical, and source facts are clones of inserted ones, so
/// renderings coincide exactly).
fn find_before(
    derivations: &[Derivation],
    idx: usize,
    pred: &str,
    tuple: &GeneralizedTuple,
) -> Option<usize> {
    let wanted = tuple.to_string();
    derivations[..idx]
        .iter()
        .rposition(|d| d.pred == pred && d.tuple.to_string() == wanted)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::engine::{evaluate_with, EvalOptions};
    use crate::parser::parse_program;

    fn provenance_opts() -> EvalOptions {
        EvalOptions {
            provenance: true,
            ..Default::default()
        }
    }

    #[test]
    fn explain_recursive_derivation_reaches_edb() {
        let p = parse_program("p[t + 5] <- e[t]. p[t + 5] <- p[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(15n)").unwrap();
        let eval = evaluate_with(&p, &db, &provenance_opts()).unwrap();
        assert!(eval.outcome.converged());
        // 10 = 0 + 5 + 5: derived by the recursive rule from p[5], which
        // the base rule derived from e[0].
        let tree = explain(&eval, "p", &[10], &[]).expect("p holds at 10");
        assert_eq!(tree.pred, "p");
        assert!(tree.rule.is_some());
        assert!(tree.grounded_in_edb(&eval.info.extensional), "{tree:?}");
        // The rendered tree mentions the EDB leaf.
        let txt = tree.render(&eval.rule_labels);
        assert!(txt.contains("[EDB]"), "{txt}");
        assert!(txt.contains("e "), "{txt}");
    }

    #[test]
    fn explain_two_strata_with_negation() {
        let p = parse_program(
            "service[t] <- sched[t]. service[t + 12] <- service[t].
             gap[t] <- tick[t], !service[t].",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_parsed("sched", "(24n)").unwrap();
        db.insert_parsed("tick", "(n)").unwrap();
        let eval = evaluate_with(&p, &db, &provenance_opts()).unwrap();
        assert!(eval.outcome.converged());
        // 5 is a gap (service only at multiples of 12).
        let tree = explain(&eval, "gap", &[5], &[]).expect("gap holds at 5");
        assert_eq!(tree.rule, Some(2));
        assert!(tree.grounded_in_edb(&eval.info.extensional));
        // service[12] goes through the recursive rule down to sched.
        let tree = explain(&eval, "service", &[12], &[]).expect("service holds at 12");
        assert!(tree.grounded_in_edb(&eval.info.extensional));
        assert!(tree.render(&eval.rule_labels).contains("sched"));
    }

    #[test]
    fn explain_missing_point_or_disabled_provenance() {
        let p = parse_program("p[t + 5] <- e[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(15n)").unwrap();
        let eval = evaluate_with(&p, &db, &provenance_opts()).unwrap();
        assert!(explain(&eval, "p", &[7], &[]).is_none());
        assert!(explain(&eval, "nosuch", &[0], &[]).is_none());

        let plain = evaluate_with(&p, &db, &EvalOptions::default()).unwrap();
        assert!(plain.derivations.is_empty());
        assert!(explain(&plain, "p", &[5], &[]).is_none());
    }
}
