//! Window-bounded ground (tuple-at-a-time) evaluation.
//!
//! The baseline the paper argues against (§4.3): instead of computing on
//! generalized tuples, materialize the ground facts inside a finite window
//! `[lo, hi]` and run ordinary Datalog saturation on them. Facts whose
//! temporal components fall outside the window are dropped (window-truncated
//! semantics), so the result agrees with the closed-form model only on
//! windows and programs where no derivation path leaves the window. This is
//! experiment E3's baseline and a differential-testing oracle for the
//! engine.

use crate::analyze::analyze;
use crate::ast::{CmpOp, DataTerm, Program};
use crate::db::Database;
use crate::normalize::{normalize_program, NormClause, NormConstraint};
use itdb_lrp::{DataValue, Result};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A ground fact: temporal values plus data values.
pub type GroundFact = (Vec<i64>, Vec<DataValue>);

/// The ground model computed over a window.
#[derive(Debug, Clone, Default)]
pub struct GroundModel {
    /// Facts per predicate (extensional and intensional).
    pub facts: BTreeMap<String, BTreeSet<GroundFact>>,
}

impl GroundModel {
    /// Membership test.
    pub fn contains(&self, pred: &str, temporal: &[i64], data: &[DataValue]) -> bool {
        self.facts
            .get(pred)
            .is_some_and(|s| s.contains(&(temporal.to_vec(), data.to_vec())))
    }

    /// Number of facts for a predicate.
    pub fn count(&self, pred: &str) -> usize {
        self.facts.get(pred).map_or(0, |s| s.len())
    }
}

/// Evaluates `program` over the ground facts of `edb` inside `[lo, hi]`.
pub fn evaluate_ground(program: &Program, edb: &Database, lo: i64, hi: i64) -> Result<GroundModel> {
    let info = analyze(program)?;
    let clauses: Vec<NormClause> = normalize_program(program)?
        .into_iter()
        .filter(|c| !c.dead)
        .collect();

    let mut model = GroundModel::default();
    for pred in &info.extensional {
        let facts = match edb.get(pred) {
            Some(rel) => rel.enumerate_window(lo, hi).into_iter().collect(),
            None => BTreeSet::new(),
        };
        model.facts.insert(pred.clone(), facts);
    }
    for pred in &info.intensional {
        model.facts.entry(pred.clone()).or_default();
    }

    // Stratified naive saturation: strata lowest first, so negated atoms
    // always read complete lower-strata facts. Termination is guaranteed
    // because the fact space inside the window is finite.
    for stratum in &info.strata {
        loop {
            let mut added = false;
            for clause in clauses.iter().filter(|c| stratum.contains(&c.head_pred)) {
                let mut new_facts = Vec::new();
                fire_clause(clause, &model, lo, hi, &mut new_facts);
                let set = model.facts.get_mut(&clause.head_pred).expect("intensional");
                for f in new_facts {
                    if set.insert(f) {
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }
    }
    Ok(model)
}

/// Enumerates all ground instantiations of a clause body within the window
/// and collects the (in-window) head facts.
fn fire_clause(
    clause: &NormClause,
    model: &GroundModel,
    lo: i64,
    hi: i64,
    out: &mut Vec<GroundFact>,
) {
    let mut tvals: Vec<Option<i64>> = vec![None; clause.n_tvars];
    let mut dvals: HashMap<String, DataValue> = HashMap::new();
    dfs_atoms(clause, model, lo, hi, 0, &mut tvals, &mut dvals, out);
}

#[allow(clippy::too_many_arguments)]
fn dfs_atoms(
    clause: &NormClause,
    model: &GroundModel,
    lo: i64,
    hi: i64,
    k: usize,
    tvals: &mut Vec<Option<i64>>,
    dvals: &mut HashMap<String, DataValue>,
    out: &mut Vec<GroundFact>,
) {
    if k == clause.body.len() {
        finish_ground(clause, model, lo, hi, tvals, dvals, out);
        return;
    }
    let atom = &clause.body[k];
    let Some(facts) = model.facts.get(&atom.pred) else {
        return;
    };
    'facts: for (ft, fd) in facts {
        // Temporal unification: fact column p has value ft[p]; the term is
        // v + s, so v must equal ft[p] − s.
        let mut set_here: Vec<usize> = Vec::new();
        for (p, &(v, s)) in atom.temporal.iter().enumerate() {
            let needed = ft[p] - s;
            match tvals[v] {
                Some(cur) if cur != needed => {
                    for &u in &set_here {
                        tvals[u] = None;
                    }
                    continue 'facts;
                }
                Some(_) => {}
                None => {
                    tvals[v] = Some(needed);
                    set_here.push(v);
                }
            }
        }
        // Data unification.
        let mut dbound_here: Vec<String> = Vec::new();
        let mut ok = true;
        for (p, term) in atom.data.iter().enumerate() {
            match term {
                DataTerm::Const(c) => {
                    if c != &fd[p] {
                        ok = false;
                        break;
                    }
                }
                DataTerm::Var(v) => match dvals.get(v) {
                    Some(b) if b != &fd[p] => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        dvals.insert(v.clone(), fd[p].clone());
                        dbound_here.push(v.clone());
                    }
                },
            }
        }
        if ok {
            dfs_atoms(clause, model, lo, hi, k + 1, tvals, dvals, out);
        }
        for &u in &set_here {
            tvals[u] = None;
        }
        for v in &dbound_here {
            dvals.remove(v);
        }
    }
}

/// After all body atoms are matched: propagate equality constraints to pin
/// the remaining variables, enumerate any still-free ones over the window,
/// check the constraints, and emit the head fact if it lies in the window.
fn finish_ground(
    clause: &NormClause,
    model: &GroundModel,
    lo: i64,
    hi: i64,
    tvals: &[Option<i64>],
    dvals: &HashMap<String, DataValue>,
    out: &mut Vec<GroundFact>,
) {
    // Equality propagation to a fixpoint.
    let mut vals = tvals.to_vec();
    loop {
        let mut changed = false;
        for c in &clause.constraints {
            match *c {
                NormConstraint::VarVar((v1, c1), CmpOp::Eq, (v2, c2)) => {
                    match (vals[v1], vals[v2]) {
                        (Some(a), None) => {
                            // a + c1 = v2 + c2  →  v2 = a + c1 − c2
                            vals[v2] = Some(a + c1 - c2);
                            changed = true;
                        }
                        (None, Some(b)) => {
                            vals[v1] = Some(b + c2 - c1);
                            changed = true;
                        }
                        _ => {}
                    }
                }
                NormConstraint::VarConst((v, c1), CmpOp::Eq, k) if vals[v].is_none() => {
                    vals[v] = Some(k - c1);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Enumerate remaining free variables over the window (these come from
    // constraint-only variables, e.g. `window[t] <- 0 <= t, t < 10`).
    let free: Vec<usize> = (0..clause.n_tvars).filter(|&v| vals[v].is_none()).collect();
    enumerate_free(clause, model, lo, hi, &free, 0, &mut vals, dvals, out);
}

#[allow(clippy::too_many_arguments)]
fn enumerate_free(
    clause: &NormClause,
    model: &GroundModel,
    lo: i64,
    hi: i64,
    free: &[usize],
    idx: usize,
    vals: &mut Vec<Option<i64>>,
    dvals: &HashMap<String, DataValue>,
    out: &mut Vec<GroundFact>,
) {
    if idx == free.len() {
        emit_if_valid(clause, model, lo, hi, vals, dvals, out);
        return;
    }
    for t in lo..=hi {
        vals[free[idx]] = Some(t);
        enumerate_free(clause, model, lo, hi, free, idx + 1, vals, dvals, out);
    }
    vals[free[idx]] = None;
}

fn emit_if_valid(
    clause: &NormClause,
    model: &GroundModel,
    lo: i64,
    hi: i64,
    vals: &[Option<i64>],
    dvals: &HashMap<String, DataValue>,
    out: &mut Vec<GroundFact>,
) {
    let val = |vs: (usize, i64)| vals[vs.0].map(|v| v + vs.1);
    // Stratified negation: the fact must be absent from the (lower-
    // stratum or extensional, hence complete) relation.
    for a in &clause.neg_body {
        let temporal: Option<Vec<i64>> = a.temporal.iter().map(|&vs| val(vs)).collect();
        let Some(temporal) = temporal else { return };
        let mut data = Vec::with_capacity(a.data.len());
        for d in &a.data {
            match d {
                DataTerm::Const(c) => data.push(c.clone()),
                DataTerm::Var(v) => match dvals.get(v) {
                    Some(b) => data.push(b.clone()),
                    None => return,
                },
            }
        }
        if model.contains(&a.pred, &temporal, &data) {
            return;
        }
    }
    for c in &clause.constraints {
        let holds = match *c {
            NormConstraint::VarVar(l, op, r) => match (val(l), val(r)) {
                (Some(a), Some(b)) => cmp(a, op, b),
                _ => false,
            },
            NormConstraint::VarConst(l, op, k) => match val(l) {
                Some(a) => cmp(a, op, k),
                None => false,
            },
        };
        if !holds {
            return;
        }
    }
    let mut temporal = Vec::with_capacity(clause.head_tvars.len());
    for &h in &clause.head_tvars {
        match vals[h] {
            Some(v) if (lo..=hi).contains(&v) => temporal.push(v),
            _ => return, // outside the window (or unconstrained): truncate
        }
    }
    let mut data = Vec::with_capacity(clause.head_data.len());
    for d in &clause.head_data {
        match d {
            DataTerm::Const(c) => data.push(c.clone()),
            DataTerm::Var(v) => match dvals.get(v) {
                Some(b) => data.push(b.clone()),
                None => return,
            },
        }
    }
    out.push((temporal, data));
}

fn cmp(a: i64, op: CmpOp, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Eq => a == b,
        CmpOp::Ge => a >= b,
        CmpOp::Gt => a > b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate, EvalOptions};
    use crate::parser::parse_program;

    #[test]
    fn ground_matches_closed_form_on_example_4_1() {
        let p = parse_program(
            "problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
             problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();

        let closed = evaluate(&p, &db).unwrap();
        let problems = closed.relation("problems").unwrap();
        let ground = evaluate_ground(&p, &db, 0, 1200).unwrap();

        // Compare on an interior window where truncation cannot matter (a
        // margin of a few periods on each side).
        let d = [DataValue::sym("database")];
        for t1 in 400..800 {
            let t2 = t1 + 2;
            assert_eq!(
                ground.contains("problems", &[t1, t2], &d),
                problems.contains(&[t1, t2], &d),
                "t1={t1}"
            );
        }
    }

    #[test]
    fn ground_handles_point_recursion_the_closed_form_cannot() {
        let p = parse_program("p[0]. p[t + 5] <- p[t].").unwrap();
        let g = evaluate_ground(&p, &Database::new(), 0, 100).unwrap();
        for t in 0..=100 {
            assert_eq!(g.contains("p", &[t], &[]), t % 5 == 0, "t={t}");
        }
        assert_eq!(g.count("p"), 21);
    }

    #[test]
    fn constraint_only_variables_enumerate() {
        let p = parse_program("window[t] <- 0 <= t, t < 10.").unwrap();
        let g = evaluate_ground(&p, &Database::new(), -5, 20).unwrap();
        assert_eq!(g.count("window"), 10);
        assert!(g.contains("window", &[0], &[]));
        assert!(!g.contains("window", &[10], &[]));
    }

    #[test]
    fn data_joins_ground() {
        let p = parse_program("m[t1, t2](C) <- a[t1](C), b[t2](C), t1 < t2.").unwrap();
        let mut db = Database::new();
        db.insert_parsed("a", "(4n; x)\n(4n+1; y)").unwrap();
        db.insert_parsed("b", "(4n+2; x)\n(4n+3; z)").unwrap();
        let g = evaluate_ground(&p, &db, 0, 10).unwrap();
        assert!(g.contains("m", &[0, 2], &[DataValue::sym("x")]));
        assert!(g.contains("m", &[4, 6], &[DataValue::sym("x")]));
        assert!(!g.contains("m", &[0, 2], &[DataValue::sym("y")]));
        // y and z never share a data constant.
        assert!(g.facts["m"]
            .iter()
            .all(|(_, d)| d[0] == DataValue::sym("x")));
    }

    #[test]
    fn agreement_with_engine_on_random_style_program() {
        // A two-argument recursion that converges in closed form; ground
        // evaluation must agree on interior points.
        let p = parse_program(
            "r[t1 + 3, t2 + 3] <- e[t1, t2].
             r[t1 + 6, t2 + 6] <- r[t1, t2].",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(12n, 12n+1) : T2 = T1 + 1").unwrap();
        let closed = evaluate_with(&p, &db, &EvalOptions::default()).unwrap();
        assert!(closed.outcome.converged());
        let r = closed.relation("r").unwrap();
        let g = evaluate_ground(&p, &db, 0, 240).unwrap();
        for t1 in 60..180i64 {
            let t2 = t1 + 1;
            assert_eq!(
                g.contains("r", &[t1, t2], &[]),
                r.contains(&[t1, t2], &[]),
                "t1={t1}"
            );
        }
    }

    use crate::engine::evaluate_with;
}
