//! # itdb-core — the temporal deductive language of the paper (§4)
//!
//! Datalog over the integers with successor/predecessor, an arbitrary
//! number of temporal arguments per predicate, and interpreted `<` / `=`
//! constraints, evaluated **bottom-up in closed form** on the generalized
//! databases of `itdb-lrp`:
//!
//! ```
//! use itdb_core::{evaluate, parse_program, Database};
//!
//! let program = parse_program(
//!     "problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
//!      problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
//! ).unwrap();
//! let mut db = Database::new();
//! db.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2").unwrap();
//!
//! let eval = evaluate(&program, &db).unwrap();
//! assert!(eval.outcome.converged());
//! let problems = eval.relation("problems").unwrap();
//! assert!(problems.contains(&[10, 12], &[itdb_lrp::DataValue::sym("database")]));
//! ```
//!
//! The crate implements the full §4 pipeline: AST and parser ([`ast`],
//! [`parser`]), static analysis ([`mod@analyze`]), the generalized-program
//! normalization of §4.3 ([`normalize`]), the `T_GP` fixpoint engine with
//! free-extension and constraint safety ([`engine`]), a window-bounded
//! ground evaluator used as the tuple-at-a-time baseline ([`ground`]), and
//! goal-style querying of computed models ([`mod@query`]).
//!
//! Observability rides on `itdb-trace`: the engine opens structured spans
//! (`evaluate` → `stratum` → `iteration` → `rule`) and emits typed events
//! for every derived/inserted/subsumed tuple; [`provenance`] rebuilds
//! derivation trees from recorded provenance, and [`metrics`] renders
//! evaluation statistics as Prometheus text.

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod checkpoint;
pub mod db;
pub mod engine;
pub mod ground;
pub mod metrics;
pub mod normalize;
pub(crate) mod parallel;
pub mod parser;
pub mod provenance;
pub mod query;
pub mod resident;
pub mod service;

pub use analyze::{analyze, ProgramInfo};
pub use ast::{Atom, BodyAtom, Clause, CmpOp, ConstraintAtom, DataTerm, Program, TemporalTerm};
pub use checkpoint::{
    hash_database, hash_program, load_latest, Checkpoint, CheckpointError, CheckpointPolicy,
    CheckpointReport, Recovered,
};
pub use db::Database;
pub use engine::{
    evaluate, evaluate_governed, evaluate_with, resume_governed, resume_with, Completeness,
    Derivation, EvalOptions, EvalOutcome, EvalStats, Evaluation, Interruption, IterationTrace,
    StratumStats,
};
pub use itdb_lrp::{CancelToken, Governor, GovernorConfig, GovernorStats, TripReason};
pub use itdb_store::SnapshotStore;
pub use metrics::{render_metrics, render_metrics_full, write_metrics_into};
pub use parser::{parse_atom, parse_clause, parse_program};
pub use provenance::{explain, DerivationNode};
pub use query::{ask, query};
pub use resident::{ApplyError, ApplyOutcome, Fact, Op, ResidentModel, ResidentStats};
pub use service::{
    parse_workload, parse_workload_typed, QueryRequest, QueryResponse, QueryStatus, Service,
    ServiceDefaults, ServiceTotals, Workload, WorkloadError, WorkloadErrorKind,
};
