//! Bottom-up closed-form evaluation: the generalized mapping `T_GP` (§4.3).
//!
//! Each iteration applies every clause to the current generalized Herbrand
//! interpretation: body atoms are matched against generalized tuples, the
//! periodic zones are joined (CRT on lrps, conjunction of difference
//! constraints), the clause's own constraint atoms are conjoined, and the
//! result is projected onto the head variables. Derived tuples are inserted
//! with *subsumption*: a tuple already covered by the union of existing
//! tuples with the same data is discarded, which is exactly the
//! constraint-safety convergence test of Theorem 4.3.
//!
//! Termination bookkeeping follows the paper:
//!
//! * **free-extension safety** (Theorem 4.2): the set of free extensions
//!   (canonical lrp vectors + data) eventually stops growing, always;
//! * **constraint safety** (Theorem 4.3): when additionally every derived
//!   tuple is implied by a disjunction of existing constraints, the
//!   evaluation has converged. This may never happen (e.g. the `(i, i²)`
//!   relation), so after free-extension safety holds the engine allows a
//!   configurable number of grace iterations before giving up — "it is
//!   reasonable to give up on the computation if the interpretation does not
//!   become constraint safe after a few iterations" (§4.3).
//!
//! Beyond the paper's own bookkeeping, every evaluation runs under a
//! resource [`Governor`]: iteration and derived-tuple fuel, a wall-clock
//! deadline, an approximate memory ceiling, and a cooperative cancellation
//! token. A governor trip does not destroy the work done so far — the
//! engine returns the partial model with [`EvalOutcome::Interrupted`]
//! describing why it stopped, how complete the model is, and which
//! predicates were still growing. Every tuple in a partial model was
//! genuinely derived by `T_GP`, so partial models are always *sound*
//! (under-approximations of the least model); stratified negation does not
//! break this because a stratum only starts after all lower strata have
//! fully converged, and a trip abandons the in-flight stratum's iteration
//! rather than publishing half of it.

// User-reachable evaluation path: failures must flow through the error
// taxonomy, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::analyze::{analyze, ProgramInfo};
use crate::ast::{CmpOp, DataTerm, Program};
use crate::checkpoint::{Checkpoint, CheckpointPolicy, CheckpointReport, FeKey, SavedStratum};
use crate::db::Database;
use crate::normalize::{normalize_program, NormAtom, NormClause, NormConstraint};
use itdb_lrp::{
    CancelToken, Constraint, DataValue, Dbm, Error, GeneralizedRelation, GeneralizedTuple,
    Governor, GovernorConfig, GovernorStats, Lrp, Result, TripReason, Var, Zone,
    DEFAULT_RESIDUE_BUDGET,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options controlling the fixpoint computation.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Hard cap on iterations of `T_GP + I`.
    pub max_iterations: usize,
    /// Grace iterations allowed after free-extension safety before the
    /// evaluation is declared diverging (paper §4.3, final paragraph).
    pub grace_after_fe_safety: usize,
    /// Residue budget for exact zone operations.
    pub residue_budget: u64,
    /// Use semi-naive evaluation (restrict one intensional body atom per
    /// clause application to the previous iteration's delta).
    pub seminaive: bool,
    /// Record a per-iteration trace of derived tuples.
    pub trace: bool,
    /// Coalesce the final relations into the coarsest equivalent
    /// representation (e.g. the seven Example 4.1 tuples modulo 168 become
    /// one tuple modulo 24).
    pub coalesce: bool,
    /// Fuel: maximum generalized tuples derived (inserted as new) across
    /// the whole evaluation. `None` = unlimited.
    pub max_derived_tuples: Option<u64>,
    /// Wall-clock deadline for the whole evaluation.
    pub timeout: Option<Duration>,
    /// Approximate memory ceiling: maximum generalized tuples held across
    /// all IDB relations at once.
    pub max_held_tuples: Option<u64>,
    /// Cooperative cancellation token, checked at every loop boundary
    /// (e.g. wired to Ctrl-C by the CLI).
    pub cancel: Option<CancelToken>,
    /// Consult the per-relation data-vector index for subsumption inserts
    /// and clause matching. `false` falls back to full linear scans — the
    /// seed behavior, kept as an oracle for equivalence testing.
    pub use_index: bool,
    /// Record derivation provenance: for every tuple inserted into the
    /// model, which rule fired and which body facts it consumed. Enables
    /// post-hoc [`crate::provenance::explain`] derivation trees at the
    /// cost of cloning the matched source tuples per insertion.
    pub provenance: bool,
    /// Durable checkpointing policy: write crash-safe snapshots of the
    /// partial fixpoint on governor trips and/or every N iterations.
    /// `None` (the default) disables checkpointing entirely. Checkpoint
    /// write failures never abort the evaluation — they are counted in
    /// [`Evaluation::checkpoints`].
    pub checkpoint: Option<CheckpointPolicy>,
    /// Worker threads for the derive phase of each iteration. `1` (the
    /// default) keeps the classic single-threaded path; `N > 1` shards
    /// each rule firing across a pool of `N` scoped threads (see
    /// [`crate::parallel`]) with a rendezvous barrier before the merge.
    /// Models are byte-identical for every value of `parallel`.
    pub parallel: usize,
}

/// Default worker count: the `ITDB_PARALLEL` environment variable when set
/// to an integer ≥ 1 (the CI parallel-stress job uses this to force every
/// default-options evaluation through the sharded path), otherwise 1.
fn default_parallel() -> usize {
    std::env::var("ITDB_PARALLEL")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_iterations: 10_000,
            grace_after_fe_safety: 16,
            residue_budget: DEFAULT_RESIDUE_BUDGET,
            seminaive: true,
            trace: false,
            coalesce: false,
            max_derived_tuples: None,
            timeout: None,
            max_held_tuples: None,
            cancel: None,
            use_index: true,
            provenance: false,
            checkpoint: None,
            parallel: default_parallel(),
        }
    }
}

impl EvalOptions {
    /// The governor configuration these options describe (used by
    /// [`evaluate_with`]; [`evaluate_governed`] callers build their own).
    pub fn governor_config(&self) -> GovernorConfig {
        GovernorConfig {
            max_iterations: Some(self.max_iterations as u64),
            max_derived_tuples: self.max_derived_tuples,
            timeout: self.timeout,
            max_held_tuples: self.max_held_tuples,
            cancel: self.cancel.clone(),
        }
    }
}

/// How the fixpoint computation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalOutcome {
    /// The interpretation became constraint safe: the least model has been
    /// computed in closed form.
    Converged {
        /// Number of `T_GP` applications performed (the paper counts the
        /// final, no-op application; so does this).
        iterations: usize,
    },
    /// Free-extension safety was reached but constraint safety was not
    /// within the grace allowance: the model is not finitely representable
    /// by this process (or needs more grace).
    DivergedAfterFeSafety {
        /// First iteration after which no new free extensions appeared.
        fe_safe_at: usize,
        /// Total iterations performed before giving up.
        iterations: usize,
    },
    /// The resource governor tripped (fuel, deadline, cancellation, or
    /// memory ceiling). The accompanying IDB is a *sound partial model*:
    /// every tuple in it was derived by `T_GP`, but more may exist.
    Interrupted(Interruption),
}

/// Machine-readable diagnostics for a governor trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interruption {
    /// Which budget tripped.
    pub reason: TripReason,
    /// How complete the partial model is known to be.
    pub completeness: Completeness,
    /// Iterations of `T_GP` started before the trip.
    pub iterations: usize,
    /// Predicates that were still deriving new tuples in the most recent
    /// productive iteration — the ones to blame for divergence.
    pub growing: Vec<String>,
    /// Governor counters at trip time (fuel used, tuples held, elapsed
    /// ms) — lets operators size the budget for a resumed run.
    pub counters: GovernorStats,
}

/// Completeness guarantee attached to an interrupted evaluation's partial
/// model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completeness {
    /// Free-extension safety (Theorem 4.2) had been reached before the
    /// trip: the model contains a tuple for every free extension of the
    /// least model, so it is complete within the extension window and only
    /// constraint refinement (Theorem 4.3) was still running.
    FreeExtensionComplete {
        /// Iteration at which free-extension safety was observed.
        fe_safe_at: usize,
    },
    /// The trip came before free-extension safety: the model is a plain
    /// under-approximation.
    Partial,
}

impl EvalOutcome {
    /// Did the evaluation produce the exact least model?
    pub fn converged(&self) -> bool {
        matches!(self, EvalOutcome::Converged { .. })
    }

    /// The trip diagnostics, when the governor interrupted the evaluation.
    pub fn interruption(&self) -> Option<&Interruption> {
        match self {
            EvalOutcome::Interrupted(i) => Some(i),
            _ => None,
        }
    }
}

/// Per-iteration record of what `T_GP` produced (when tracing is enabled).
#[derive(Debug, Clone)]
pub struct IterationTrace {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Tuples actually inserted (not subsumed by the existing
    /// interpretation).
    pub inserted: Vec<(String, GeneralizedTuple)>,
    /// Tuples derived but already subsumed — the paper's convergence
    /// witness: in Example 4.1 the eighth derived tuple "is a set of tuples
    /// of integers contained in a previously obtained set".
    pub subsumed: Vec<(String, GeneralizedTuple)>,
}

/// Aggregate statistics for one evaluation: tuple flow, the cost counters
/// of the `itdb-lrp` indexing/caching layer scoped to this run, and wall
/// clock per stratum. Rendered by the shell's `stats` command and the CLI's
/// `--stats` flag via [`fmt::Display`].
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Candidate head tuples produced by clause applications (before
    /// canonicalization and subsumption).
    pub tuples_derived: u64,
    /// Tuples that survived subsumption and entered the model.
    pub tuples_inserted: u64,
    /// Tuples derived but already covered by the interpretation — the
    /// paper's convergence witnesses.
    pub tuples_subsumed: u64,
    /// `itdb-lrp` layer counters (canonicalization, memo hit rates, index
    /// narrowing) scoped to this evaluation by snapshot subtraction.
    pub counters: itdb_lrp::stats::Counters,
    /// Per-stratum breakdown, in evaluation order. Timings for a stratum
    /// interrupted mid-iteration cover its last *completed* iteration.
    pub strata: Vec<StratumStats>,
    /// Total wall clock, including final coalescing.
    pub elapsed: Duration,
}

/// Statistics for one stratum of the stratified fixpoint.
#[derive(Debug, Clone, Default)]
pub struct StratumStats {
    /// The predicates defined in this stratum.
    pub preds: Vec<String>,
    /// Iterations of `T_GP` the stratum ran.
    pub iterations: usize,
    /// Tuples inserted by this stratum.
    pub inserted: u64,
    /// Wall clock spent in this stratum.
    pub elapsed: Duration,
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = |r: Option<f64>| match r {
            Some(x) => format!("{:.1}%", x * 100.0),
            None => "n/a".to_string(),
        };
        writeln!(
            f,
            "tuples derived: {} ({} inserted, {} subsumed)",
            self.tuples_derived, self.tuples_inserted, self.tuples_subsumed
        )?;
        writeln!(
            f,
            "subsumption checks: {}",
            self.counters.subsumption_checks
        )?;
        writeln!(
            f,
            "index narrowing: {} ({} of {} tuples consulted)",
            pct(self.counters.narrowing_ratio()),
            self.counters.index_candidates,
            self.counters.index_scanned_naive
        )?;
        writeln!(
            f,
            "canonical-form cache: {} hit ({} hits, {} misses)",
            pct(self.counters.canonical_hit_rate()),
            self.counters.canonical_cache_hits,
            self.counters.canonical_cache_misses
        )?;
        writeln!(
            f,
            "emptiness cache: {} hit ({} hits, {} misses)",
            pct(self.counters.empty_hit_rate()),
            self.counters.empty_cache_hits,
            self.counters.empty_cache_misses
        )?;
        writeln!(
            f,
            "canonicalize calls: {}",
            self.counters.canonicalize_calls
        )?;
        for (i, s) in self.strata.iter().enumerate() {
            writeln!(
                f,
                "stratum {i} ({}): {} iteration(s), {} inserted, {}",
                s.preds.join(", "),
                s.iterations,
                s.inserted,
                itdb_trace::fmt_duration(s.elapsed)
            )?;
        }
        write!(f, "elapsed: {}", itdb_trace::fmt_duration(self.elapsed))
    }
}

impl EvalStats {
    /// Folds another evaluation's statistics into this one: tuple flow and
    /// `itdb-lrp` counters add, elapsed time accumulates. Per-stratum
    /// breakdowns are a per-evaluation notion and are deliberately **not**
    /// merged. This is the supported way to aggregate across evaluations
    /// that ran on different threads — the underlying counters are
    /// thread-local, so snapshotting from an aggregating thread measures
    /// nothing (see `itdb_lrp::stats`).
    pub fn absorb(&mut self, other: &EvalStats) {
        self.tuples_derived += other.tuples_derived;
        self.tuples_inserted += other.tuples_inserted;
        self.tuples_subsumed += other.tuples_subsumed;
        self.counters += other.counters;
        self.elapsed += other.elapsed;
    }

    /// Renders the statistics as one JSON object (stable field order; all
    /// durations in integer microseconds), the machine-readable twin of
    /// the [`fmt::Display`] text. Consumed by the shell's `stats --json`
    /// and the CLI's `--stats-json` flag.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"tuples_derived\":{},\"tuples_inserted\":{},\"tuples_subsumed\":{}",
            self.tuples_derived, self.tuples_inserted, self.tuples_subsumed
        );
        let c = &self.counters;
        let _ = write!(
            out,
            ",\"counters\":{{\"subsumption_checks\":{},\"index_candidates\":{},\
             \"index_scanned_naive\":{},\"canonical_cache_hits\":{},\
             \"canonical_cache_misses\":{},\"empty_cache_hits\":{},\
             \"empty_cache_misses\":{},\"canonicalize_calls\":{}}}",
            c.subsumption_checks,
            c.index_candidates,
            c.index_scanned_naive,
            c.canonical_cache_hits,
            c.canonical_cache_misses,
            c.empty_cache_hits,
            c.empty_cache_misses,
            c.canonicalize_calls
        );
        out.push_str(",\"strata\":[");
        for (i, s) in self.strata.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"preds\":[");
            for (j, p) in s.preds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                itdb_trace::json::escape_into(p, &mut out);
                out.push('"');
            }
            let _ = write!(
                out,
                "],\"iterations\":{},\"inserted\":{},\"elapsed_us\":{}}}",
                s.iterations,
                s.inserted,
                s.elapsed.as_micros()
            );
        }
        let _ = write!(out, "],\"elapsed_us\":{}}}", self.elapsed.as_micros());
        out
    }
}

/// One successful insertion into the model with its provenance: the rule
/// that fired and the body facts it consumed. Recorded in insertion order
/// (so every source fact of a derivation precedes it in the list), which
/// is what makes [`crate::provenance::explain`]'s tree reconstruction
/// terminate.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// Head predicate.
    pub pred: String,
    /// The canonical tuple that entered the model.
    pub tuple: GeneralizedTuple,
    /// Source-program clause index of the rule that fired.
    pub rule: usize,
    /// Positive body facts matched when the rule fired, in body order.
    pub sources: Vec<(String, GeneralizedTuple)>,
}

/// The result of evaluating a program.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The computed extensions of the intensional predicates, in closed
    /// form.
    pub idb: BTreeMap<String, GeneralizedRelation>,
    /// How the computation ended.
    pub outcome: EvalOutcome,
    /// Iteration at which free-extension safety was first observed, if it
    /// was.
    pub fe_safe_at: Option<usize>,
    /// Per-iteration trace (empty unless [`EvalOptions::trace`]).
    pub trace: Vec<IterationTrace>,
    /// Static analysis of the program.
    pub info: ProgramInfo,
    /// Tuple flow, cache and index counters, and per-stratum timings.
    pub stats: EvalStats,
    /// Provenance records, in insertion order (empty unless
    /// [`EvalOptions::provenance`]).
    pub derivations: Vec<Derivation>,
    /// One human-readable label per source-program clause (`r0: <clause>`),
    /// indexed by [`Derivation::rule`]; shared by trace spans, the
    /// `profile` table, and `explain` rendering.
    pub rule_labels: Vec<String>,
    /// What durable checkpointing did during this evaluation (all zeros
    /// when [`EvalOptions::checkpoint`] is `None` and the run was not
    /// resumed).
    pub checkpoints: CheckpointReport,
}

impl Evaluation {
    /// The computed relation for an intensional predicate.
    pub fn relation(&self, pred: &str) -> Option<&GeneralizedRelation> {
        self.idb.get(pred)
    }
}

/// Evaluates `program` against the generalized database `edb` bottom-up on
/// generalized tuples, with default options.
pub fn evaluate(program: &Program, edb: &Database) -> Result<Evaluation> {
    evaluate_with(program, edb, &EvalOptions::default())
}

/// Evaluates with explicit options; resource limits in `opts` are enforced
/// by a fresh [`Governor`].
pub fn evaluate_with(program: &Program, edb: &Database, opts: &EvalOptions) -> Result<Evaluation> {
    let governor = Governor::new(opts.governor_config());
    evaluate_governed(program, edb, opts, &governor)
}

/// Splits an error into a governor trip (recoverable — the model built so
/// far is sound) versus a genuine failure that must propagate.
fn as_trip(e: Error) -> Result<TripReason> {
    match e {
        Error::Interrupted(reason) => Ok(reason),
        other => Err(other),
    }
}

/// Builds the graceful-degradation outcome for a governor trip.
fn interrupted_outcome(
    reason: TripReason,
    fe_safe_at: Option<usize>,
    iterations: usize,
    growing: Vec<String>,
    counters: GovernorStats,
) -> EvalOutcome {
    EvalOutcome::Interrupted(Interruption {
        reason,
        completeness: match fe_safe_at {
            Some(fe_safe_at) => Completeness::FreeExtensionComplete { fe_safe_at },
            None => Completeness::Partial,
        },
        iterations,
        growing,
        counters,
    })
}

/// Evaluates under an externally supplied [`Governor`] (shared budgets,
/// cancellation from another thread, fault injection). The governor is
/// authoritative for all resource limits — `opts.max_iterations` is *not*
/// applied on top of it. The governor is also installed as the thread's
/// ambient governor for the duration, so deep zone and relation algebra
/// checks it too.
pub fn evaluate_governed(
    program: &Program,
    edb: &Database,
    opts: &EvalOptions,
    governor: &Arc<Governor>,
) -> Result<Evaluation> {
    evaluate_governed_impl(program, edb, opts, governor, None)
}

/// Resumes an interrupted evaluation from a [`Checkpoint`] with a fresh
/// [`Governor`] built from `opts`. The checkpoint's program and EDB
/// hashes are validated against `program`/`edb` first — a stale
/// checkpoint is rejected with a typed error, never silently resumed.
/// Resuming re-enters the fixpoint at the saved cursor and reaches the
/// same model an uninterrupted run would.
pub fn resume_with(
    program: &Program,
    edb: &Database,
    opts: &EvalOptions,
    checkpoint: &Checkpoint,
) -> Result<Evaluation> {
    let governor = Governor::new(opts.governor_config());
    resume_governed(program, edb, opts, &governor, checkpoint)
}

/// [`resume_with`] under an externally supplied governor.
pub fn resume_governed(
    program: &Program,
    edb: &Database,
    opts: &EvalOptions,
    governor: &Arc<Governor>,
    checkpoint: &Checkpoint,
) -> Result<Evaluation> {
    evaluate_governed_impl(program, edb, opts, governor, Some(checkpoint))
}

fn evaluate_governed_impl(
    program: &Program,
    edb: &Database,
    opts: &EvalOptions,
    governor: &Arc<Governor>,
    resume: Option<&Checkpoint>,
) -> Result<Evaluation> {
    let _scope = governor.enter();
    let _eval_span = itdb_trace::span(itdb_trace::SpanKind::Evaluate, "evaluate");
    let eval_start = Instant::now();
    let counters_before = itdb_lrp::stats::snapshot();
    // Counters accumulated on worker threads (each worker's thread-local
    // cells are scoped with `stats::take()` and folded here at barriers);
    // added to the coordinator's own delta at the end.
    let mut worker_counters = itdb_lrp::stats::Counters::default();
    let workers = opts.parallel.max(1);
    let mut stats = EvalStats::default();
    let info = analyze(program)?;
    // Rule identity for spans, events, and provenance: one label per
    // *source* clause, so indices stay stable across dead-clause filtering.
    let rule_labels: Vec<String> = program
        .clauses
        .iter()
        .enumerate()
        .map(|(i, c)| format!("r{i}: {c}"))
        .collect();
    // Source facts are cloned per derivation only when someone will read
    // them: the provenance recorder or an installed trace sink.
    let collect_sources = opts.provenance || itdb_trace::enabled();
    let mut derivations: Vec<Derivation> = Vec::new();
    // Validate the EDB up front (missing extensional relations are treated
    // as empty, mismatched schemas are errors).
    for pred in &info.extensional {
        if edb.get(pred).is_some() {
            edb.get_checked(pred, info.signatures[pred])?;
        }
    }
    let all_clauses = normalize_program(program)?;
    // Content hashes guard checkpoints against being resumed into a
    // different program or EDB; computed (over *all* normalized clauses,
    // before dead-clause filtering) only when a checkpoint will be
    // written or consumed.
    let need_hashes = opts.checkpoint.is_some() || resume.is_some();
    let program_hash = if need_hashes {
        crate::checkpoint::hash_program(&all_clauses)
    } else {
        0
    };
    let edb_hash = if need_hashes {
        crate::checkpoint::hash_database(edb)
    } else {
        0
    };
    let clauses: Vec<NormClause> = all_clauses.into_iter().filter(|c| !c.dead).collect();

    let mut idb: BTreeMap<String, GeneralizedRelation> = info
        .intensional
        .iter()
        .map(|p| (p.clone(), GeneralizedRelation::empty(info.signatures[p])))
        .collect();
    let empty_relations: BTreeMap<String, GeneralizedRelation> = info
        .signatures
        .iter()
        .map(|(p, s)| (p.clone(), GeneralizedRelation::empty(*s)))
        .collect();

    // Free-extension bookkeeping: canonical lrp vectors + data per pred.
    type FeKey = (Vec<Lrp>, Vec<DataValue>);
    let mut fe_keys: BTreeMap<&str, BTreeSet<FeKey>> = BTreeMap::new();
    let mut fe_safe_at: Option<usize> = None;

    let mut trace = Vec::new();
    let mut outcome = None;
    let mut iteration = 0usize;
    // Predicates that inserted tuples in the most recent productive
    // iteration — named in trip diagnostics as "still growing".
    let mut last_growing: Vec<String> = Vec::new();

    let mut report = CheckpointReport::default();
    // Cursor of the in-flight stratum restored from a checkpoint:
    // (stratum index, completed stratum iterations, fe-safe streak, the
    // semi-naive delta to re-enter with).
    let mut resume_cursor: Option<(usize, usize, usize, BTreeMap<String, GeneralizedRelation>)> =
        None;
    if let Some(c) = resume {
        c.validate(program_hash, edb_hash).map_err(Error::from)?;
        for (pred, rel) in &c.idb {
            match idb.get_mut(pred) {
                Some(slot) => *slot = rel.clone(),
                None => {
                    return Err(Error::Eval(format!(
                        "checkpoint: unknown intensional predicate {pred}"
                    )))
                }
            }
        }
        for (pred, keys) in &c.fe_keys {
            fe_keys.insert(pred_key(&info, pred)?, keys.clone());
        }
        iteration = c.iteration;
        fe_safe_at = c.fe_safe_at;
        last_growing = c.last_growing.clone();
        let restored = c.restore_stats();
        stats.tuples_derived = restored.tuples_derived;
        stats.tuples_inserted = restored.tuples_inserted;
        stats.tuples_subsumed = restored.tuples_subsumed;
        stats.strata = restored.strata;
        report.resumed_from = c.generation;
        itdb_trace::emit(|| itdb_trace::EventKind::CheckpointRestored {
            generation: c.generation.unwrap_or(0),
            stratum: c.stratum as u64,
            iteration: c.iteration as u64,
        });
        resume_cursor = Some((c.stratum, c.stratum_iter, c.fe_safe_streak, c.delta.clone()));
    }

    // Strata run lowest first; within a stratum the usual (semi-)naive
    // fixpoint applies, with lower strata and the EDB acting as stable
    // inputs. Negated atoms always refer to stable inputs (stratified), so
    // their subtraction semantics is exact.
    'strata: for (stratum_idx, stratum) in info.strata.iter().enumerate() {
        // Strata fully completed before the checkpoint's cursor are
        // already in the restored IDB — don't re-run them.
        if resume_cursor.as_ref().is_some_and(|c| stratum_idx < c.0) {
            continue;
        }
        let _stratum_span = itdb_trace::span_with(itdb_trace::SpanKind::Stratum, || {
            format!("stratum {stratum_idx}")
        });
        let stratum_start = Instant::now();
        // A resumed run restored statistics for every stratum up to and
        // including the cursor's; only strata beyond it need fresh rows.
        if stats.strata.len() <= stratum_idx {
            stats.strata.push(StratumStats {
                preds: stratum.iter().cloned().collect(),
                ..StratumStats::default()
            });
        }
        let stratum_preds: Vec<&str> = stratum.iter().map(|s| s.as_str()).collect();
        let stratum_clauses: Vec<&NormClause> = clauses
            .iter()
            .filter(|c| stratum.contains(&c.head_pred))
            .collect();
        let mut fe_safe_streak = 0usize;
        let mut stratum_iter = 0usize;
        let mut delta: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
        if resume_cursor.as_ref().is_some_and(|c| c.0 == stratum_idx) {
            if let Some((_, si, streak, d)) = resume_cursor.take() {
                stratum_iter = si;
                fe_safe_streak = streak;
                delta = d;
            }
        }

        loop {
            if let Err(e) = governor.start_iteration() {
                outcome = Some(interrupted_outcome(
                    as_trip(e)?,
                    fe_safe_at,
                    iteration,
                    last_growing.clone(),
                    governor.stats(),
                ));
                maybe_checkpoint(
                    opts,
                    true,
                    CheckpointCursor {
                        program_hash,
                        edb_hash,
                        stratum: stratum_idx,
                        iteration,
                        stratum_iter,
                        fe_safe_at,
                        fe_safe_streak,
                    },
                    &last_growing,
                    &idb,
                    &delta,
                    None,
                    &fe_keys,
                    governor,
                    &stats,
                    &mut report,
                );
                break 'strata;
            }
            iteration += 1;
            stratum_iter += 1;
            // Free-extension values as of the start of this iteration —
            // redo checkpoints (written when a trip strikes mid-iteration)
            // rewind to them alongside the iteration counters.
            let iter_start_fe = (fe_safe_at, fe_safe_streak);
            let _iter_span = itdb_trace::span_with(itdb_trace::SpanKind::Iteration, || {
                format!("iteration {iteration}")
            });
            let mut derived: Vec<Pending> = Vec::new();
            let mut trip: Option<TripReason> = None;

            if workers > 1 {
                // Sharded path: fire every (clause, delta-position) unit
                // across the worker pool against the immutable snapshot,
                // rendezvous, and receive the derived tuples in sequential
                // emission order (see `crate::parallel`). The merge below
                // is shared with the sequential path and stays
                // single-writer.
                let ctx = crate::parallel::DeriveCtx {
                    clauses: &stratum_clauses,
                    stratum_preds: &stratum_preds,
                    idb: &idb,
                    delta: &delta,
                    edb,
                    empty: &empty_relations,
                    info: &info,
                    rule_labels: &rule_labels,
                    seminaive_pass: opts.seminaive && stratum_iter > 1,
                    residue_budget: opts.residue_budget,
                    use_index: opts.use_index,
                    collect_sources,
                };
                match crate::parallel::derive_parallel(
                    &ctx,
                    workers,
                    governor,
                    &mut worker_counters,
                ) {
                    Ok(d) => derived = d,
                    Err(e) => trip = Some(as_trip(e)?),
                }
            } else {
                derive_sequential(
                    &stratum_clauses,
                    &stratum_preds,
                    &idb,
                    &delta,
                    edb,
                    &empty_relations,
                    &info,
                    &rule_labels,
                    opts,
                    stratum_iter,
                    collect_sources,
                    &mut derived,
                    &mut trip,
                )?;
            }
            if let Some(reason) = trip {
                // Tripped mid-derivation: abandon this iteration's derived
                // tuples; the model is exactly the last completed
                // iteration's (sound). The checkpoint cursor points at the
                // last completed iteration (redo semantics).
                outcome = Some(interrupted_outcome(
                    reason,
                    fe_safe_at,
                    iteration,
                    last_growing.clone(),
                    governor.stats(),
                ));
                maybe_checkpoint(
                    opts,
                    true,
                    CheckpointCursor {
                        program_hash,
                        edb_hash,
                        stratum: stratum_idx,
                        iteration: iteration - 1,
                        stratum_iter: stratum_iter - 1,
                        fe_safe_at: iter_start_fe.0,
                        fe_safe_streak: iter_start_fe.1,
                    },
                    &last_growing,
                    &idb,
                    &delta,
                    None,
                    &fe_keys,
                    governor,
                    &stats,
                    &mut report,
                );
                break 'strata;
            }

            // Insert with subsumption; track free-extension growth.
            let mut inserted = Vec::new();
            let mut subsumed = Vec::new();
            let mut new_fe_key = false;
            let mut next_delta: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
            stats.tuples_derived += derived.len() as u64;
            for Pending {
                pred,
                rule,
                tuple,
                sources,
            } in derived
            {
                itdb_trace::emit(|| itdb_trace::EventKind::TupleDerived {
                    pred: pred.clone(),
                    rule,
                });
                let Some(tuple) = tuple.canonical() else {
                    continue;
                };
                let rel = idb.get_mut(&pred).ok_or_else(|| {
                    Error::Eval(format!(
                        "internal: derived tuple for non-intensional predicate {pred}"
                    ))
                })?;
                let ins = if opts.use_index {
                    rel.insert_if_new(tuple.clone(), opts.residue_budget)
                } else {
                    rel.insert_if_new_naive(tuple.clone(), opts.residue_budget)
                };
                match ins {
                    Ok(true) => {
                        itdb_trace::emit(|| itdb_trace::EventKind::TupleInserted {
                            pred: pred.clone(),
                            rule,
                            tuple: tuple.to_string(),
                            sources: sources
                                .iter()
                                .map(|(p, t)| itdb_trace::SourceFact {
                                    pred: p.clone(),
                                    tuple: t.to_string(),
                                })
                                .collect(),
                        });
                        if opts.provenance {
                            derivations.push(Derivation {
                                pred: pred.clone(),
                                tuple: tuple.clone(),
                                rule,
                                sources,
                            });
                        }
                        let keys = fe_keys.entry(pred_key(&info, &pred)?).or_default();
                        if keys.insert(tuple.free_extension_key()) {
                            new_fe_key = true;
                        }
                        next_delta
                            .entry(pred.clone())
                            .or_insert_with(|| GeneralizedRelation::empty(info.signatures[&pred]))
                            .insert(tuple.clone())?;
                        inserted.push((pred, tuple));
                        if let Err(e) = governor.note_derived(1) {
                            trip = Some(as_trip(e)?);
                            break;
                        }
                    }
                    Ok(false) => {
                        itdb_trace::emit(|| itdb_trace::EventKind::TupleSubsumed {
                            pred: pred.clone(),
                            rule,
                            tuple: tuple.to_string(),
                        });
                        subsumed.push((pred, tuple));
                    }
                    Err(e) => {
                        trip = Some(as_trip(e)?);
                        break;
                    }
                }
            }
            if trip.is_none() {
                let held: u64 = idb.values().map(|r| r.len() as u64).sum();
                if let Err(e) = governor.report_held(held) {
                    trip = Some(as_trip(e)?);
                }
            }
            stats.tuples_inserted += inserted.len() as u64;
            stats.tuples_subsumed += subsumed.len() as u64;
            if let Some(s) = stats.strata.last_mut() {
                s.iterations = stratum_iter;
                s.inserted += inserted.len() as u64;
                s.elapsed = stratum_start.elapsed();
            }

            if new_fe_key {
                fe_safe_at = None;
                fe_safe_streak = 0;
            } else {
                if fe_safe_at.is_none() {
                    fe_safe_at = Some(iteration);
                }
                fe_safe_streak += 1;
            }

            let fixpoint = inserted.is_empty();
            if !fixpoint {
                let mut preds: Vec<String> = inserted.iter().map(|(p, _)| p.clone()).collect();
                preds.sort();
                preds.dedup();
                last_growing = preds;
            }
            if opts.trace {
                trace.push(IterationTrace {
                    iteration,
                    inserted,
                    subsumed,
                });
            }
            if let Some(reason) = trip {
                outcome = Some(interrupted_outcome(
                    reason,
                    fe_safe_at,
                    iteration,
                    last_growing.clone(),
                    governor.stats(),
                ));
                // Tripped mid-insert: some of this iteration's tuples are
                // already in the IDB. The redo cursor rewinds the counters
                // and *widens* the frontier with the partial inserts, so
                // the redone iteration still propagates their
                // consequences (re-derivations subsume harmlessly).
                maybe_checkpoint(
                    opts,
                    true,
                    CheckpointCursor {
                        program_hash,
                        edb_hash,
                        stratum: stratum_idx,
                        iteration: iteration - 1,
                        stratum_iter: stratum_iter - 1,
                        fe_safe_at: iter_start_fe.0,
                        fe_safe_streak: iter_start_fe.1,
                    },
                    &last_growing,
                    &idb,
                    &delta,
                    Some(&next_delta),
                    &fe_keys,
                    governor,
                    &stats,
                    &mut report,
                );
                break 'strata;
            }
            if fixpoint {
                outcome = Some(EvalOutcome::Converged {
                    iterations: iteration,
                });
                last_growing.clear(); // this stratum settled
                break; // next stratum
            }
            if fe_safe_streak > opts.grace_after_fe_safety {
                outcome = Some(EvalOutcome::DivergedAfterFeSafety {
                    // The else-branch above set this before starting the streak.
                    fe_safe_at: fe_safe_at.unwrap_or(iteration),
                    iterations: iteration,
                });
                break 'strata;
            }
            delta = next_delta;
            // Every-N cadence: this point is reached only between
            // completed iterations, so the cursor needs no rewinding.
            maybe_checkpoint(
                opts,
                false,
                CheckpointCursor {
                    program_hash,
                    edb_hash,
                    stratum: stratum_idx,
                    iteration,
                    stratum_iter,
                    fe_safe_at,
                    fe_safe_streak,
                },
                &last_growing,
                &idb,
                &delta,
                None,
                &fe_keys,
                governor,
                &stats,
                &mut report,
            );
        }
    }

    // All strata converged (or there were none at all).
    let outcome = outcome.unwrap_or(EvalOutcome::Converged {
        iterations: iteration,
    });

    if opts.coalesce && !matches!(outcome, EvalOutcome::Interrupted(_)) {
        for rel in idb.values_mut() {
            if let Err(e) = rel.coalesce(opts.residue_budget) {
                // A governor trip mid-coalesce is benign: coalescing only
                // changes the representation, and each committed step keeps
                // it equivalent. Ship what we have.
                as_trip(e)?;
                break;
            }
        }
    }

    stats.counters = (itdb_lrp::stats::snapshot() - counters_before) + worker_counters;
    stats.elapsed = eval_start.elapsed();

    Ok(Evaluation {
        idb,
        outcome,
        fe_safe_at,
        trace,
        info,
        stats,
        derivations,
        rule_labels,
        checkpoints: report,
    })
}

/// The evaluation-cursor half of a checkpoint: where re-entry happens.
struct CheckpointCursor {
    program_hash: u128,
    edb_hash: u128,
    stratum: usize,
    iteration: usize,
    stratum_iter: usize,
    fe_safe_at: Option<usize>,
    fe_safe_streak: usize,
}

/// Builds and persists a checkpoint when the policy calls for one at this
/// site: `trip_site` marks trip-triggered writes, otherwise the every-N
/// cadence applies. `extra_delta` widens the saved frontier with an
/// interrupted iteration's partial inserts (redo semantics; see the
/// [`crate::checkpoint`] module docs). Failures are counted in `report`
/// and traced — checkpointing never aborts the evaluation.
#[allow(clippy::too_many_arguments)]
fn maybe_checkpoint(
    opts: &EvalOptions,
    trip_site: bool,
    cursor: CheckpointCursor,
    last_growing: &[String],
    idb: &BTreeMap<String, GeneralizedRelation>,
    delta: &BTreeMap<String, GeneralizedRelation>,
    extra_delta: Option<&BTreeMap<String, GeneralizedRelation>>,
    fe_keys: &BTreeMap<&str, BTreeSet<FeKey>>,
    governor: &Governor,
    stats: &EvalStats,
    report: &mut CheckpointReport,
) {
    let Some(policy) = &opts.checkpoint else {
        return;
    };
    let due = if trip_site {
        policy.on_trip
    } else {
        policy
            .every_iterations
            .is_some_and(|n| n > 0 && (cursor.iteration as u64).is_multiple_of(n))
    };
    if !due {
        return;
    }
    let mut delta_out = delta.clone();
    if let Some(extra) = extra_delta {
        for (pred, rel) in extra {
            let entry = delta_out
                .entry(pred.clone())
                .or_insert_with(|| GeneralizedRelation::empty(rel.schema()));
            for t in rel.tuples() {
                if entry.insert(t.clone()).is_err() {
                    report.failed += 1;
                    return;
                }
            }
        }
    }
    let cp = Checkpoint {
        generation: None,
        program_hash: cursor.program_hash,
        edb_hash: cursor.edb_hash,
        stratum: cursor.stratum,
        iteration: cursor.iteration,
        stratum_iter: cursor.stratum_iter,
        fe_safe_at: cursor.fe_safe_at,
        fe_safe_streak: cursor.fe_safe_streak,
        last_growing: last_growing.to_vec(),
        idb: idb.clone(),
        delta: delta_out,
        fe_keys: fe_keys
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        governor: governor.stats(),
        tuples_derived: stats.tuples_derived,
        tuples_inserted: stats.tuples_inserted,
        tuples_subsumed: stats.tuples_subsumed,
        strata: stats.strata.iter().map(SavedStratum::from_stats).collect(),
    };
    let start = Instant::now();
    if let Some(bg) = &policy.background {
        // Background mode: the hot path pays encoding only; the fsync
        // happens on the writer thread (bursts coalesce, latest wins).
        // `written` counts hand-offs here — durable-write outcomes live
        // in the writer's own stats.
        let sections = cp.encode();
        report.last_bytes = sections.iter().map(|s| s.payload.len() as u64).sum();
        bg.submit(sections);
        report.written += 1;
        report.last_write_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        return;
    }
    match cp.save(&policy.store) {
        Ok(w) => {
            report.written += 1;
            report.last_generation = Some(w.generation);
            report.last_bytes = w.bytes;
            report.last_write_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        }
        Err(e) => {
            report.failed += 1;
            itdb_trace::emit(|| itdb_trace::EventKind::Message {
                text: format!("checkpoint write failed: {e}"),
            });
        }
    }
}

/// The classic single-threaded derive phase of one iteration: fires every
/// stratum clause (each delta position on semi-naive passes) against the
/// current snapshot, appending emissions to `derived` in firing order.
/// A governor trip mid-derivation lands in `trip`; genuine errors
/// propagate. This is the `--parallel 1` oracle the sharded path
/// ([`crate::parallel`]) is byte-identical to.
#[allow(clippy::too_many_arguments)]
fn derive_sequential(
    stratum_clauses: &[&NormClause],
    stratum_preds: &[&str],
    idb: &BTreeMap<String, GeneralizedRelation>,
    delta: &BTreeMap<String, GeneralizedRelation>,
    edb: &Database,
    empty_relations: &BTreeMap<String, GeneralizedRelation>,
    info: &ProgramInfo,
    rule_labels: &[String],
    opts: &EvalOptions,
    stratum_iter: usize,
    collect_sources: bool,
    derived: &mut Vec<Pending>,
    trip: &mut Option<TripReason>,
) -> Result<()> {
    'derive: for clause in stratum_clauses {
        let _rule_span = itdb_trace::span_with(itdb_trace::SpanKind::Rule, || {
            rule_labels
                .get(clause.idx)
                .cloned()
                .unwrap_or_else(|| format!("r{}", clause.idx))
        });
        let idb_positions = clause.body_positions_of(stratum_preds);
        // Relations for the negated atoms (stable inputs).
        let neg_rels: Vec<&GeneralizedRelation> = clause
            .neg_body
            .iter()
            .map(|a| {
                if info.intensional.contains(&a.pred) {
                    &idb[&a.pred]
                } else {
                    edb.get(&a.pred).unwrap_or(&empty_relations[&a.pred])
                }
            })
            .collect();
        if opts.seminaive && stratum_iter > 1 {
            if idb_positions.is_empty() {
                continue; // stable-input-only clauses cannot fire anew
            }
            for &dpos in &idb_positions {
                let rel_for = |i: usize| -> &GeneralizedRelation {
                    let pred = clause.body[i].pred.as_str();
                    if i == dpos {
                        delta.get(pred).unwrap_or(&empty_relations[pred])
                    } else if info.intensional.contains(pred) {
                        &idb[pred]
                    } else {
                        edb.get(pred).unwrap_or(&empty_relations[pred])
                    }
                };
                if let Err(e) = eval_clause(
                    clause,
                    &rel_for,
                    &neg_rels,
                    opts.residue_budget,
                    opts.use_index,
                    collect_sources,
                    None,
                    &mut |t, sources| {
                        derived.push(Pending {
                            pred: clause.head_pred.clone(),
                            rule: clause.idx,
                            tuple: t,
                            sources,
                        })
                    },
                ) {
                    *trip = Some(as_trip(e)?);
                    break 'derive;
                }
            }
        } else {
            let rel_for = |i: usize| -> &GeneralizedRelation {
                let pred = clause.body[i].pred.as_str();
                if info.intensional.contains(pred) {
                    &idb[pred]
                } else {
                    edb.get(pred).unwrap_or(&empty_relations[pred])
                }
            };
            if let Err(e) = eval_clause(
                clause,
                &rel_for,
                &neg_rels,
                opts.residue_budget,
                opts.use_index,
                collect_sources,
                None,
                &mut |t, sources| {
                    derived.push(Pending {
                        pred: clause.head_pred.clone(),
                        rule: clause.idx,
                        tuple: t,
                        sources,
                    })
                },
            ) {
                *trip = Some(as_trip(e)?);
                break 'derive;
            }
        }
    }
    Ok(())
}

/// A derived head tuple awaiting canonicalization and subsumption insert,
/// with the rule that produced it and (when collected) its source facts.
pub(crate) struct Pending {
    pub(crate) pred: String,
    pub(crate) rule: usize,
    pub(crate) tuple: GeneralizedTuple,
    pub(crate) sources: Vec<(String, GeneralizedTuple)>,
}

/// Borrow-friendly key helper: interns the predicate name against the
/// analysis result so the FE-key map can borrow.
fn pred_key<'a>(info: &'a ProgramInfo, pred: &str) -> Result<&'a str> {
    info.intensional
        .get(pred)
        .map(|s| s.as_str())
        .ok_or_else(|| Error::Eval(format!("internal: {pred} is not an intensional predicate")))
}

/// Applies one clause to the given body relations, emitting derived head
/// tuples through `emit`. When `collect_sources` is set, each emission
/// carries the positive body facts matched on the DFS path that produced
/// it (cloned); otherwise the source list is empty.
///
/// `level0_shard` restricts the *outermost* candidate list (body position
/// 0) to the contiguous range `[lo, hi)` — the sharding hook of
/// [`crate::parallel`]: because the level-0 list is the DFS's outermost
/// loop, the emissions of one shard are exactly the contiguous slice of
/// the full emission sequence whose outermost candidate index falls in
/// the range. `None` fires the whole clause (the sequential path).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_clause<'a, F: Fn(usize) -> &'a GeneralizedRelation>(
    clause: &'a NormClause,
    rel_for: &F,
    neg_rels: &[&GeneralizedRelation],
    budget: u64,
    use_index: bool,
    collect_sources: bool,
    level0_shard: Option<(usize, usize)>,
    emit: &mut dyn FnMut(GeneralizedTuple, Vec<(String, GeneralizedTuple)>),
) -> Result<()> {
    let n = clause.n_tvars;
    let mut state = MatchState {
        lrps: vec![Lrp::all_integers(); n],
        dbm: Dbm::unconstrained(n),
        binding: HashMap::new(),
        matched: Vec::new(),
    };
    dfs(
        clause,
        rel_for,
        neg_rels,
        0,
        &mut state,
        budget,
        use_index,
        collect_sources,
        level0_shard,
        emit,
    )
}

struct MatchState<'a> {
    lrps: Vec<Lrp>,
    dbm: Dbm,
    binding: HashMap<String, DataValue>,
    /// Body facts matched on the current DFS path, in body order (fed to
    /// provenance when source collection is on).
    matched: Vec<(&'a str, &'a GeneralizedTuple)>,
}

/// The fully ground data key of `data` under the current bindings: `Some`
/// exactly when every term is a constant or an already-bound variable, in
/// which case a matching tuple must carry exactly this data vector and the
/// relation's index can narrow the scan to same-data candidates.
fn ground_data_key(
    data: &[DataTerm],
    binding: &HashMap<String, DataValue>,
) -> Option<Vec<DataValue>> {
    let mut key = Vec::with_capacity(data.len());
    for term in data {
        match term {
            DataTerm::Const(c) => key.push(c.clone()),
            DataTerm::Var(v) => key.push(binding.get(v)?.clone()),
        }
    }
    Some(key)
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a, F: Fn(usize) -> &'a GeneralizedRelation>(
    clause: &'a NormClause,
    rel_for: &F,
    neg_rels: &[&GeneralizedRelation],
    k: usize,
    state: &mut MatchState<'a>,
    budget: u64,
    use_index: bool,
    collect_sources: bool,
    level0_shard: Option<(usize, usize)>,
    emit: &mut dyn FnMut(GeneralizedTuple, Vec<(String, GeneralizedTuple)>),
) -> Result<()> {
    if k == clause.body.len() {
        return finish(
            clause,
            state,
            neg_rels,
            budget,
            use_index,
            collect_sources,
            emit,
        );
    }
    let atom = &clause.body[k];
    let rel = rel_for(k);
    // When the atom's data terms are fully ground under the bindings so
    // far, only same-data tuples can match: consult the index bucket
    // instead of scanning the whole relation. (The data unification below
    // then passes trivially, but stays as the single source of truth.)
    let mut candidates: Vec<&GeneralizedTuple> = match ground_data_key(&atom.data, &state.binding) {
        Some(key) if use_index && !atom.data.is_empty() => rel.candidates(&key),
        _ => rel.tuples().iter().collect(),
    };
    // Parallel sharding applies only at the outermost level; the range was
    // planned against the same candidate-selection rule over the immutable
    // snapshot, so it always lies in bounds (guarded regardless).
    if k == 0 {
        if let Some((lo, hi)) = level0_shard {
            candidates = candidates.get(lo..hi).map_or_else(Vec::new, <[_]>::to_vec);
        }
    }
    'tuples: for tuple in candidates {
        // Save state for backtracking.
        let saved_lrps = state.lrps.clone();
        let saved_dbm = state.dbm.clone();
        let mut bound_here: Vec<String> = Vec::new();

        // Data unification.
        for (pos, term) in atom.data.iter().enumerate() {
            let val = &tuple.data()[pos];
            match term {
                DataTerm::Const(c) => {
                    if c != val {
                        continue 'tuples;
                    }
                }
                DataTerm::Var(v) => match state.binding.get(v) {
                    Some(b) if b != val => {
                        undo(state, saved_lrps.clone(), saved_dbm.clone(), &bound_here);
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        state.binding.insert(v.clone(), val.clone());
                        bound_here.push(v.clone());
                    }
                },
            }
        }

        // Temporal join: intersect lrps and import the tuple's constraints.
        if !apply_temporal(atom, tuple, state)? {
            undo(state, saved_lrps, saved_dbm, &bound_here);
            continue 'tuples;
        }

        // Prune unsatisfiable partial joins early.
        if !state.dbm.is_satisfiable() {
            undo(state, saved_lrps, saved_dbm, &bound_here);
            continue 'tuples;
        }

        state.matched.push((atom.pred.as_str(), tuple));
        let r = dfs(
            clause,
            rel_for,
            neg_rels,
            k + 1,
            state,
            budget,
            use_index,
            collect_sources,
            None, // shard consumed at level 0
            emit,
        );
        state.matched.pop();
        r?;
        undo(state, saved_lrps, saved_dbm, &bound_here);
    }
    Ok(())
}

fn undo(state: &mut MatchState<'_>, lrps: Vec<Lrp>, dbm: Dbm, bound_here: &[String]) {
    state.lrps = lrps;
    state.dbm = dbm;
    for v in bound_here {
        state.binding.remove(v);
    }
}

/// Joins one body atom against one generalized tuple: for each position
/// `p` holding the term `v + s` and matching the tuple's column `p`, the
/// clause variable `v` must lie in `lrp_p − s`, and the tuple's difference
/// constraints transfer onto the clause variables with shift-adjusted
/// offsets. Returns `false` when a residue clash makes the match empty.
fn apply_temporal(
    atom: &NormAtom,
    tuple: &GeneralizedTuple,
    state: &mut MatchState<'_>,
) -> Result<bool> {
    let zone = tuple.zone();
    for (pos, &(v, s)) in atom.temporal.iter().enumerate() {
        let shifted = zone
            .lrp(pos)
            .shift(s.checked_neg().ok_or(Error::Overflow)?)?;
        match state.lrps[v].intersect(&shifted)? {
            Some(meet) => state.lrps[v] = meet,
            None => return Ok(false),
        }
    }
    // Map the tuple's DBM bounds onto clause variables. Tuple matrix index
    // `a > 0` is column `a − 1`, which corresponds to clause variable
    // `atom.temporal[a − 1].0` with shift `atom.temporal[a − 1].1`.
    for (a, b, c) in zone.dbm().finite_bounds() {
        let (mi, si) = map_idx(atom, a);
        let (mj, sj) = map_idx(atom, b);
        if mi == mj {
            // Same clause variable on both sides: x_i − x_j = s_i − s_j,
            // so the bound degenerates to the constant fact s_i − s_j ≤ c.
            if si.saturating_sub(sj) > c {
                return Ok(false);
            }
            continue;
        }
        state
            .dbm
            .add_le(mi, mj, c.saturating_sub(si).saturating_add(sj));
    }
    Ok(true)
}

/// Maps a tuple matrix index to (clause matrix index, shift).
fn map_idx(atom: &NormAtom, a: usize) -> (usize, i64) {
    if a == 0 {
        (0, 0)
    } else {
        let (v, s) = atom.temporal[a - 1];
        (v + 1, s)
    }
}

/// Leaf of the DFS: conjoin the clause constraints, subtract the negated
/// atoms' regions (stratified negation as exact zone subtraction), project
/// onto the head variables, instantiate the head data, and emit.
#[allow(clippy::too_many_arguments)]
fn finish(
    clause: &NormClause,
    state: &mut MatchState<'_>,
    neg_rels: &[&GeneralizedRelation],
    budget: u64,
    use_index: bool,
    collect_sources: bool,
    emit: &mut dyn FnMut(GeneralizedTuple, Vec<(String, GeneralizedTuple)>),
) -> Result<()> {
    let mut dbm = state.dbm.clone();
    for c in &clause.constraints {
        constraint_of(c)?.apply(&mut dbm)?;
    }
    let zone = Zone::from_parts(state.lrps.clone(), dbm)?;

    // Stratified negation: remove, from the clause zone, every assignment
    // under which some negated atom instantiates into its (stable)
    // relation. Each matching tuple contributes a forbidden zone; the
    // remainder is a union of zones.
    let mut zones = vec![zone];
    for (atom, rel) in clause.neg_body.iter().zip(neg_rels.iter()) {
        let mut forbidden: Vec<Zone> = Vec::new();
        // Same narrowing as in `dfs`: under stratified negation every data
        // variable is bound (analysis guarantees it), so a ground key almost
        // always exists. When it does not, the full scan below raises the
        // same unbound-variable error the seed did.
        let candidates: Vec<&GeneralizedTuple> = match ground_data_key(&atom.data, &state.binding) {
            Some(key) if use_index && !atom.data.is_empty() => rel.candidates(&key),
            _ => rel.tuples().iter().collect(),
        };
        'tuples: for tuple in candidates {
            // Data filter: constants and bound variables must agree for the
            // tuple to constrain anything.
            for (pos, term) in atom.data.iter().enumerate() {
                let val = &tuple.data()[pos];
                let matches = match term {
                    DataTerm::Const(c) => c == val,
                    DataTerm::Var(v) => {
                        state.binding.get(v).map(|b| b == val).ok_or_else(|| {
                            Error::SchemaMismatch(format!(
                                "data variable {v} under negation is unbound \
                                 (analysis should have rejected this clause)"
                            ))
                        })?
                    }
                };
                if !matches {
                    continue 'tuples;
                }
            }
            // Temporal region forbidden by this tuple.
            let mut probe = MatchState {
                lrps: vec![Lrp::all_integers(); clause.n_tvars],
                dbm: Dbm::unconstrained(clause.n_tvars),
                binding: HashMap::new(),
                matched: Vec::new(),
            };
            if apply_temporal(atom, tuple, &mut probe)? {
                forbidden.push(Zone::from_parts(probe.lrps, probe.dbm)?);
            }
        }
        if forbidden.is_empty() {
            continue;
        }
        let refs: Vec<&Zone> = forbidden.iter().collect();
        let mut next = Vec::new();
        for z in zones {
            next.extend(z.subtract(&refs, budget)?);
        }
        zones = next;
        if zones.is_empty() {
            return Ok(());
        }
    }

    let data: Vec<DataValue> =
        clause
            .head_data
            .iter()
            .map(|d| match d {
                DataTerm::Const(c) => Ok(c.clone()),
                DataTerm::Var(v) => state.binding.get(v).cloned().ok_or_else(|| {
                    Error::SchemaMismatch(format!("unbound head data variable {v}"))
                }),
            })
            .collect::<Result<_>>()?;
    // One source-fact clone per DFS leaf, shared by every zone the head
    // projection splits into (they all come from the same rule firing).
    let sources: Vec<(String, GeneralizedTuple)> = if collect_sources {
        state
            .matched
            .iter()
            .map(|(p, t)| (p.to_string(), (*t).clone()))
            .collect()
    } else {
        Vec::new()
    };
    for zone in zones {
        for head_zone in zone.project(&clause.head_tvars, budget)? {
            emit(
                GeneralizedTuple::new(head_zone, data.clone()),
                sources.clone(),
            );
        }
    }
    Ok(())
}

/// Converts a normalized constraint into an [`itdb_lrp::Constraint`] over
/// the clause variables.
fn constraint_of(c: &NormConstraint) -> Result<Constraint> {
    let sub = |a: i64, b: i64| a.checked_sub(b).ok_or(Error::Overflow);
    Ok(match *c {
        NormConstraint::VarVar((v1, c1), op, (v2, c2)) => match op {
            CmpOp::Lt => Constraint::LtVar(Var(v1), Var(v2), sub(c2, c1)?),
            CmpOp::Le => Constraint::LeVar(Var(v1), Var(v2), sub(c2, c1)?),
            CmpOp::Eq => Constraint::EqVar(Var(v1), Var(v2), sub(c2, c1)?),
            CmpOp::Ge => Constraint::LeVar(Var(v2), Var(v1), sub(c1, c2)?),
            CmpOp::Gt => Constraint::LtVar(Var(v2), Var(v1), sub(c1, c2)?),
        },
        NormConstraint::VarConst((v, c1), op, k) => {
            let k = sub(k, c1)?;
            match op {
                CmpOp::Lt => Constraint::LtConst(Var(v), k),
                CmpOp::Le => Constraint::LeConst(Var(v), k),
                CmpOp::Eq => Constraint::EqConst(Var(v), k),
                CmpOp::Ge => Constraint::GeConst(Var(v), k),
                CmpOp::Gt => Constraint::GtConst(Var(v), k),
            }
        }
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn course_db() -> Database {
        let mut db = Database::new();
        db.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
            .unwrap();
        db
    }

    fn example_4_1() -> Program {
        parse_program(
            "problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
             problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        )
        .unwrap()
    }

    #[test]
    fn example_4_1_converges() {
        let eval = evaluate(&example_4_1(), &course_db()).unwrap();
        assert!(eval.outcome.converged(), "{:?}", eval.outcome);
        let problems = eval.relation("problems").unwrap();
        let d = [DataValue::sym("database")];
        // The paper's derived extension: problem sessions at +2, then every
        // 48 hours, all ≡ the seven residue classes 10, 58, 106, … mod 168.
        for base in [10i64, 58, 106, 154, 202, 250, 298] {
            assert!(problems.contains(&[base, base + 2], &d), "base={base}");
        }
        // 346 ≡ 10 (mod 168): covered by the wrapped class.
        assert!(problems.contains(&[346, 348], &d));
        // Not at the course time itself, nor at odd offsets.
        assert!(!problems.contains(&[8, 10], &d));
        assert!(!problems.contains(&[11, 13], &d));
        // Exactly the 7 residue classes: 10 + 24k mod 168 (gcd(48,168)=24).
        for t in 0..168i64 {
            let expect = t.rem_euclid(24) == 10 && (t - 10).rem_euclid(24) == 0;
            let expect = expect || [10, 34, 58, 82, 106, 130, 154].contains(&t);
            // simplify: residues congruent to 10 mod 24
            let expect2 = t.rem_euclid(24) == 10;
            assert_eq!(
                expect2,
                [10, 34, 58, 82, 106, 130, 154].contains(&t),
                "sanity t={t}"
            );
            let _ = expect;
            assert_eq!(problems.contains(&[t, t + 2], &d), expect2, "t={t}");
        }
    }

    #[test]
    fn example_4_1_trace_matches_paper() {
        // The paper's table: tuples at offsets 10, 58, 106, 154, 202, 250,
        // 298, 346 — the eighth being subsumed (wraps to 10 mod 168),
        // "after which the evaluation stops".
        let opts = EvalOptions {
            trace: true,
            seminaive: true,
            ..Default::default()
        };
        let eval = evaluate_with(&example_4_1(), &course_db(), &opts).unwrap();
        let inserted: Vec<i64> = eval
            .trace
            .iter()
            .flat_map(|t| t.inserted.iter())
            .map(|(_, t)| {
                let z = t.zone();
                assert_eq!(z.lrp(0).period(), 168);
                z.lrp(0).offset()
            })
            .collect();
        assert_eq!(inserted, vec![10, 58, 106, 154, 34, 82, 130]); // canonical offsets mod 168
                                                                   // A subsumed derivation witnesses convergence.
        assert!(eval.trace.iter().any(|t| !t.subsumed.is_empty()));
        assert!(matches!(
            eval.outcome,
            EvalOutcome::Converged { iterations: 8 }
        ));
        assert_eq!(eval.fe_safe_at, Some(8));
    }

    /// The sharded derive phase reproduces Example 4.1 byte for byte at
    /// every pool size — model, outcome, per-iteration trace, and the
    /// paper's insertion order all match the sequential run.
    #[test]
    fn example_4_1_parallel_is_byte_identical() {
        let base = EvalOptions {
            trace: true,
            parallel: 1,
            ..Default::default()
        };
        let seq = evaluate_with(&example_4_1(), &course_db(), &base).unwrap();
        for workers in [2usize, 3, 4, 8] {
            let opts = EvalOptions {
                parallel: workers,
                ..base.clone()
            };
            let par = evaluate_with(&example_4_1(), &course_db(), &opts).unwrap();
            assert_eq!(par.outcome, seq.outcome, "workers={workers}");
            assert_eq!(par.idb, seq.idb, "workers={workers}");
            assert_eq!(par.trace.len(), seq.trace.len(), "workers={workers}");
            for (p, s) in par.trace.iter().zip(&seq.trace) {
                assert_eq!(p.inserted, s.inserted, "workers={workers}");
                assert_eq!(p.subsumed, s.subsumed, "workers={workers}");
            }
            // Counter totals agree wherever the work is identical; the
            // canonical-cache split can only differ by which thread saw
            // the miss, never in the total.
            assert_eq!(
                par.stats.counters.canonical_cache_hits + par.stats.counters.canonical_cache_misses,
                seq.stats.counters.canonical_cache_hits + seq.stats.counters.canonical_cache_misses,
                "workers={workers}"
            );
            assert_eq!(
                par.stats.counters.subsumption_checks, seq.stats.counters.subsumption_checks,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn coalesced_example_4_1_is_one_tuple() {
        let opts = EvalOptions {
            coalesce: true,
            ..Default::default()
        };
        let eval = evaluate_with(&example_4_1(), &course_db(), &opts).unwrap();
        let problems = eval.relation("problems").unwrap();
        assert_eq!(problems.len(), 1, "{problems}");
        assert_eq!(problems.tuples()[0].zone().lrp(0).period(), 24);
        assert_eq!(problems.tuples()[0].zone().lrp(0).offset(), 10);
        let d = [DataValue::sym("database")];
        for t in -100..100i64 {
            assert_eq!(
                problems.contains(&[t, t + 2], &d),
                t.rem_euclid(24) == 10,
                "t={t}"
            );
        }
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let p = example_4_1();
        let db = course_db();
        let naive = evaluate_with(
            &p,
            &db,
            &EvalOptions {
                seminaive: false,
                ..Default::default()
            },
        )
        .unwrap();
        let semi = evaluate_with(&p, &db, &EvalOptions::default()).unwrap();
        assert!(naive
            .relation("problems")
            .unwrap()
            .equivalent(semi.relation("problems").unwrap(), DEFAULT_RESIDUE_BUDGET)
            .unwrap());
    }

    #[test]
    fn fact_clause_with_free_variable() {
        // `always[t].` has extension ℤ.
        let p = parse_program("always[t].").unwrap();
        let eval = evaluate(&p, &Database::new()).unwrap();
        assert!(eval.outcome.converged());
        let r = eval.relation("always").unwrap();
        assert!(r.contains(&[-1000], &[]));
        assert!(r.contains(&[0], &[]));
    }

    #[test]
    fn constraint_only_clause() {
        let p = parse_program("window[t] <- 0 <= t, t < 10.").unwrap();
        let eval = evaluate(&p, &Database::new()).unwrap();
        let r = eval.relation("window").unwrap();
        for t in -5..15 {
            assert_eq!(r.contains(&[t], &[]), (0..10).contains(&t), "t={t}");
        }
    }

    #[test]
    fn point_based_successor_recursion_diverges_as_the_paper_predicts() {
        // Chomicki–Imieliński style: holds at 0 and closed under +5. With a
        // *point* EDB (no infinite periodic extension to wrap around),
        // generalized-tuple evaluation reaches free-extension safety
        // immediately (all lrps have period 1) but never constraint safety:
        // Theorem 4.3 is a sufficient criterion only. The closed form for
        // such programs comes from Datalog1S periodicity detection
        // (itdb-datalog1s), not from T_GP iteration.
        let p = parse_program("p[0]. p[t + 5] <- p[t].").unwrap();
        let opts = EvalOptions {
            grace_after_fe_safety: 6,
            ..Default::default()
        };
        let eval = evaluate_with(&p, &Database::new(), &opts).unwrap();
        assert!(
            matches!(eval.outcome, EvalOutcome::DivergedAfterFeSafety { .. }),
            "{:?}",
            eval.outcome
        );
        // The partial model contains the early multiples of 5 and nothing
        // else.
        let r = eval.relation("p").unwrap();
        for t in -10..30 {
            assert_eq!(r.contains(&[t], &[]), t >= 0 && t % 5 == 0, "t={t}");
        }
    }

    #[test]
    fn periodic_edb_makes_the_same_recursion_converge() {
        // The paper's point (§4.3): starting from an infinite periodic set,
        // the same +5 recursion wraps modulo the period and terminates.
        let p = parse_program("p[t + 5] <- e[t]. p[t + 5] <- p[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(15n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        assert!(eval.outcome.converged(), "{:?}", eval.outcome);
        let r = eval.relation("p").unwrap();
        // 15n + 5k for k ≥ 1 covers 5ℤ... within residues mod 15: {5, 10, 0}.
        for t in -30..30 {
            assert_eq!(r.contains(&[t], &[]), t % 5 == 0, "t={t}");
        }
    }

    #[test]
    fn two_temporal_arguments_with_join() {
        // meets[t1, t2] when a[t1], b[t2], t1 < t2.
        let p = parse_program("meets[t1, t2] <- a[t1], b[t2], t1 < t2.").unwrap();
        let mut db = Database::new();
        db.insert_parsed("a", "(10n+3)").unwrap();
        db.insert_parsed("b", "(10n+7)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let r = eval.relation("meets").unwrap();
        assert!(r.contains(&[3, 7], &[]));
        assert!(r.contains(&[3, 17], &[]));
        assert!(r.contains(&[13, 17], &[]));
        assert!(!r.contains(&[7, 3], &[]));
        assert!(!r.contains(&[13, 7], &[]));
        assert!(!r.contains(&[3, 3], &[]));
    }

    #[test]
    fn data_variables_propagate() {
        let p = parse_program("next_day[t + 24](C) <- event[t](C).").unwrap();
        let mut db = Database::new();
        db.insert_parsed("event", "(168n+8; alpha)\n(168n+30; beta)")
            .unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let r = eval.relation("next_day").unwrap();
        assert!(r.contains(&[32], &[DataValue::sym("alpha")]));
        assert!(r.contains(&[54], &[DataValue::sym("beta")]));
        assert!(!r.contains(&[32], &[DataValue::sym("beta")]));
    }

    #[test]
    fn data_constant_filtering() {
        let p = parse_program("dbp[t] <- event[t](alpha).").unwrap();
        let mut db = Database::new();
        db.insert_parsed("event", "(168n+8; alpha)\n(168n+30; beta)")
            .unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let r = eval.relation("dbp").unwrap();
        assert!(r.contains(&[8], &[]));
        assert!(!r.contains(&[30], &[]));
    }

    #[test]
    fn diverging_program_detected() {
        // pair[t1, t2+1] from pair[t1, t2]: the gap between the two
        // arguments grows forever — free extensions stabilize (period 1)
        // but constraints never become safe.
        let p = parse_program("pair[0, 0]. pair[t1, t2 + 1] <- pair[t1, t2].").unwrap();
        let opts = EvalOptions {
            grace_after_fe_safety: 5,
            ..Default::default()
        };
        let eval = evaluate_with(&p, &Database::new(), &opts).unwrap();
        match eval.outcome {
            EvalOutcome::DivergedAfterFeSafety { fe_safe_at, .. } => {
                assert!(fe_safe_at <= 3, "fe_safe_at={fe_safe_at}");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn same_variable_twice_in_one_atom() {
        // diag[t] <- pair[t, t] matched against tuples where T2 = T1 + 2:
        // empty; against T2 = T1: everything even.
        let p = parse_program("diag[t] <- pair[t, t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("pair", "(2n, 2n) : T2 = T1").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let r = eval.relation("diag").unwrap();
        assert!(r.contains(&[0], &[]));
        assert!(r.contains(&[4], &[]));
        assert!(!r.contains(&[1], &[]));

        let p2 = parse_program("diag[t] <- shifted[t, t].").unwrap();
        let mut db2 = Database::new();
        db2.insert_parsed("shifted", "(2n, 2n) : T2 = T1 + 2")
            .unwrap();
        let eval2 = evaluate(&p2, &db2).unwrap();
        assert!(eval2
            .relation("diag")
            .unwrap()
            .is_empty_semantic(DEFAULT_RESIDUE_BUDGET)
            .unwrap());
    }

    #[test]
    fn same_variable_at_different_shifts() {
        // Regression: r[t, t + 2] against a tuple with T2 = T1 + 2 must
        // match (x_i − x_j = s_i − s_j; the sign matters).
        let p = parse_program("ok[t] <- r[t, t + 2]. no[t] <- r[t, t + 3].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("r", "(5n+1, 5n+3) : T2 = T1 + 2, T1 >= 0")
            .unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let ok = eval.relation("ok").unwrap();
        assert!(ok.contains(&[1], &[]));
        assert!(ok.contains(&[6], &[]));
        assert!(!ok.contains(&[2], &[]));
        assert!(eval
            .relation("no")
            .unwrap()
            .is_empty_semantic(DEFAULT_RESIDUE_BUDGET)
            .unwrap());
    }

    #[test]
    fn stratified_negation_complement() {
        // gap[t] holds exactly where service does not.
        let p = parse_program(
            "service[t] <- sched[t]. service[t + 12] <- service[t].
             gap[t] <- !service[t].",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_parsed("sched", "(24n)\n(24n+3)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        assert!(eval.outcome.converged(), "{:?}", eval.outcome);
        let service = eval.relation("service").unwrap();
        let gap = eval.relation("gap").unwrap();
        for t in -60..60i64 {
            let on = t.rem_euclid(12) == 0 || t.rem_euclid(12) == 3;
            assert_eq!(service.contains(&[t], &[]), on, "service t={t}");
            assert_eq!(gap.contains(&[t], &[]), !on, "gap t={t}");
        }
    }

    #[test]
    fn negation_with_positive_join() {
        // Risky departures: trains with no connecting return within 10.
        let p = parse_program("risky[t] <- dep[t], !ret[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("dep", "(10n)").unwrap();
        db.insert_parsed("ret", "(20n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let risky = eval.relation("risky").unwrap();
        for t in -60..60i64 {
            assert_eq!(risky.contains(&[t], &[]), t.rem_euclid(20) == 10, "t={t}");
        }
    }

    #[test]
    fn negation_with_data_binding() {
        let p = parse_program("unserved[t](C) <- request[t](C), !served[t](C).").unwrap();
        let mut db = Database::new();
        db.insert_parsed("request", "(6n; a)\n(6n; b)").unwrap();
        db.insert_parsed("served", "(6n; a)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let u = eval.relation("unserved").unwrap();
        assert!(!u.contains(&[0], &[DataValue::sym("a")]));
        assert!(u.contains(&[0], &[DataValue::sym("b")]));
        assert!(u.contains(&[12], &[DataValue::sym("b")]));
    }

    #[test]
    fn negation_with_constraints_and_shifts() {
        // t is "quiet" when no event occurs in the *next* instant.
        let p = parse_program("quiet[t] <- tick[t], !event[t + 1].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("tick", "(n)").unwrap();
        db.insert_parsed("event", "(4n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        let q = eval.relation("quiet").unwrap();
        for t in -20..20i64 {
            assert_eq!(q.contains(&[t], &[]), (t + 1).rem_euclid(4) != 0, "t={t}");
        }
    }

    #[test]
    fn negation_matches_ground_baseline() {
        let p = parse_program(
            "covered[t] <- base[t]. covered[t + 1] <- base[t].
             gap[t] <- !covered[t].
             double_gap[t1, t2] <- gap[t1], gap[t2], t1 < t2, t2 < t1 + 3.",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_parsed("base", "(4n+1)").unwrap();
        let closed = evaluate(&p, &db).unwrap();
        assert!(closed.outcome.converged());
        let ground = crate::ground::evaluate_ground(&p, &db, -60, 60).unwrap();
        for t in -30..30i64 {
            assert_eq!(
                ground.contains("gap", &[t], &[]),
                closed.relation("gap").unwrap().contains(&[t], &[]),
                "gap t={t}"
            );
            for dt in 1..3i64 {
                assert_eq!(
                    ground.contains("double_gap", &[t, t + dt], &[]),
                    closed
                        .relation("double_gap")
                        .unwrap()
                        .contains(&[t, t + dt], &[]),
                    "double_gap t={t} dt={dt}"
                );
            }
        }
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let p = parse_program("p[t + 1] <- !p[t].").unwrap();
        let e = evaluate(&p, &Database::new()).unwrap_err();
        assert!(e.to_string().contains("negation"), "{e}");
    }

    #[test]
    fn unbound_data_under_negation_rejected() {
        let p = parse_program("p[t] <- e[t], !q[t](X).").unwrap();
        assert!(evaluate(&p, &Database::new()).is_err());
    }

    #[test]
    fn missing_extensional_relation_is_empty() {
        let p = parse_program("p[t] <- absent[t].").unwrap();
        let eval = evaluate(&p, &Database::new()).unwrap();
        assert!(eval.outcome.converged());
        assert!(eval.relation("p").unwrap().is_empty());
    }

    #[test]
    fn mismatched_edb_schema_rejected() {
        let p = parse_program("p[t] <- e[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(2n, 3n)").unwrap(); // arity 2, program says 1
        assert!(matches!(evaluate(&p, &db), Err(Error::SchemaMismatch(_))));
    }

    #[test]
    fn propositional_predicates() {
        // Temporal-arity-0 predicates act as global gates.
        let p = parse_program(
            "flag.
             alert[t] <- flag, e[t].
             silent[t] <- !flag, e[t].",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", "(6n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        assert!(eval.outcome.converged());
        assert!(eval.relation("flag").unwrap().contains(&[], &[]));
        assert!(eval.relation("alert").unwrap().contains(&[6], &[]));
        assert!(eval
            .relation("silent")
            .unwrap()
            .is_empty_semantic(DEFAULT_RESIDUE_BUDGET)
            .unwrap());
    }

    #[test]
    fn zero_arity_everything() {
        // A fully propositional program.
        let p = parse_program("a. b <- a. c <- b, !d.").unwrap();
        let eval = evaluate(&p, &Database::new()).unwrap();
        assert!(eval.outcome.converged());
        assert!(eval.relation("c").unwrap().contains(&[], &[]));
    }

    #[test]
    fn head_constants_work() {
        let p = parse_program("origin[0, 0](here).").unwrap();
        let eval = evaluate(&p, &Database::new()).unwrap();
        let r = eval.relation("origin").unwrap();
        assert!(r.contains(&[0, 0], &[DataValue::sym("here")]));
        assert!(!r.contains(&[0, 1], &[DataValue::sym("here")]));
    }

    #[test]
    fn body_temporal_constants_select() {
        // q holds wherever p holds at time 3 (a yes/no gate): q[t] <- p[3], r[t].
        let p = parse_program("q[t] <- p[3], r[t].").unwrap();
        let mut db = Database::new();
        db.insert_parsed("p", "(5n+3)").unwrap(); // 3 ∈ 5n+3 ✓
        db.insert_parsed("r", "(7n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        assert!(eval.relation("q").unwrap().contains(&[7], &[]));

        let mut db2 = Database::new();
        db2.insert_parsed("p", "(5n+4)").unwrap(); // 3 ∉ 5n+4 → gate closed
        db2.insert_parsed("r", "(7n)").unwrap();
        let eval2 = evaluate(&p, &db2).unwrap();
        assert!(eval2
            .relation("q")
            .unwrap()
            .is_empty_semantic(DEFAULT_RESIDUE_BUDGET)
            .unwrap());
    }

    #[test]
    fn stats_are_populated_and_index_matches_naive() {
        let p = example_4_1();
        let db = course_db();
        let indexed = evaluate(&p, &db).unwrap();
        let s = &indexed.stats;
        assert_eq!(s.tuples_inserted, 7, "{s:?}");
        assert!(s.tuples_derived >= s.tuples_inserted + s.tuples_subsumed);
        assert!(s.tuples_subsumed > 0, "{s:?}");
        assert!(s.counters.subsumption_checks > 0, "{s:?}");
        assert_eq!(s.strata.len(), 1);
        assert_eq!(s.strata[0].iterations, 8);
        assert!(s.strata[0].preds.contains(&"problems".to_string()));
        assert_eq!(s.strata[0].inserted, 7);

        let naive = evaluate_with(
            &p,
            &db,
            &EvalOptions {
                use_index: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(naive.outcome.converged());
        assert!(indexed
            .relation("problems")
            .unwrap()
            .equivalent(naive.relation("problems").unwrap(), DEFAULT_RESIDUE_BUDGET)
            .unwrap());

        let txt = indexed.stats.to_string();
        assert!(txt.contains("tuples derived: "), "{txt}");
        assert!(txt.contains("subsumption checks: "), "{txt}");
        assert!(
            txt.contains("stratum 0 (problems): 8 iteration(s)"),
            "{txt}"
        );
        // Durations render human-friendly (satellite of the observability
        // PR): `1.234ms` / `45.6µs`, never the Debug form.
        assert!(
            txt.ends_with(&format!("elapsed: {}", itdb_trace::fmt_duration(s.elapsed))),
            "{txt}"
        );
        let json = s.to_json();
        let v = itdb_trace::json::parse(&json).expect("stats JSON parses");
        assert_eq!(
            v.get("tuples_inserted").and_then(|x| x.as_f64()),
            Some(7.0),
            "{json}"
        );
        assert_eq!(
            v.get("strata").and_then(|x| x.as_array()).map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn index_narrows_data_constant_matching() {
        // The body atom's data term is ground, so the matcher consults the
        // index bucket for `alpha` instead of scanning both EDB tuples.
        let p = parse_program("dbp[t] <- event[t](alpha).").unwrap();
        let mut db = Database::new();
        db.insert_parsed("event", "(168n+8; alpha)\n(168n+30; beta)")
            .unwrap();
        let eval = evaluate(&p, &db).unwrap();
        assert!(eval.relation("dbp").unwrap().contains(&[8], &[]));
        let c = &eval.stats.counters;
        assert!(c.index_scanned_naive > 0, "{c:?}");
        assert!(c.index_candidates < c.index_scanned_naive, "{c:?}");
    }

    #[test]
    fn negation_with_data_binding_agrees_with_naive_scan() {
        let p = parse_program("unserved[t](C) <- request[t](C), !served[t](C).").unwrap();
        let mut db = Database::new();
        db.insert_parsed("request", "(6n; a)\n(6n; b)").unwrap();
        db.insert_parsed("served", "(6n; a)").unwrap();
        let indexed = evaluate(&p, &db).unwrap();
        let naive = evaluate_with(
            &p,
            &db,
            &EvalOptions {
                use_index: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(indexed
            .relation("unserved")
            .unwrap()
            .equivalent(naive.relation("unserved").unwrap(), DEFAULT_RESIDUE_BUDGET)
            .unwrap());
    }

    #[test]
    fn mutual_recursion_over_periodic_edb_converges() {
        // tick alternates phase against a periodic clock: mutual recursion
        // whose generalized evaluation wraps modulo the EDB period.
        let p = parse_program("odd[t + 1] <- even[t]. even[t + 1] <- odd[t]. even[t] <- clock[t].")
            .unwrap();
        let mut db = Database::new();
        db.insert_parsed("clock", "(4n)").unwrap();
        let eval = evaluate(&p, &db).unwrap();
        assert!(eval.outcome.converged(), "{:?}", eval.outcome);
        let even = eval.relation("even").unwrap();
        let odd = eval.relation("odd").unwrap();
        for t in -10..10 {
            assert_eq!(even.contains(&[t], &[]), t.rem_euclid(2) == 0, "even t={t}");
            assert_eq!(odd.contains(&[t], &[]), t.rem_euclid(2) == 1, "odd t={t}");
        }
    }
}
