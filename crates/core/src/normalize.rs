//! Normalization into *generalized programs* (§4.3).
//!
//! The paper prescribes two transformations before generalized-tuple
//! evaluation:
//!
//! 1. **Constant elimination** — every integer constant `c` in a temporal
//!    position becomes a fresh variable `u` with the constraint `u = c`
//!    (recall a constant is just the lrp `n` constrained to `c`);
//! 2. **Head normalization** — the head's temporal parameters become
//!    *distinct fresh variables*, with equalities to the original terms
//!    pushed into the body.
//!
//! The result is a [`NormClause`]: a head over distinct temporal variables,
//! body atoms whose temporal arguments are pure `variable + shift` pairs,
//! and a separate list of constraint atoms over clause variables. The
//! evaluation engine consumes only this form.

use crate::ast::{Atom, BodyAtom, Clause, CmpOp, DataTerm, Program, TemporalTerm};
use itdb_lrp::Result;
use std::collections::HashMap;

/// A temporal argument in normalized form: clause variable + shift.
pub type VarShift = (usize, i64);

/// A normalized predicate atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormAtom {
    /// Predicate symbol.
    pub pred: String,
    /// Temporal arguments as `(variable, shift)` pairs.
    pub temporal: Vec<VarShift>,
    /// Data arguments (variables by name, or constants).
    pub data: Vec<DataTerm>,
}

/// A normalized constraint over clause variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormConstraint {
    /// `(v₁ + c₁) op (v₂ + c₂)`.
    VarVar(VarShift, CmpOp, VarShift),
    /// `(v + c₁) op k`.
    VarConst(VarShift, CmpOp, i64),
}

/// A clause in generalized-program form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormClause {
    /// Index of the source clause in the program, stable across the
    /// engine's dead-clause filtering — the rule identity used by trace
    /// events, derivation provenance, and profile labels.
    pub idx: usize,
    /// Head predicate.
    pub head_pred: String,
    /// Number of temporal variables in the clause (ids `0..n_tvars`).
    pub n_tvars: usize,
    /// Head temporal parameters: distinct variable ids, in head order.
    pub head_tvars: Vec<usize>,
    /// Head data parameters.
    pub head_data: Vec<DataTerm>,
    /// Positive body predicate atoms.
    pub body: Vec<NormAtom>,
    /// Negated body predicate atoms (stratified negation).
    pub neg_body: Vec<NormAtom>,
    /// Constraint atoms (from the source plus those introduced by
    /// normalization).
    pub constraints: Vec<NormConstraint>,
    /// True when a constant-only constraint was statically false, making the
    /// clause vacuous.
    pub dead: bool,
    /// Human-readable names of the clause variables (fresh ones get
    /// synthesized names), for diagnostics.
    pub var_names: Vec<String>,
}

impl NormClause {
    /// Temporal arity of the head.
    pub fn head_temporal_arity(&self) -> usize {
        self.head_tvars.len()
    }

    /// Indices (into `body`) of atoms whose predicate is in `preds`.
    pub fn body_positions_of(&self, preds: &[&str]) -> Vec<usize> {
        self.body
            .iter()
            .enumerate()
            .filter(|(_, a)| preds.contains(&a.pred.as_str()))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Normalizes a whole program. Each clause keeps its source index in
/// [`NormClause::idx`].
pub fn normalize_program(p: &Program) -> Result<Vec<NormClause>> {
    p.clauses
        .iter()
        .enumerate()
        .map(|(idx, c)| {
            let mut n = normalize_clause(c)?;
            n.idx = idx;
            Ok(n)
        })
        .collect()
}

/// Normalizes a single clause. See the module documentation.
pub fn normalize_clause(c: &Clause) -> Result<NormClause> {
    let mut ctx = Ctx::default();

    // Body predicate atoms first, so source variables keep their ids stable
    // with respect to the body that binds them.
    let mut body = Vec::new();
    let mut neg_body = Vec::new();
    let mut constraints = Vec::new();
    let mut dead = false;
    for b in &c.body {
        match b {
            BodyAtom::Pred(a) => body.push(ctx.norm_atom(a, &mut constraints)),
            BodyAtom::Neg(a) => neg_body.push(ctx.norm_atom(a, &mut constraints)),
            BodyAtom::Constraint(ca) => {
                match (ctx.term(&ca.lhs), ctx.term(&ca.rhs)) {
                    (Term::Var(l), Term::Var(r)) => {
                        constraints.push(NormConstraint::VarVar(l, ca.op, r));
                    }
                    (Term::Var(l), Term::Const(k)) => {
                        constraints.push(NormConstraint::VarConst(l, ca.op, k));
                    }
                    (Term::Const(k), Term::Var(r)) => {
                        // Flip `k op (v+c)` into `(v+c) op' k`.
                        let flipped = match ca.op {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Eq => CmpOp::Eq,
                            CmpOp::Ge => CmpOp::Le,
                            CmpOp::Gt => CmpOp::Lt,
                        };
                        constraints.push(NormConstraint::VarConst(r, flipped, k));
                    }
                    (Term::Const(a), Term::Const(b)) => {
                        let holds = match ca.op {
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Eq => a == b,
                            CmpOp::Ge => a >= b,
                            CmpOp::Gt => a > b,
                        };
                        if !holds {
                            dead = true;
                        }
                    }
                }
            }
        }
    }

    // Head: one fresh distinct variable per temporal position, tied to the
    // source term by an equality constraint.
    let mut head_tvars = Vec::with_capacity(c.head.temporal.len());
    for t in &c.head.temporal {
        let h = ctx.fresh("h");
        match ctx.term(t) {
            Term::Var((v, off)) => {
                constraints.push(NormConstraint::VarVar((h, 0), CmpOp::Eq, (v, off)));
            }
            Term::Const(k) => {
                constraints.push(NormConstraint::VarConst((h, 0), CmpOp::Eq, k));
            }
        }
        head_tvars.push(h);
    }

    Ok(NormClause {
        idx: 0,
        head_pred: c.head.pred.clone(),
        n_tvars: ctx.names.len(),
        head_tvars,
        head_data: c.head.data.clone(),
        body,
        neg_body,
        constraints,
        dead,
        var_names: ctx.names,
    })
}

enum Term {
    Var(VarShift),
    Const(i64),
}

#[derive(Default)]
struct Ctx {
    ids: HashMap<String, usize>,
    names: Vec<String>,
}

impl Ctx {
    fn var(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    fn fresh(&mut self, prefix: &str) -> usize {
        let id = self.names.len();
        let name = format!("_{prefix}{id}");
        self.ids.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    fn term(&mut self, t: &TemporalTerm) -> Term {
        match t {
            TemporalTerm::Var { name, offset } => Term::Var((self.var(name), *offset)),
            TemporalTerm::Const(c) => Term::Const(*c),
        }
    }

    fn norm_atom(&mut self, a: &Atom, constraints: &mut Vec<NormConstraint>) -> NormAtom {
        let temporal = a
            .temporal
            .iter()
            .map(|t| match self.term(t) {
                Term::Var(vs) => vs,
                Term::Const(k) => {
                    // Constant elimination: fresh variable pinned to k.
                    let u = self.fresh("c");
                    constraints.push(NormConstraint::VarConst((u, 0), CmpOp::Eq, k));
                    (u, 0)
                }
            })
            .collect();
        NormAtom {
            pred: a.pred.clone(),
            temporal,
            data: a.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_clause, parse_program};

    #[test]
    fn head_variables_become_distinct_and_fresh() {
        let c = parse_clause("p[t + 2, t](a) <- q[t].").unwrap();
        let n = normalize_clause(&c).unwrap();
        assert_eq!(n.head_tvars.len(), 2);
        assert_ne!(n.head_tvars[0], n.head_tvars[1]);
        // t is var 0 (bound in the body); heads are fresh.
        assert!(n.head_tvars.iter().all(|&h| h != 0));
        // Two equality constraints tie the heads back: h1 = t + 2, h2 = t.
        let eqs: Vec<_> = n
            .constraints
            .iter()
            .filter(|c| matches!(c, NormConstraint::VarVar(_, CmpOp::Eq, _)))
            .collect();
        assert_eq!(eqs.len(), 2);
    }

    #[test]
    fn body_constants_eliminated() {
        let c = parse_clause("p[t] <- q[5, t].").unwrap();
        let n = normalize_clause(&c).unwrap();
        let q = &n.body[0];
        // Both positions are variable+shift now.
        assert_eq!(q.temporal.len(), 2);
        let pinned = q.temporal[0].0;
        assert!(n.constraints.iter().any(|c| matches!(
            c,
            NormConstraint::VarConst((v, 0), CmpOp::Eq, 5) if *v == pinned
        )));
    }

    #[test]
    fn head_constant_becomes_constraint() {
        let c = parse_clause("p[0].").unwrap();
        let n = normalize_clause(&c).unwrap();
        assert_eq!(n.head_tvars.len(), 1);
        assert!(matches!(
            n.constraints[0],
            NormConstraint::VarConst((_, 0), CmpOp::Eq, 0)
        ));
        assert!(n.body.is_empty());
        assert!(!n.dead);
    }

    #[test]
    fn constraint_shapes() {
        let c = parse_clause("p[t] <- q[s], t < s + 3, 0 <= t, t = 7.").unwrap();
        let n = normalize_clause(&c).unwrap();
        // t < s + 3 stays var/var; 0 <= t flips to t >= 0; t = 7 var/const.
        assert!(n
            .constraints
            .iter()
            .any(|c| matches!(c, NormConstraint::VarVar(_, CmpOp::Lt, _))));
        assert!(n
            .constraints
            .iter()
            .any(|c| matches!(c, NormConstraint::VarConst(_, CmpOp::Ge, 0))));
        assert!(n
            .constraints
            .iter()
            .any(|c| matches!(c, NormConstraint::VarConst(_, CmpOp::Eq, 7))));
    }

    #[test]
    fn static_constant_constraints() {
        let n = normalize_clause(&parse_clause("p[t] <- q[t], 3 < 2.").unwrap()).unwrap();
        assert!(n.dead);
        let n = normalize_clause(&parse_clause("p[t] <- q[t], 2 < 3.").unwrap()).unwrap();
        assert!(!n.dead);
        // The true constraint vanishes entirely.
        assert_eq!(
            n.constraints
                .iter()
                .filter(|c| matches!(c, NormConstraint::VarConst(..)))
                .count(),
            0
        );
    }

    #[test]
    fn shifts_preserved_in_body() {
        let c = parse_clause("p[t] <- q[t - 5, t + 3].").unwrap();
        let n = normalize_clause(&c).unwrap();
        assert_eq!(n.body[0].temporal, vec![(0, -5), (0, 3)]);
    }

    #[test]
    fn whole_program_normalizes() {
        let p = parse_program(
            "problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
             problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        )
        .unwrap();
        let ns = normalize_program(&p).unwrap();
        assert_eq!(ns.len(), 2);
        for n in &ns {
            assert_eq!(n.head_pred, "problems");
            assert_eq!(n.head_temporal_arity(), 2);
            assert_eq!(n.body.len(), 1);
            assert_eq!(n.head_data, vec![DataTerm::Var("C".into())]);
        }
        assert_eq!(ns[1].body_positions_of(&["problems"]), vec![0]);
        assert!(ns[0].body_positions_of(&["problems"]).is_empty());
    }

    #[test]
    fn var_names_track_sources() {
        let c = parse_clause("p[u + 1] <- q[u, w].").unwrap();
        let n = normalize_clause(&c).unwrap();
        assert_eq!(n.var_names[0], "u");
        assert_eq!(n.var_names[1], "w");
        assert!(n.var_names[2].starts_with('_'));
        assert_eq!(n.n_tvars, 3);
    }
}
