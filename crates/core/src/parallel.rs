//! Sharded parallel rule firing for the `T_GP` fixpoint (the derive phase
//! of one iteration, fanned across a worker pool).
//!
//! The refactoring contract with [`crate::engine`]: firing the stratum's
//! clauses against an **immutable snapshot** (current IDB, delta frontier,
//! and EDB) is a pure function of `(task, snapshot)` — workers only read
//! the snapshot and accumulate derived tuples into private buffers. The merge
//! phase (canonicalization, `insert_if_new` subsumption, free-extension
//! bookkeeping, governor fuel) stays on the coordinator thread, so the
//! canonical-form invariants of [`itdb_lrp::GeneralizedRelation`] remain
//! single-writer.
//!
//! # Determinism: byte-identical to sequential evaluation
//!
//! A task is `(clause, delta position, contiguous level-0 candidate
//! range)`, in the exact order the sequential engine fires them: clauses
//! in stratum order, delta positions in body order, chunks ascending. The
//! clause matcher's emission order is lexicographic in its DFS candidate
//! lists with the level-0 list outermost, so restricting level 0 to a
//! contiguous range `[lo, hi)` yields exactly the emissions whose
//! outermost candidate index falls in the range, in their original
//! relative order — and concatenating the per-task buffers in task order
//! reconstructs the sequential emission order **for any worker count**.
//! The coordinator's merge then performs identical inserts in an identical
//! order, making `--parallel N` models byte-identical to `--parallel 1`.
//!
//! On semi-naive passes the level-0 list at delta position 0 *is* the
//! delta partition (the common case for recursions); for other positions
//! and for naive/first-iteration passes it is the full body-0 relation.
//! Contiguous ranges are used instead of index-bucket keys because they
//! preserve emission order under any chunking — data-vector buckets would
//! balance equally well but interleave emissions nondeterministically.
//!
//! # Barriers, trips, and folds
//!
//! Workers are joined (a rendezvous barrier) before the merge phase of
//! every iteration; stratum boundaries are therefore barriers too, and
//! every checkpoint site in the engine sits at such a barrier — resume
//! semantics are unchanged. Each worker installs the shared [`Governor`]
//! as its thread's ambient governor, so deadline/cancellation/fuel checks
//! deep inside zone algebra trip cooperatively across the pool. A task
//! error abandons the whole iteration exactly like a sequential
//! mid-derivation trip: the model at the barrier is the last completed
//! iteration's, so interrupted parallel runs match interrupted sequential
//! runs at the same barrier.
//!
//! Per-worker observability folds at the same barrier: thread-local
//! [`itdb_lrp::stats`] counters are scoped per worker with
//! [`itdb_lrp::stats::take`] (shedding any residue a previous task left on
//! a reused thread) and folded into the evaluation's counters with `+=`;
//! worker span stacks/profiles fold via [`itdb_trace::absorb_profile`];
//! worker-side trace events (index lookups, rule spans) are captured in a
//! per-worker memory sink and re-emitted to the coordinator's sinks in
//! worker order.

// Worker-pool code runs on the user-reachable evaluation path: failures
// must flow through the error taxonomy, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::analyze::ProgramInfo;
use crate::db::Database;
use crate::engine::{eval_clause, Pending};
use crate::normalize::NormClause;
use itdb_lrp::{stats::Counters, Error, GeneralizedRelation, Governor, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The immutable snapshot one derive phase fires against, plus the knobs
/// workers need. Everything here is shared read-only across the pool.
pub(crate) struct DeriveCtx<'a> {
    /// The stratum's clauses, in firing order.
    pub clauses: &'a [&'a NormClause],
    /// Predicates defined in this stratum (delta-position detection).
    pub stratum_preds: &'a [&'a str],
    /// Current IDB snapshot (read-only until the merge).
    pub idb: &'a BTreeMap<String, GeneralizedRelation>,
    /// Semi-naive delta frontier from the previous iteration.
    pub delta: &'a BTreeMap<String, GeneralizedRelation>,
    /// The extensional database.
    pub edb: &'a Database,
    /// Empty relation per predicate (missing-relation fallback).
    pub empty: &'a BTreeMap<String, GeneralizedRelation>,
    /// Program analysis (intensional set).
    pub info: &'a ProgramInfo,
    /// One label per source clause, for worker-side rule spans.
    pub rule_labels: &'a [String],
    /// Is this a semi-naive pass (stratum iteration > 1)?
    pub seminaive_pass: bool,
    /// Residue budget for exact zone operations.
    pub residue_budget: u64,
    /// Consult the data-vector index when matching.
    pub use_index: bool,
    /// Clone matched source facts into every emission.
    pub collect_sources: bool,
}

/// One unit of parallel work: fire `clause` with the delta substituted at
/// `dpos` (if any), restricted to the contiguous `chunk` of the level-0
/// candidate list (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FireTask {
    /// Index into [`DeriveCtx::clauses`].
    pub clause_pos: usize,
    /// Body position reading the delta (`None` on naive/first passes).
    pub dpos: Option<usize>,
    /// Contiguous `[lo, hi)` range of the level-0 candidate list; `None`
    /// fires the whole clause (empty bodies, tiny candidate lists).
    pub chunk: Option<(usize, usize)>,
}

impl<'a> DeriveCtx<'a> {
    /// The relation body position `i` reads under this task's delta
    /// substitution — the exact logic of the sequential engine's `rel_for`
    /// closures.
    fn rel_for(
        &self,
        clause: &'a NormClause,
        dpos: Option<usize>,
        i: usize,
    ) -> &'a GeneralizedRelation {
        let pred = clause.body[i].pred.as_str();
        if dpos == Some(i) {
            self.delta.get(pred).unwrap_or(&self.empty[pred])
        } else if self.info.intensional.contains(pred) {
            &self.idb[pred]
        } else {
            self.edb.get(pred).unwrap_or(&self.empty[pred])
        }
    }

    /// Relations for a clause's negated atoms (stable inputs).
    fn neg_rels(&self, clause: &'a NormClause) -> Vec<&'a GeneralizedRelation> {
        clause
            .neg_body
            .iter()
            .map(|a| {
                if self.info.intensional.contains(&a.pred) {
                    &self.idb[&a.pred]
                } else {
                    self.edb.get(&a.pred).unwrap_or(&self.empty[&a.pred])
                }
            })
            .collect()
    }

    /// Length of the level-0 candidate list the matcher will iterate for
    /// this `(clause, dpos)` unit. Mirrors the matcher's own candidate
    /// selection (index bucket when body-0's data terms are all ground
    /// with no bindings yet, i.e. all constants; full relation otherwise)
    /// without recording an index-lookup observation.
    fn level0_len(&self, clause: &'a NormClause, dpos: Option<usize>) -> usize {
        let atom = &clause.body[0];
        let rel = self.rel_for(clause, dpos, 0);
        let all_const = !atom.data.is_empty()
            && atom
                .data
                .iter()
                .all(|t| matches!(t, crate::ast::DataTerm::Const(_)));
        if self.use_index && all_const {
            let key: Vec<itdb_lrp::DataValue> = atom
                .data
                .iter()
                .filter_map(|t| match t {
                    crate::ast::DataTerm::Const(c) => Some(c.clone()),
                    crate::ast::DataTerm::Var(_) => None,
                })
                .collect();
            rel.candidates_len(&key)
        } else {
            rel.len()
        }
    }
}

/// Plans the task list for one derive phase, in sequential firing order:
/// clauses in stratum order, delta positions in body order, chunks
/// ascending. Each `(clause, dpos)` unit splits its level-0 candidate
/// list into at most `workers` near-equal contiguous chunks.
pub(crate) fn plan_tasks(ctx: &DeriveCtx<'_>, workers: usize) -> Vec<FireTask> {
    let mut tasks = Vec::new();
    for (clause_pos, clause) in ctx.clauses.iter().enumerate() {
        if ctx.seminaive_pass {
            let idb_positions = clause.body_positions_of(ctx.stratum_preds);
            if idb_positions.is_empty() {
                continue; // stable-input-only clauses cannot fire anew
            }
            for &dpos in &idb_positions {
                push_unit(ctx, &mut tasks, clause_pos, clause, Some(dpos), workers);
            }
        } else {
            push_unit(ctx, &mut tasks, clause_pos, clause, None, workers);
        }
    }
    tasks
}

/// Pushes the task(s) for one `(clause, dpos)` firing unit.
fn push_unit(
    ctx: &DeriveCtx<'_>,
    tasks: &mut Vec<FireTask>,
    clause_pos: usize,
    clause: &NormClause,
    dpos: Option<usize>,
    workers: usize,
) {
    if clause.body.is_empty() {
        tasks.push(FireTask {
            clause_pos,
            dpos,
            chunk: None,
        });
        return;
    }
    let len = ctx.level0_len(clause, dpos);
    let chunks = workers.min(len).max(1);
    if chunks <= 1 {
        tasks.push(FireTask {
            clause_pos,
            dpos,
            chunk: None,
        });
        return;
    }
    let base = len / chunks;
    let rem = len % chunks;
    let mut lo = 0usize;
    for c in 0..chunks {
        let size = base + usize::from(c < rem);
        tasks.push(FireTask {
            clause_pos,
            dpos,
            chunk: Some((lo, lo + size)),
        });
        lo += size;
    }
}

/// Fires one task against the snapshot: a pure function of
/// `(task, snapshot)` returning its private buffer of derived tuples.
fn run_task(ctx: &DeriveCtx<'_>, task: &FireTask) -> Result<Vec<Pending>> {
    let clause = ctx.clauses[task.clause_pos];
    let _rule_span = itdb_trace::span_with(itdb_trace::SpanKind::Rule, || {
        ctx.rule_labels
            .get(clause.idx)
            .cloned()
            .unwrap_or_else(|| format!("r{}", clause.idx))
    });
    let neg_rels = ctx.neg_rels(clause);
    let rel_for = |i: usize| -> &GeneralizedRelation { ctx.rel_for(clause, task.dpos, i) };
    let mut out = Vec::new();
    eval_clause(
        clause,
        &rel_for,
        &neg_rels,
        ctx.residue_budget,
        ctx.use_index,
        ctx.collect_sources,
        task.chunk,
        &mut |t, sources| {
            out.push(Pending {
                pred: clause.head_pred.clone(),
                rule: clause.idx,
                tuple: t,
                sources,
            })
        },
    )?;
    Ok(out)
}

/// Runs one derive phase across `workers` pooled threads and returns the
/// derived tuples in sequential emission order (see the module docs).
///
/// The scoped-thread join at the end is the rendezvous barrier: when this
/// function returns, every worker has finished (or abandoned) its tasks,
/// all observability folds have landed on the coordinator thread, and the
/// snapshot borrows are released so the merge phase may mutate the IDB.
/// Errors surface as the first failed task in task order; the caller
/// abandons the iteration exactly as it would a sequential mid-derivation
/// trip.
pub(crate) fn derive_parallel(
    ctx: &DeriveCtx<'_>,
    workers: usize,
    governor: &Arc<Governor>,
    worker_counters: &mut Counters,
) -> Result<Vec<Pending>> {
    let tasks = plan_tasks(ctx, workers);
    if tasks.is_empty() {
        return Ok(Vec::new());
    }
    let pool = workers.min(tasks.len()).max(1);
    // Coordinator-side observability decisions, captured before the fan-out
    // (sinks and profiling flags are thread-local).
    let fold_trace = itdb_trace::enabled();
    let fold_profile = itdb_trace::profiling();
    // The request id is thread-local too: hand the coordinator's to every
    // worker so events built inside the pool carry it directly (the
    // re-emission at the fold below would restamp them anyway, but sinks
    // installed *on* a worker — e.g. a flight ring — see the id live).
    let request_id = itdb_trace::current_request_id();

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Vec<OnceLock<Result<Vec<Pending>>>> =
        (0..tasks.len()).map(|_| OnceLock::new()).collect();
    let counter_folds: Vec<OnceLock<Counters>> = (0..pool).map(|_| OnceLock::new()).collect();
    let event_folds: Vec<OnceLock<Vec<itdb_trace::Event>>> =
        (0..pool).map(|_| OnceLock::new()).collect();
    let profile_folds: Vec<OnceLock<itdb_trace::Profile>> =
        (0..pool).map(|_| OnceLock::new()).collect();

    std::thread::scope(|s| {
        let worker = |w: usize| {
            // Cooperative governance: the shared governor becomes this
            // thread's ambient governor, so fuel/deadline/cancellation
            // checks deep in zone algebra trip workers too.
            let _gov = governor.enter();
            let _ctx = request_id
                .clone()
                .map(itdb_trace::context::set_request_id_arc);
            // Task-start reset: shed whatever a previous task on a reused
            // pool thread left in the thread-local counters, then collect
            // exactly this worker's delta at the end.
            let _ = itdb_lrp::stats::take();
            let sink = if fold_trace {
                let mem = Arc::new(itdb_trace::MemorySink::new());
                let id = itdb_trace::add_sink(mem.clone());
                Some((mem, id))
            } else {
                None
            };
            if fold_profile {
                itdb_trace::set_profiling(true);
            }
            loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let out = run_task(ctx, &tasks[i]);
                let failed = out.is_err();
                let _ = results[i].set(out);
                if failed {
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
            }
            // Fold hand-off: counters, captured events, span profile.
            let _ = counter_folds[w].set(itdb_lrp::stats::take());
            if let Some((mem, id)) = sink {
                itdb_trace::remove_sink(id);
                let _ = event_folds[w].set(mem.take());
            }
            if fold_profile {
                itdb_trace::set_profiling(false);
                let _ = profile_folds[w].set(itdb_trace::take_profile());
            }
        };
        for w in 0..pool {
            s.spawn(move || worker(w));
        }
    });
    // ── barrier: every worker joined; snapshot borrows are back with us ──

    for fold in counter_folds {
        if let Some(c) = fold.into_inner() {
            *worker_counters += c;
        }
    }
    for fold in event_folds {
        for ev in fold.into_inner().into_iter().flatten() {
            itdb_trace::emit(|| ev.kind);
        }
    }
    for fold in profile_folds {
        if let Some(p) = fold.into_inner() {
            itdb_trace::absorb_profile(p);
        }
    }

    let mut derived = Vec::new();
    for slot in results {
        match slot.into_inner() {
            Some(Ok(mut buf)) => derived.append(&mut buf),
            // First failed task in task order decides, like the sequential
            // engine stopping at the clause that tripped.
            Some(Err(e)) => return Err(e),
            // Tasks are claimed in index order, so unclaimed slots form a
            // suffix behind an abort; reaching one without having seen the
            // error that caused it is an internal inconsistency.
            None => {
                return Err(Error::Eval(
                    "internal: parallel task abandoned without a recorded error".into(),
                ))
            }
        }
    }
    Ok(derived)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::normalize::normalize_program;
    use crate::parser::parse_program;

    /// Chunk ranges must tile `[0, len)` contiguously in order — the
    /// property the byte-identity argument rests on.
    #[test]
    fn chunks_tile_the_candidate_list_in_order() {
        let program = parse_program("p[t + 1](C) <- e[t](C).").unwrap();
        let info = analyze(&program).unwrap();
        let clauses = normalize_program(&program).unwrap();
        let clause_refs: Vec<&NormClause> = clauses.iter().collect();
        let mut db = Database::new();
        let mut text = String::new();
        for k in 0..7 {
            text.push_str(&format!("(6n+{k}; v{k})\n"));
        }
        db.insert_parsed("e", &text).unwrap();
        let idb: BTreeMap<String, GeneralizedRelation> = info
            .intensional
            .iter()
            .map(|p| (p.clone(), GeneralizedRelation::empty(info.signatures[p])))
            .collect();
        let empty: BTreeMap<String, GeneralizedRelation> = info
            .signatures
            .iter()
            .map(|(p, s)| (p.clone(), GeneralizedRelation::empty(*s)))
            .collect();
        let delta = BTreeMap::new();
        let labels = vec!["r0".to_string()];
        let ctx = DeriveCtx {
            clauses: &clause_refs,
            stratum_preds: &["p"],
            idb: &idb,
            delta: &delta,
            edb: &db,
            empty: &empty,
            info: &info,
            rule_labels: &labels,
            seminaive_pass: false,
            residue_budget: itdb_lrp::DEFAULT_RESIDUE_BUDGET,
            use_index: true,
            collect_sources: false,
        };
        for workers in [1usize, 2, 3, 4, 8, 16] {
            let tasks = plan_tasks(&ctx, workers);
            assert!(!tasks.is_empty());
            if workers == 1 {
                assert_eq!(tasks[0].chunk, None);
                continue;
            }
            let mut expect_lo = 0usize;
            for t in &tasks {
                let (lo, hi) = t.chunk.expect("multi-worker units are chunked");
                assert_eq!(lo, expect_lo, "workers={workers}");
                assert!(hi > lo, "non-empty chunk, workers={workers}");
                expect_lo = hi;
            }
            assert_eq!(expect_lo, 7, "chunks tile all 7 candidates");
        }
    }

    /// Stable-input-only clauses are skipped on semi-naive passes, like
    /// the sequential engine's `continue`.
    #[test]
    fn seminaive_planning_skips_non_recursive_clauses() {
        let program = parse_program("p[t + 1] <- e[t]. p[t + 2] <- p[t].").unwrap();
        let info = analyze(&program).unwrap();
        let clauses = normalize_program(&program).unwrap();
        let clause_refs: Vec<&NormClause> = clauses.iter().collect();
        let mut db = Database::new();
        db.insert_parsed("e", "(6n)").unwrap();
        let mut idb: BTreeMap<String, GeneralizedRelation> = info
            .intensional
            .iter()
            .map(|p| (p.clone(), GeneralizedRelation::empty(info.signatures[p])))
            .collect();
        let empty: BTreeMap<String, GeneralizedRelation> = info
            .signatures
            .iter()
            .map(|(p, s)| (p.clone(), GeneralizedRelation::empty(*s)))
            .collect();
        // Seed the delta and IDB with one tuple so the recursive clause has
        // candidates.
        let t =
            itdb_lrp::GeneralizedTuple::build(vec![itdb_lrp::Lrp::new(6, 1).unwrap()], &[], vec![])
                .unwrap();
        idb.get_mut("p").unwrap().insert(t.clone()).unwrap();
        let mut delta = BTreeMap::new();
        let mut drel = GeneralizedRelation::empty(info.signatures["p"]);
        drel.insert(t).unwrap();
        delta.insert("p".to_string(), drel);
        let labels = vec!["r0".to_string(), "r1".to_string()];
        let ctx = DeriveCtx {
            clauses: &clause_refs,
            stratum_preds: &["p"],
            idb: &idb,
            delta: &delta,
            edb: &db,
            empty: &empty,
            info: &info,
            rule_labels: &labels,
            seminaive_pass: true,
            residue_budget: itdb_lrp::DEFAULT_RESIDUE_BUDGET,
            use_index: true,
            collect_sources: false,
        };
        let tasks = plan_tasks(&ctx, 4);
        // Only the recursive clause plans tasks, all against the delta.
        assert!(!tasks.is_empty());
        assert!(tasks.iter().all(|t| t.clause_pos == 1));
        assert!(tasks.iter().all(|t| t.dpos == Some(0)));
    }
}
