//! Fault-injection robustness tests (run with `--features fault`).
//!
//! A [`FaultPlan`] arms the governor to fail deterministically at the N-th
//! budget check, simulating budget exhaustion, arithmetic overflow deep in
//! the algebra, and asynchronous cancellation landing mid-iteration — at
//! *every* possible point, not just the loop boundaries a hand-written test
//! would pick. Whatever the injection point, the engine must return either
//! a sound partial model (`Interrupted`) or a clean error; never a panic,
//! never an unsound tuple.
#![cfg(feature = "fault")]

use itdb_core::{
    evaluate_governed, ground::evaluate_ground, parse_program, Database, EvalOptions, Governor,
    GovernorConfig, TripReason,
};
use itdb_lrp::governor::fault::{FaultKind, FaultPlan};
use itdb_lrp::Error;
use proptest::prelude::*;
use std::sync::Arc;

fn sample_program() -> (itdb_core::Program, Database) {
    let program = parse_program(
        "q[t] <- p[t].
         q[t + 5] <- q[t].
         r[t + 1] <- q[t], p[t].",
    )
    .unwrap();
    let mut db = Database::new();
    db.insert_parsed("p", "(n) : T1 = 0").unwrap();
    (program, db)
}

fn governed_opts() -> EvalOptions {
    EvalOptions {
        grace_after_fe_safety: 4,
        ..Default::default()
    }
}

#[test]
fn injected_cancel_interrupts_with_sound_partial_model() {
    let (program, db) = sample_program();
    let governor = Arc::new(Governor::new(GovernorConfig::default()));
    FaultPlan {
        after_checks: 5,
        kind: FaultKind::Cancel,
    }
    .arm(&governor);
    let eval = evaluate_governed(&program, &db, &governed_opts(), &governor).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    assert_eq!(int.reason, TripReason::Cancelled);
    let ground = evaluate_ground(&program, &db, -100, 100).unwrap();
    for (pred, rel) in &eval.idb {
        for (temporal, data) in rel.enumerate_window(-100, 100) {
            assert!(
                ground.contains(pred, &temporal, &data),
                "{pred} {temporal:?}"
            );
        }
    }
}

#[test]
fn injected_tuple_fuel_exhaustion_degrades_gracefully() {
    let (program, db) = sample_program();
    let governor = Arc::new(Governor::new(GovernorConfig::default()));
    FaultPlan {
        after_checks: 7,
        kind: FaultKind::TupleFuel,
    }
    .arm(&governor);
    let eval = evaluate_governed(&program, &db, &governed_opts(), &governor).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    assert!(
        matches!(int.reason, TripReason::TupleFuelExhausted { .. }),
        "{:?}",
        int.reason
    );
}

#[test]
fn injected_overflow_surfaces_as_a_clean_error() {
    let (program, db) = sample_program();
    let governor = Arc::new(Governor::new(GovernorConfig::default()));
    FaultPlan {
        after_checks: 3,
        kind: FaultKind::Overflow,
    }
    .arm(&governor);
    // Overflow is not a governor trip: it must propagate as an error, not
    // crash and not masquerade as a partial model.
    let err = evaluate_governed(&program, &db, &governed_opts(), &governor).unwrap_err();
    assert_eq!(err, Error::Overflow);
}

#[test]
fn disarmed_plan_restores_normal_operation() {
    let (program, db) = sample_program();
    let governor = Arc::new(Governor::new(GovernorConfig::default()));
    FaultPlan {
        after_checks: 1,
        kind: FaultKind::Overflow,
    }
    .arm(&governor);
    FaultPlan::disarm(&governor);
    let eval = evaluate_governed(&program, &db, &governed_opts(), &governor).unwrap();
    // The sample program diverges; with no fault and no budget the run ends
    // via the engine's own free-extension grace, not an interruption.
    assert!(eval.outcome.interruption().is_none(), "{:?}", eval.outcome);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cancellation landing at *any* governor check — including deep inside
    /// the zone algebra via the ambient checks — never produces an unsound
    /// tuple or a panic.
    #[test]
    fn cancellation_at_any_check_point_is_sound(after_checks in 1u64..400) {
        let (program, db) = sample_program();
        let governor = Arc::new(Governor::new(GovernorConfig::default()));
        FaultPlan { after_checks, kind: FaultKind::Cancel }.arm(&governor);
        let eval = evaluate_governed(&program, &db, &governed_opts(), &governor).unwrap();
        let ground = evaluate_ground(&program, &db, -200, 200).unwrap();
        for (pred, rel) in &eval.idb {
            for (temporal, data) in rel.enumerate_window(-200, 200) {
                prop_assert!(
                    ground.contains(pred, &temporal, &data),
                    "unsound {} at {:?} (injected at check {}, outcome {:?})",
                    pred, temporal, after_checks, eval.outcome
                );
            }
        }
    }

    /// Same guarantee for synthetic fuel exhaustion at arbitrary points.
    #[test]
    fn fuel_exhaustion_at_any_check_point_is_sound(after_checks in 1u64..400) {
        let (program, db) = sample_program();
        let governor = Arc::new(Governor::new(GovernorConfig::default()));
        FaultPlan { after_checks, kind: FaultKind::TupleFuel }.arm(&governor);
        let eval = evaluate_governed(&program, &db, &governed_opts(), &governor).unwrap();
        let ground = evaluate_ground(&program, &db, -200, 200).unwrap();
        for (pred, rel) in &eval.idb {
            for (temporal, data) in rel.enumerate_window(-200, 200) {
                prop_assert!(
                    ground.contains(pred, &temporal, &data),
                    "unsound {} at {:?} (injected at check {})",
                    pred, temporal, after_checks
                );
            }
        }
    }
}
