//! Resource-governance regression tests: genuinely diverging programs must
//! come back with `EvalOutcome::Interrupted` and a *sound, non-empty*
//! partial model instead of running away, under every trip reason (fuel,
//! deadline, cancellation, memory ceiling) — and an interrupted model must
//! never contain a tuple the ground semantics cannot derive.

use itdb_core::{
    evaluate_with, ground::evaluate_ground, parse_program, CancelToken, Completeness, Database,
    EvalOptions, EvalOutcome, TripReason,
};
use proptest::prelude::*;
use std::time::Duration;

/// A point-based successor recursion in the spirit of the paper's
/// `(i, i²)` example: every iteration derives one genuinely new fact and
/// no closed form is ever reached by the fixpoint process alone.
fn diverging_program() -> (itdb_core::Program, Database) {
    let program = parse_program(
        "q[t] <- p[t].
         q[t + 5] <- q[t].",
    )
    .unwrap();
    let mut db = Database::new();
    db.insert_parsed("p", "(n) : T1 = 0").unwrap();
    (program, db)
}

#[test]
fn diverging_recursion_interrupts_under_tuple_fuel() {
    let (program, db) = diverging_program();
    let opts = EvalOptions {
        max_derived_tuples: Some(8),
        // Keep the grace window out of the way so the fuel trip is what
        // ends the run.
        grace_after_fe_safety: 1_000,
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    let int = eval
        .outcome
        .interruption()
        .unwrap_or_else(|| panic!("expected Interrupted, got {:?}", eval.outcome));
    assert!(
        matches!(int.reason, TripReason::TupleFuelExhausted { limit: 8, .. }),
        "{:?}",
        int.reason
    );
    // Graceful degradation: the partial model is non-empty and names the
    // still-growing predicate.
    let q = eval.relation("q").expect("partial model has q");
    assert!(!q.is_empty());
    assert!(q.contains(&[0], &[]));
    assert_eq!(int.growing, vec!["q".to_string()]);
    assert!(int.iterations > 0);
}

#[test]
fn diverging_recursion_interrupts_under_iteration_fuel() {
    let (program, db) = diverging_program();
    let opts = EvalOptions {
        max_iterations: 4,
        grace_after_fe_safety: 1_000,
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    assert!(
        matches!(
            int.reason,
            TripReason::IterationFuelExhausted { used: 4, limit: 4 }
        ),
        "{:?}",
        int.reason
    );
    assert_eq!(int.iterations, 4);
    assert!(!eval.relation("q").unwrap().is_empty());
}

#[test]
fn diverging_recursion_interrupts_under_deadline() {
    let (program, db) = diverging_program();
    let opts = EvalOptions {
        timeout: Some(Duration::from_millis(0)),
        grace_after_fe_safety: 1_000,
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    assert!(
        matches!(int.reason, TripReason::DeadlineExceeded { .. }),
        "{:?}",
        int.reason
    );
}

#[test]
fn diverging_recursion_interrupts_under_memory_ceiling() {
    let (program, db) = diverging_program();
    let opts = EvalOptions {
        max_held_tuples: Some(3),
        grace_after_fe_safety: 1_000,
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    assert!(
        matches!(int.reason, TripReason::MemoryCeiling { limit: 3, .. }),
        "{:?}",
        int.reason
    );
    assert!(!eval.relation("q").unwrap().is_empty());
}

#[test]
fn cancellation_interrupts_and_keeps_model_sound() {
    let (program, db) = diverging_program();
    let token = CancelToken::new();
    token.cancel();
    let opts = EvalOptions {
        cancel: Some(token),
        grace_after_fe_safety: 1_000,
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    assert_eq!(int.reason, TripReason::Cancelled);
    // Cancelled before the first iteration completed: the model may be
    // empty, but whatever is there must be ground-derivable.
    let ground = evaluate_ground(&program, &db, -100, 100).unwrap();
    for (pred, rel) in &eval.idb {
        for (temporal, data) in rel.enumerate_window(-100, 100) {
            assert!(
                ground.contains(pred, &temporal, &data),
                "{pred} {temporal:?}"
            );
        }
    }
}

#[test]
fn interruption_after_fe_safety_is_tagged_free_extension_complete() {
    // The recursion re-derives the same lrp shape with shifted constraints,
    // so free-extension safety (Theorem 4.2) is observed early; a later
    // fuel trip must report `FreeExtensionComplete`, not plain `Partial`.
    let (program, db) = diverging_program();
    let opts = EvalOptions {
        max_derived_tuples: Some(12),
        grace_after_fe_safety: 1_000,
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    match int.completeness {
        Completeness::FreeExtensionComplete { fe_safe_at } => {
            assert!(fe_safe_at <= int.iterations)
        }
        Completeness::Partial => panic!("expected FreeExtensionComplete: {int:?}"),
    }
    assert_eq!(eval.fe_safe_at, Some(2));
}

#[test]
fn immediate_trip_is_plain_partial() {
    let (program, db) = diverging_program();
    let opts = EvalOptions {
        max_iterations: 0,
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    let int = eval.outcome.interruption().expect("interrupted");
    assert_eq!(int.completeness, Completeness::Partial);
    assert_eq!(int.iterations, 0);
}

#[test]
fn converging_programs_are_untouched_by_generous_limits() {
    let program = parse_program(
        "problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).
         problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
    )
    .unwrap();
    let mut db = Database::new();
    db.insert_parsed("course", "(168n+8, 168n+10; database) : T2 = T1 + 2")
        .unwrap();
    let opts = EvalOptions {
        max_derived_tuples: Some(1_000_000),
        timeout: Some(Duration::from_secs(3600)),
        max_held_tuples: Some(1_000_000),
        cancel: Some(CancelToken::new()),
        ..Default::default()
    };
    let eval = evaluate_with(&program, &db, &opts).unwrap();
    assert!(
        matches!(eval.outcome, EvalOutcome::Converged { .. }),
        "{:?}",
        eval.outcome
    );
}

/// The random convergent family of `prop_engine.rs`, reused here to cut
/// evaluations short at arbitrary fuel levels.
#[derive(Debug, Clone)]
struct RandomProgram {
    source: String,
    edb_period: i64,
    edb_offset: i64,
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        proptest::sample::select(vec![6i64, 8, 12]),
        0i64..6,
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 2..5),
    )
        .prop_map(|(period, offset, rules)| {
            let mut src = String::from("p0[t] <- e[t].\n");
            for (i, (kind, a, b)) in rules.iter().enumerate() {
                let (hi, bi) = ((i % 3), ((i + 1) % 3));
                let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
                match kind {
                    0 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}].\n")),
                    1 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}], e[t].\n")),
                    _ => src.push_str(&format!(
                        "p{hi}[t + {hs}] <- p{bi}[t + {bs}], p{}[t].\n",
                        (i + 2) % 3
                    )),
                }
            }
            RandomProgram {
                source: src,
                edb_period: period,
                edb_offset: offset % period,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interrupting the fixpoint at an arbitrary point — any fuel level,
    /// which exercises the same mid-iteration abandonment path as an
    /// asynchronous cancellation — never yields an unsound tuple: the
    /// partial model is always a subset of the ground least model.
    #[test]
    fn interrupted_models_are_sound_under_random_fuel(
        rp in program_strategy(),
        fuel in 0u64..40,
    ) {
        let program = parse_program(&rp.source).unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", &format!("({}n+{})", rp.edb_period, rp.edb_offset)).unwrap();
        let opts = EvalOptions {
            max_derived_tuples: Some(fuel),
            grace_after_fe_safety: 32,
            max_iterations: 2000,
            ..Default::default()
        };
        let eval = evaluate_with(&program, &db, &opts).unwrap();
        let ground = evaluate_ground(&program, &db, -600, 600).unwrap();
        for (pred, rel) in &eval.idb {
            for (temporal, data) in rel.enumerate_window(-60, 60) {
                prop_assert!(
                    ground.contains(pred, &temporal, &data),
                    "{}: unsound {} at {:?} (outcome {:?})",
                    rp.source, pred, temporal, eval.outcome
                );
            }
        }
    }
}
