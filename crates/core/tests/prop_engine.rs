//! Property-based differential testing: the closed-form `T_GP` engine
//! against window-bounded ground evaluation on randomly generated causal
//! programs over periodic EDBs.
//!
//! The generated family (shift-recursions over pure periodic relations)
//! always converges — its generalized tuples coincide with their free
//! extensions, so Theorem 4.2 alone guarantees termination — which makes
//! it a sound random oracle for the engine.

use itdb_core::{evaluate_with, ground::evaluate_ground, parse_program, Database, EvalOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomProgram {
    source: String,
    edb_period: i64,
    edb_offset: i64,
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        2usize..5,                                   // number of rules
        proptest::sample::select(vec![6i64, 8, 12]), // EDB period
        0i64..6,                                     // EDB offset
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 2..5),
    )
        .prop_map(|(_, period, offset, rules)| {
            let mut src = String::from("p0[t] <- e[t].\n");
            for (i, (kind, a, b)) in rules.iter().enumerate() {
                let (hi, bi) = ((i % 3), ((i + 1) % 3));
                // Keep causality: head shift ≥ body shift.
                let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
                match kind {
                    0 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}].\n")),
                    1 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}], e[t].\n")),
                    _ => src.push_str(&format!(
                        "p{hi}[t + {hs}] <- p{bi}[t + {bs}], p{}[t].\n",
                        (i + 2) % 3
                    )),
                }
            }
            RandomProgram {
                source: src,
                edb_period: period,
                edb_offset: offset % period,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_agrees_with_ground(rp in program_strategy()) {
        let program = parse_program(&rp.source).unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", &format!("({}n+{})", rp.edb_period, rp.edb_offset)).unwrap();
        let opts = EvalOptions { grace_after_fe_safety: 32, max_iterations: 2000, ..Default::default() };
        let eval = evaluate_with(&program, &db, &opts).unwrap();
        prop_assert!(eval.outcome.converged(), "{}: {:?}", rp.source, eval.outcome);

        // Ground oracle over a window comfortably larger than any
        // derivation chain: a recursion cycle can gain up to ~18 per loop
        // and needs up to `period` loops to wrap all residue classes, so
        // witnesses can sit hundreds of steps away from the compared
        // region. Compare on a small interior region with a wide margin.
        let ground = evaluate_ground(&program, &db, -600, 600).unwrap();
        for pred in eval.idb.keys() {
            let rel = eval.relation(pred).unwrap();
            for t in -60..60i64 {
                prop_assert_eq!(
                    ground.contains(pred, &[t], &[]),
                    rel.contains(&[t], &[]),
                    "{}: {} at {}", rp.source, pred, t
                );
            }
        }
    }

    /// Naive and semi-naive evaluation compute equivalent models.
    #[test]
    fn naive_equals_seminaive(rp in program_strategy()) {
        let program = parse_program(&rp.source).unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", &format!("({}n+{})", rp.edb_period, rp.edb_offset)).unwrap();
        let semi = evaluate_with(
            &program,
            &db,
            &EvalOptions { grace_after_fe_safety: 32, ..Default::default() },
        )
        .unwrap();
        let naive = evaluate_with(
            &program,
            &db,
            &EvalOptions { seminaive: false, grace_after_fe_safety: 32, ..Default::default() },
        )
        .unwrap();
        for pred in semi.idb.keys() {
            prop_assert!(
                semi.relation(pred)
                    .unwrap()
                    .equivalent(naive.relation(pred).unwrap(), itdb_lrp::DEFAULT_RESIDUE_BUDGET)
                    .unwrap(),
                "{}: {} differs", rp.source, pred
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed evaluation path (data-vector index consulted for
    /// subsumption inserts and clause matching) computes a model
    /// equivalent to the seed's full-scan path. The appended rules carry
    /// data columns so ground-key narrowing actually fires: a bound
    /// variable (`C`), a constant (`a`), and index-backed negation.
    #[test]
    fn indexed_equals_full_scan(rp in program_strategy()) {
        let mut src = rp.source.clone();
        src.push_str(
            "q0[t](C) <- d[t](C), p0[t].\n\
             q1[t] <- d[t + 1](a), p1[t].\n\
             q2[t](C) <- d[t](C), !dropped[t](C).\n",
        );
        let program = parse_program(&src).unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", &format!("({}n+{})", rp.edb_period, rp.edb_offset)).unwrap();
        db.insert_parsed("d", "(6n; a)\n(4n+1; b)").unwrap();
        db.insert_parsed("dropped", "(12n+1; b)").unwrap();
        let base = EvalOptions { grace_after_fe_safety: 32, ..Default::default() };
        let indexed = evaluate_with(&program, &db, &base).unwrap();
        let scan = evaluate_with(
            &program,
            &db,
            &EvalOptions { use_index: false, ..base.clone() },
        )
        .unwrap();
        prop_assert_eq!(
            indexed.outcome.converged(),
            scan.outcome.converged(),
            "{}: outcomes diverged", rp.source
        );
        for pred in indexed.idb.keys() {
            prop_assert!(
                indexed
                    .relation(pred)
                    .unwrap()
                    .equivalent(scan.relation(pred).unwrap(), itdb_lrp::DEFAULT_RESIDUE_BUDGET)
                    .unwrap(),
                "{}: {} differs between indexed and full-scan", rp.source, pred
            );
        }
    }
}
