//! Property-based coverage for the workload line format: valid workloads
//! round-trip through `Workload::to_text`, and an invalid line injected
//! anywhere is always reported — typed, with the exact 1-based line
//! number — never silently skipped.

use itdb_core::service::{parse_workload_typed, WorkloadErrorKind};
use proptest::prelude::*;

/// Per-predicate schemas so generated `tuple` lines never clash:
/// `e` is (t), `d` is (t; datum), `f` is (t1, t2).
fn tuple_line(spec: &(u8, u8, i64, u8)) -> String {
    let (name_idx, period_idx, offset, datum) = spec;
    let period = [6i64, 8, 12][*period_idx as usize];
    let offset = offset % period;
    let c = if *datum == 0 { "a" } else { "b" };
    match name_idx % 3 {
        0 => format!("tuple e ({period}n+{offset})"),
        1 => format!("tuple d ({period}n+{offset}; {c})"),
        _ => format!("tuple f ({period}n+{offset}, {period}n+{})", offset + 1),
    }
}

fn rule_line(spec: &(u8, i64, i64)) -> String {
    let (kind, a, b) = spec;
    let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
    match kind % 3 {
        0 => format!("rule p0[t + {hs}] <- e[t + {bs}]."),
        1 => format!("rule q0[t + {hs}](C) <- d[t + {bs}](C), e[t]."),
        _ => format!("rule p1[t + {hs}] <- e[t + {bs}], p0[t]."),
    }
}

/// A syntactically valid workload assembled from schema-consistent
/// tuple lines, rule lines, comments, and blanks.
fn workload_lines() -> impl Strategy<Value = Vec<String>> {
    (
        proptest::collection::vec((0u8..3, 0u8..3, 0i64..12, 0u8..2), 1..6),
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 0..4),
        0u8..3,
    )
        .prop_map(|(tuples, rules, decor)| {
            let mut lines: Vec<String> = Vec::new();
            if decor == 1 {
                lines.push("# generated workload".to_string());
            }
            lines.extend(tuples.iter().map(tuple_line));
            if decor == 2 {
                lines.push(String::new());
                lines.push("% interlude".to_string());
            }
            lines.extend(rules.iter().map(rule_line));
            lines
        })
}

/// The menu of malformed lines, paired with the error kind each must
/// produce.
fn bad_line(choice: u8) -> (String, fn(&WorkloadErrorKind) -> bool) {
    match choice % 4 {
        0 => (
            "eval p0[t]".to_string(),
            (|k| matches!(k, WorkloadErrorKind::UnknownDirective(d) if d == "eval"))
                as fn(&WorkloadErrorKind) -> bool,
        ),
        1 => ("tuple lonely".to_string(), |k| {
            matches!(k, WorkloadErrorKind::MissingTupleParts)
        }),
        2 => ("tuple e (((".to_string(), |k| {
            matches!(k, WorkloadErrorKind::BadTuple(_))
        }),
        _ => ("rule p0[t] <-".to_string(), |k| {
            matches!(k, WorkloadErrorKind::BadRule(_))
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → render → parse is the identity: same program, and
    /// byte-identical relation contents in the same order.
    #[test]
    fn valid_workloads_round_trip(lines in workload_lines()) {
        let text = lines.join("\n");
        let w1 = parse_workload_typed(&text).map_err(|e| {
            TestCaseError::Fail(format!("generated workload must parse: {e}\n{text}"))
        })?;
        let rendered = w1.to_text();
        let w2 = parse_workload_typed(&rendered).map_err(|e| {
            TestCaseError::Fail(format!("rendered workload must re-parse: {e}\n{rendered}"))
        })?;
        prop_assert_eq!(&w1.program, &w2.program, "programs agree\n{}", rendered);
        let names1: Vec<&str> = w1.edb.iter().map(|(n, _)| n).collect();
        let names2: Vec<&str> = w2.edb.iter().map(|(n, _)| n).collect();
        prop_assert_eq!(names1, names2, "relation names agree");
        for (name, rel) in w1.edb.iter() {
            let other = w2.edb.get(name).ok_or_else(|| {
                TestCaseError::Fail(format!("relation {name} survives the round-trip"))
            })?;
            prop_assert_eq!(
                rel.tuples(), other.tuples(),
                "{}: tuples must be byte-identical after round-trip", name
            );
        }
        // And the render itself is a fixed point.
        prop_assert_eq!(rendered.clone(), w2.to_text(), "to_text is idempotent");
    }

    /// An invalid line injected at any position is reported with exactly
    /// that 1-based line number and the matching typed reason.
    #[test]
    fn invalid_lines_are_always_reported(
        lines in workload_lines(),
        pos_seed in 0usize..64,
        choice in 0u8..4,
    ) {
        let (bad, kind_matches) = bad_line(choice);
        let pos = pos_seed % (lines.len() + 1);
        let mut with_bad = lines.clone();
        with_bad.insert(pos, bad.clone());
        let text = with_bad.join("\n");
        let err = match parse_workload_typed(&text) {
            Ok(_) => return Err(TestCaseError::Fail(format!(
                "malformed line `{bad}` must be rejected\n{text}"
            ))),
            Err(e) => e,
        };
        prop_assert_eq!(
            err.line, pos + 1,
            "error points at the injected line: {} in\n{}", err, text
        );
        prop_assert!(
            kind_matches(&err.kind),
            "typed reason matches the injected defect: got {:?} for `{}`", err.kind, bad
        );
        // The flattened Display keeps the historical shape downstream
        // log-scrapers match on.
        prop_assert!(
            err.to_string().starts_with(&format!("workload line {}: ", pos + 1)),
            "display format: {}", err
        );
    }
}
