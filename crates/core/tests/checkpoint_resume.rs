//! Resume equivalence: trip → checkpoint → resume must reach exactly the
//! model an uninterrupted run computes, for random programs and fuels
//! (proptest ×64) and for every governor trip reason; damaged or stale
//! snapshots must be rejected with typed errors and recovery must fall
//! back to the last good generation.

use itdb_core::{
    evaluate_with, load_latest, parse_program, resume_with, CancelToken, CheckpointError,
    CheckpointPolicy, Database, EvalOptions, EvalOutcome, Program, SnapshotStore,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "itdb_resume_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A recursive two-stratum workload: `p` grows by shift-recursion, `q`
/// (negation on `p`'s stratum output) exercises the stratified cursor.
fn workload() -> (Program, Database) {
    let program = parse_program(
        "p[t] <- e[t].\n\
         p[t + 3] <- p[t].\n\
         p[t + 5] <- p[t], e[t].\n\
         q[t] <- d[t], !p[t].\n",
    )
    .unwrap();
    let mut db = Database::new();
    db.insert_parsed("e", "(12n+1)").unwrap();
    db.insert_parsed("d", "(4n)").unwrap();
    (program, db)
}

fn unlimited() -> EvalOptions {
    EvalOptions {
        grace_after_fe_safety: 32,
        ..EvalOptions::default()
    }
}

/// Asserts every relation of `a` is equivalent to its counterpart in `b`.
fn assert_same_model(a: &itdb_core::Evaluation, b: &itdb_core::Evaluation, context: &str) {
    assert_eq!(a.idb.len(), b.idb.len(), "{context}: predicate sets differ");
    for (pred, rel) in &a.idb {
        let other = b.relation(pred).unwrap_or_else(|| {
            panic!("{context}: {pred} missing from reference");
        });
        assert!(
            rel.equivalent(other, itdb_lrp::DEFAULT_RESIDUE_BUDGET)
                .unwrap(),
            "{context}: {pred} differs after resume"
        );
    }
}

/// Runs the workload under `limited` (which must trip), checkpoints on
/// trip, resumes without limits, and checks the final model against an
/// uninterrupted reference. Returns false if the limited run converged
/// before tripping (nothing to resume).
fn trip_checkpoint_resume(tag: &str, limited: EvalOptions) -> bool {
    let (program, db) = workload();
    let reference = evaluate_with(&program, &db, &unlimited()).unwrap();
    assert!(reference.outcome.converged());

    let dir = temp_store_dir(tag);
    let store = Arc::new(SnapshotStore::open(&dir).unwrap());
    let opts = EvalOptions {
        checkpoint: Some(CheckpointPolicy::on_trip(store.clone())),
        ..limited
    };
    let interrupted = evaluate_with(&program, &db, &opts).unwrap();
    let tripped = match &interrupted.outcome {
        EvalOutcome::Interrupted(int) => {
            // Satellite: the interruption carries the governor counters.
            assert!(int.counters.checks > 0, "{tag}: counters snapshot missing");
            true
        }
        _ => false,
    };
    if !tripped {
        let _ = std::fs::remove_dir_all(&dir);
        return false;
    }
    assert_eq!(
        interrupted.checkpoints.written, 1,
        "{tag}: expected one on-trip checkpoint"
    );

    let recovered = load_latest(&store).unwrap();
    assert!(recovered.skipped.is_empty());
    let resumed = resume_with(&program, &db, &unlimited(), &recovered.checkpoint).unwrap();
    assert!(
        resumed.outcome.converged(),
        "{tag}: resumed run did not converge: {:?}",
        resumed.outcome
    );
    assert_eq!(resumed.checkpoints.resumed_from, Some(recovered.generation));
    assert_same_model(&resumed, &reference, tag);
    let _ = std::fs::remove_dir_all(&dir);
    true
}

#[test]
fn resume_after_tuple_fuel_trip_reaches_the_reference_model() {
    // Mid-insert trip (note_derived) → redo cursor with widened delta.
    assert!(trip_checkpoint_resume(
        "fuel",
        EvalOptions {
            max_derived_tuples: Some(3),
            ..unlimited()
        }
    ));
}

#[test]
fn resume_after_iteration_fuel_trip_reaches_the_reference_model() {
    // start_iteration trip → cursor saved between iterations.
    assert!(trip_checkpoint_resume(
        "iters",
        EvalOptions {
            max_iterations: 2,
            ..unlimited()
        }
    ));
}

#[test]
fn resume_after_held_tuples_trip_reaches_the_reference_model() {
    // report_held trip after a fully completed insert phase.
    assert!(trip_checkpoint_resume(
        "held",
        EvalOptions {
            max_held_tuples: Some(1),
            ..unlimited()
        }
    ));
}

#[test]
fn resume_after_timeout_trip_reaches_the_reference_model() {
    // Already-expired deadline: trips at the very first budget check.
    assert!(trip_checkpoint_resume(
        "timeout",
        EvalOptions {
            timeout: Some(Duration::ZERO),
            ..unlimited()
        }
    ));
}

#[test]
fn resume_after_cancellation_reaches_the_reference_model() {
    let cancel = CancelToken::new();
    cancel.cancel();
    assert!(trip_checkpoint_resume(
        "cancel",
        EvalOptions {
            cancel: Some(cancel),
            ..unlimited()
        }
    ));
}

#[test]
fn every_n_checkpoint_of_a_finished_run_resumes_to_the_same_model() {
    let (program, db) = workload();
    let reference = evaluate_with(&program, &db, &unlimited()).unwrap();

    let dir = temp_store_dir("everyn");
    let store = Arc::new(SnapshotStore::open(&dir).unwrap());
    let opts = EvalOptions {
        checkpoint: Some(CheckpointPolicy::every(store.clone(), 2)),
        ..unlimited()
    };
    let full = evaluate_with(&program, &db, &opts).unwrap();
    assert!(full.outcome.converged());
    assert!(full.checkpoints.written >= 1, "every-2 cadence never fired");

    // Resuming from an *intermediate* snapshot must converge to the same
    // model the run it was cut from reached.
    let recovered = load_latest(&store).unwrap();
    let resumed = resume_with(&program, &db, &unlimited(), &recovered.checkpoint).unwrap();
    assert!(resumed.outcome.converged());
    assert_same_model(&resumed, &reference, "every-n");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_checkpoints_land_durably_and_resume_to_the_same_model() {
    let (program, db) = workload();
    let reference = evaluate_with(&program, &db, &unlimited()).unwrap();

    let dir = temp_store_dir("bg");
    let store = Arc::new(SnapshotStore::open(&dir).unwrap());
    let writer = Arc::new(itdb_store::BackgroundWriter::spawn(store.clone()).unwrap());
    let opts = EvalOptions {
        max_derived_tuples: Some(3),
        checkpoint: Some(CheckpointPolicy::on_trip(store.clone()).with_background(writer.clone())),
        ..unlimited()
    };
    let interrupted = evaluate_with(&program, &db, &opts).unwrap();
    assert!(matches!(interrupted.outcome, EvalOutcome::Interrupted(_)));
    // The hot path only handed the image off; the writer persists it.
    assert_eq!(interrupted.checkpoints.written, 1);
    assert!(writer.flush(Duration::from_secs(10)));
    let stats = writer.stats();
    assert_eq!(stats.written, 1);
    assert_eq!(stats.failed, 0);

    let recovered = load_latest(&store).unwrap();
    assert!(recovered.skipped.is_empty());
    let resumed = resume_with(&program, &db, &unlimited(), &recovered.checkpoint).unwrap();
    assert!(resumed.outcome.converged());
    assert_same_model(&resumed, &reference, "background");
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_program_hash_is_rejected_with_a_typed_error() {
    let (program, db) = workload();
    let dir = temp_store_dir("staleprog");
    let store = Arc::new(SnapshotStore::open(&dir).unwrap());
    let opts = EvalOptions {
        max_iterations: 1,
        checkpoint: Some(CheckpointPolicy::on_trip(store.clone())),
        ..unlimited()
    };
    evaluate_with(&program, &db, &opts).unwrap();
    let recovered = load_latest(&store).unwrap();

    let other = parse_program("p[t + 7] <- e[t].").unwrap();
    let err = resume_with(&other, &db, &unlimited(), &recovered.checkpoint).unwrap_err();
    assert!(
        err.to_string().contains("program hash"),
        "unexpected error: {err}"
    );
    // Direct validation yields the typed variant.
    let ph = itdb_core::hash_program(&itdb_core::normalize::normalize_program(&other).unwrap());
    let eh = itdb_core::hash_database(&db);
    assert!(matches!(
        recovered.checkpoint.validate(ph, eh),
        Err(CheckpointError::StaleProgramHash { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_edb_hash_is_rejected_with_a_typed_error() {
    let (program, db) = workload();
    let dir = temp_store_dir("staleedb");
    let store = Arc::new(SnapshotStore::open(&dir).unwrap());
    let opts = EvalOptions {
        max_iterations: 1,
        checkpoint: Some(CheckpointPolicy::on_trip(store.clone())),
        ..unlimited()
    };
    evaluate_with(&program, &db, &opts).unwrap();
    let recovered = load_latest(&store).unwrap();

    let mut other_db = Database::new();
    other_db.insert_parsed("e", "(12n+2)").unwrap();
    other_db.insert_parsed("d", "(4n)").unwrap();
    let err = resume_with(&program, &other_db, &unlimited(), &recovered.checkpoint).unwrap_err();
    assert!(
        err.to_string().contains("EDB hash"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_matrix_recovers_the_last_good_generation() {
    let (program, db) = workload();
    let dir = temp_store_dir("corrupt");
    let store = Arc::new(SnapshotStore::open(&dir).unwrap());
    // Two good generations via two tripped runs.
    for fuel in [2u64, 3] {
        let opts = EvalOptions {
            max_derived_tuples: Some(fuel),
            checkpoint: Some(CheckpointPolicy::on_trip(store.clone())),
            ..unlimited()
        };
        evaluate_with(&program, &db, &opts).unwrap();
    }
    let gens = store.generations().unwrap();
    assert_eq!(gens.len(), 2);
    let newest = gens[1];
    let newest_path = dir.join(format!("snap-{newest:020}.itdb"));
    let pristine = std::fs::read(&newest_path).unwrap();

    // Truncation.
    std::fs::write(&newest_path, &pristine[..pristine.len() / 3]).unwrap();
    let rec = load_latest(&store).unwrap();
    assert_eq!(rec.generation, gens[0], "fell back past the truncated file");
    assert_eq!(rec.skipped.len(), 1);

    // Bit flip (in a section payload).
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    std::fs::write(&newest_path, &flipped).unwrap();
    let rec = load_latest(&store).unwrap();
    assert_eq!(
        rec.generation, gens[0],
        "fell back past the bit-flipped file"
    );
    assert_eq!(rec.skipped.len(), 1);

    // The recovered (older) checkpoint still resumes to the right model.
    let reference = evaluate_with(&program, &db, &unlimited()).unwrap();
    let resumed = resume_with(&program, &db, &unlimited(), &rec.checkpoint).unwrap();
    assert_same_model(&resumed, &reference, "post-corruption resume");

    // Both generations damaged → typed NoCheckpoint, not a panic.
    let oldest_path = dir.join(format!("snap-{:020}.itdb", gens[0]));
    std::fs::write(&oldest_path, b"garbage").unwrap();
    assert!(matches!(
        load_latest(&store),
        Err(CheckpointError::NoCheckpoint)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Proptest: random programs × random fuel — trip → checkpoint → resume is
// indistinguishable from an uninterrupted run.

#[derive(Debug, Clone)]
struct RandomProgram {
    source: String,
    edb_period: i64,
    edb_offset: i64,
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        proptest::sample::select(vec![6i64, 8, 12]),
        0i64..6,
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 2..5),
    )
        .prop_map(|(period, offset, rules)| {
            let mut src = String::from("p0[t] <- e[t].\n");
            for (i, (kind, a, b)) in rules.iter().enumerate() {
                let (hi, bi) = ((i % 3), ((i + 1) % 3));
                let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
                match kind {
                    0 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}].\n")),
                    1 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}], e[t].\n")),
                    _ => src.push_str(&format!(
                        "p{hi}[t + {hs}] <- p{bi}[t + {bs}], p{}[t].\n",
                        (i + 2) % 3
                    )),
                }
            }
            RandomProgram {
                source: src,
                edb_period: period,
                edb_offset: offset % period,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resume_equals_uninterrupted(rp in program_strategy(), fuel in 1u64..12) {
        let program = parse_program(&rp.source).unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", &format!("({}n+{})", rp.edb_period, rp.edb_offset)).unwrap();

        let base = EvalOptions { grace_after_fe_safety: 32, max_iterations: 2000, ..Default::default() };
        let reference = evaluate_with(&program, &db, &base).unwrap();
        prop_assert!(reference.outcome.converged());

        let dir = temp_store_dir("prop");
        let store = Arc::new(SnapshotStore::open(&dir).unwrap());
        let limited = EvalOptions {
            max_derived_tuples: Some(fuel),
            checkpoint: Some(CheckpointPolicy::on_trip(store.clone())),
            ..base.clone()
        };
        let run = evaluate_with(&program, &db, &limited).unwrap();

        let final_eval = match &run.outcome {
            EvalOutcome::Interrupted(_) => {
                prop_assert_eq!(run.checkpoints.written, 1);
                let recovered = load_latest(&store).unwrap();
                let resumed = resume_with(&program, &db, &base, &recovered.checkpoint).unwrap();
                prop_assert!(
                    resumed.outcome.converged(),
                    "{} fuel={}: resumed run did not converge: {:?}",
                    rp.source, fuel, resumed.outcome
                );
                resumed
            }
            // Fuel sufficed: the limited run already is the full run.
            _ => run,
        };
        for (pred, rel) in &reference.idb {
            prop_assert!(
                final_eval
                    .relation(pred)
                    .unwrap()
                    .equivalent(rel, itdb_lrp::DEFAULT_RESIDUE_BUDGET)
                    .unwrap(),
                "{} fuel={}: {} differs from the uninterrupted model",
                rp.source, fuel, pred
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
