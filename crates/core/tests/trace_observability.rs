//! Observability integration tests.
//!
//! Three guarantees are pinned here: (1) the disabled path is inert — an
//! evaluation with no sink installed writes nothing and computes the same
//! model as an untraced one; (2) the JSONL event stream conforms to its
//! documented schema, line by line; (3) governor trips surface in the
//! stream at the moment they happen.

use itdb_core::{evaluate_with, parse_program, Database, EvalOptions, Program};
use itdb_trace::{json, MemorySink};
use std::sync::Arc;

/// Recursive two-stratum program (negation separates the strata).
fn sample() -> (Program, Database) {
    let p = parse_program(
        "service[t] <- sched[t]. service[t + 12] <- service[t].
         gap[t] <- tick[t], !service[t].",
    )
    .expect("sample program parses");
    let mut db = Database::new();
    db.insert_parsed("sched", "(24n)").expect("sched parses");
    db.insert_parsed("tick", "(n)").expect("tick parses");
    (p, db)
}

fn assert_models_equivalent(a: &itdb_core::Evaluation, b: &itdb_core::Evaluation) {
    assert_eq!(a.idb.len(), b.idb.len());
    for (pred, rel) in &a.idb {
        let other = b.relation(pred).expect("same predicates");
        assert!(
            rel.equivalent(other, itdb_lrp::DEFAULT_RESIDUE_BUDGET)
                .expect("equivalence decidable"),
            "{pred} differs between traced and untraced evaluation"
        );
    }
}

#[test]
fn disabled_eval_records_nothing_and_matches_untraced() {
    itdb_trace::clear_sinks();
    let mem = Arc::new(MemorySink::new());
    let id = itdb_trace::add_sink(mem.clone());
    assert!(itdb_trace::remove_sink(id));
    assert!(!itdb_trace::enabled());

    let (p, db) = sample();
    let disabled = evaluate_with(&p, &db, &EvalOptions::default()).expect("eval");
    assert_eq!(mem.len(), 0, "a removed sink must see no writes");
    assert!(
        disabled.derivations.is_empty(),
        "no provenance collected while tracing is off"
    );

    let plain = evaluate_with(&p, &db, &EvalOptions::default()).expect("eval");
    assert_eq!(plain.outcome.converged(), disabled.outcome.converged());
    assert_eq!(plain.stats.tuples_inserted, disabled.stats.tuples_inserted);
    assert_models_equivalent(&plain, &disabled);
}

#[test]
fn traced_eval_computes_the_same_model() {
    itdb_trace::clear_sinks();
    let (p, db) = sample();
    let plain = evaluate_with(&p, &db, &EvalOptions::default()).expect("eval");

    let mem = Arc::new(MemorySink::new());
    let id = itdb_trace::add_sink(mem.clone());
    let traced = evaluate_with(&p, &db, &EvalOptions::default()).expect("eval");
    itdb_trace::remove_sink(id);

    assert!(!mem.is_empty(), "tracing on: events must be recorded");
    assert_models_equivalent(&plain, &traced);
}

/// Every line of the stream parses as JSON and carries the documented
/// per-kind payload fields; span enters and exits balance.
#[test]
fn jsonl_stream_conforms_to_schema() {
    itdb_trace::clear_sinks();
    let (p, db) = sample();
    let mem = Arc::new(MemorySink::new());
    let id = itdb_trace::add_sink(mem.clone());
    let _ = evaluate_with(&p, &db, &EvalOptions::default()).expect("eval");
    itdb_trace::remove_sink(id);

    let events = mem.take();
    assert!(!events.is_empty());

    let str_field = |v: &json::Value, k: &str| -> String {
        v.get(k)
            .and_then(|x| x.as_str().map(str::to_string))
            .unwrap_or_else(|| panic!("missing string field `{k}`"))
    };
    let num_field = |v: &json::Value, k: &str| -> f64 {
        v.get(k)
            .and_then(|x| x.as_f64())
            .unwrap_or_else(|| panic!("missing numeric field `{k}`"))
    };

    let mut enters = 0usize;
    let mut exits = 0usize;
    let mut inserted_with_sources = 0usize;
    let mut last_t = 0.0f64;
    for e in &events {
        let line = e.to_json();
        let v = json::parse(&line).unwrap_or_else(|err| panic!("bad JSON `{line}`: {err}"));
        let t = num_field(&v, "t_us");
        assert!(t >= last_t, "timestamps are monotone");
        last_t = t;
        match str_field(&v, "event").as_str() {
            "span_enter" => {
                enters += 1;
                let kind = str_field(&v, "kind");
                assert!(
                    ["evaluate", "stratum", "iteration", "rule", "op"].contains(&kind.as_str()),
                    "unknown span kind `{kind}`"
                );
                str_field(&v, "label");
                num_field(&v, "depth");
            }
            "span_exit" => {
                exits += 1;
                let total = num_field(&v, "total_us");
                let selftime = num_field(&v, "self_us");
                assert!(selftime <= total, "self time cannot exceed total");
            }
            "tuple_derived" => {
                str_field(&v, "pred");
                num_field(&v, "rule");
            }
            "tuple_inserted" => {
                str_field(&v, "pred");
                str_field(&v, "tuple");
                num_field(&v, "rule");
                let sources = v
                    .get("sources")
                    .and_then(|s| s.as_array())
                    .expect("sources array");
                if !sources.is_empty() {
                    inserted_with_sources += 1;
                }
                for s in sources {
                    str_field(s, "pred");
                    str_field(s, "tuple");
                }
            }
            "tuple_subsumed" => {
                str_field(&v, "pred");
                str_field(&v, "tuple");
                num_field(&v, "rule");
            }
            "governor_trip" => {
                str_field(&v, "reason");
            }
            "index_lookup" => {
                let candidates = num_field(&v, "candidates");
                let scanned = num_field(&v, "scanned");
                assert!(candidates <= scanned, "index cannot widen a scan");
            }
            "message" => {
                str_field(&v, "text");
            }
            other => panic!("unknown event discriminator `{other}` in `{line}`"),
        }
    }
    assert_eq!(enters, exits, "span enters and exits balance");
    assert!(enters >= 4, "evaluate/stratum/iteration/rule spans present");
    assert!(
        inserted_with_sources > 0,
        "tracing implies source collection: some insert carries sources"
    );

    // The stream opens with the outermost evaluate span.
    let first = json::parse(&events[0].to_json()).expect("first line parses");
    assert_eq!(str_field(&first, "event"), "span_enter");
    assert_eq!(str_field(&first, "kind"), "evaluate");
    assert_eq!(num_field(&first, "depth"), 0.0);
}

#[test]
fn governor_trip_appears_in_stream() {
    itdb_trace::clear_sinks();
    let p = parse_program("q[t] <- p[t]. q[t + 5] <- q[t].").expect("parses");
    let mut db = Database::new();
    db.insert_parsed("p", "(n) : T1 = 0").expect("parses");
    let opts = EvalOptions {
        max_derived_tuples: Some(5),
        ..Default::default()
    };
    let mem = Arc::new(MemorySink::new());
    let id = itdb_trace::add_sink(mem.clone());
    let eval = evaluate_with(&p, &db, &opts).expect("interruption is graceful");
    itdb_trace::remove_sink(id);
    assert!(eval.outcome.interruption().is_some(), "fuel must trip");

    let trip = mem.take().into_iter().find_map(|e| {
        let v = json::parse(&e.to_json()).ok()?;
        if v.get("event")?.as_str()? == "governor_trip" {
            v.get("reason")?.as_str().map(str::to_string)
        } else {
            None
        }
    });
    let reason = trip.expect("a governor_trip event is in the stream");
    assert!(reason.contains("fuel"), "{reason}");
}
