//! Property-based check of derivation provenance: on randomly generated
//! causal programs, every ground point the computed model contains has an
//! `explain` derivation tree, and every leaf of that tree is extensional
//! (or a bodyless program fact) — provenance is complete, never dangling
//! at an unresolved intensional source.

use itdb_core::{evaluate_with, explain, parse_program, Database, EvalOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomProgram {
    source: String,
    edb_period: i64,
    edb_offset: i64,
}

/// Shift-recursions over a periodic EDB (the always-converging family of
/// `prop_engine.rs`), so evaluation terminates and the model is total.
fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        proptest::sample::select(vec![6i64, 8, 12]), // EDB period
        0i64..6,                                     // EDB offset
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 2..5),
    )
        .prop_map(|(period, offset, rules)| {
            let mut src = String::from("p0[t] <- e[t].\n");
            for (i, (kind, a, b)) in rules.iter().enumerate() {
                let (hi, bi) = ((i % 3), ((i + 1) % 3));
                // Keep causality: head shift ≥ body shift.
                let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
                match kind {
                    0 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}].\n")),
                    1 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}], e[t].\n")),
                    _ => src.push_str(&format!(
                        "p{hi}[t + {hs}] <- p{bi}[t + {bs}], p{}[t].\n",
                        (i + 2) % 3
                    )),
                }
            }
            RandomProgram {
                source: src,
                edb_period: period,
                edb_offset: offset % period,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn explain_grounds_every_model_point_in_edb(rp in program_strategy()) {
        let program = parse_program(&rp.source).unwrap();
        let mut db = Database::new();
        db.insert_parsed("e", &format!("({}n+{})", rp.edb_period, rp.edb_offset)).unwrap();
        let opts = EvalOptions {
            provenance: true,
            grace_after_fe_safety: 32,
            max_iterations: 2000,
            ..Default::default()
        };
        let eval = evaluate_with(&program, &db, &opts).unwrap();
        prop_assert!(eval.outcome.converged(), "{}: {:?}", rp.source, eval.outcome);
        prop_assert!(!eval.derivations.is_empty(), "{}: provenance recorded", rp.source);

        let mut explained = 0usize;
        for pred in eval.idb.keys() {
            let rel = eval.relation(pred).unwrap();
            for t in 0..40i64 {
                if !rel.contains(&[t], &[]) {
                    continue;
                }
                let tree = match explain(&eval, pred, &[t], &[]) {
                    Some(tree) => tree,
                    None => {
                        prop_assert!(false, "{}: {} holds at {} but has no derivation", rp.source, pred, t);
                        unreachable!()
                    }
                };
                prop_assert_eq!(&tree.pred, pred);
                // The root rule is a real clause of the source program.
                let rule = tree.rule.expect("derived facts cite their rule");
                prop_assert!(rule < program.clauses.len(), "{}: rule {} out of range", rp.source, rule);
                // Completeness: the tree bottoms out in EDB facts (or
                // bodyless program facts), never an unresolved source.
                prop_assert!(
                    tree.grounded_in_edb(&eval.info.extensional),
                    "{}: {} at {}: dangling intensional leaf in\n{}",
                    rp.source, pred, t, tree.render(&eval.rule_labels)
                );
                explained += 1;
            }
        }
        prop_assert!(explained > 0, "{}: vacuous window", rp.source);
    }
}
