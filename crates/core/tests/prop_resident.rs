//! Property-based equivalence for incremental maintenance: the
//! delta-applied resident model against its full re-evaluation oracle
//! twin, over random workloads and random fact-batch sequences.
//!
//! Three properties ride on each generated case:
//!
//! 1. **Model equivalence** — after every batch, each maintained IDB
//!    relation is semantically equivalent to the oracle's (which
//!    re-evaluates from scratch over the grown EDB).
//! 2. **Accounting agreement** — both paths report the same
//!    applied/duplicate counts (the dedup arithmetic is path-independent).
//! 3. **Replay determinism** — a second incremental model fed the same
//!    batch sequence lands on *byte-identical* relations (tuple vectors,
//!    not just sets): the property WAL replay and crash recovery build on.

use itdb_core::{parse_program, Database, EvalOptions, Fact, ResidentModel};
use itdb_lrp::parser::parse_tuple;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomWorkload {
    source: String,
    edb_period: i64,
    edb_offset: i64,
}

/// The always-converging family of `prop_engine`/`prop_parallel`:
/// shift-recursions over periodic EDBs (subsumption closes the orbit),
/// plus data-carrying joins and a negated rule so ingestion exercises
/// both the incremental path and the negation fallback.
fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (
        proptest::sample::select(vec![6i64, 8, 12]),
        0i64..6,
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 2..5),
    )
        .prop_map(|(period, offset, rules)| {
            let mut src = String::from("p0[t] <- e[t].\n");
            for (i, (kind, a, b)) in rules.iter().enumerate() {
                let (hi, bi) = ((i % 3), ((i + 1) % 3));
                let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
                match kind {
                    0 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}].\n")),
                    1 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}], e[t].\n")),
                    _ => src.push_str(&format!(
                        "p{hi}[t + {hs}] <- p{bi}[t + {bs}], p{}[t].\n",
                        (i + 2) % 3
                    )),
                }
            }
            src.push_str(
                "q0[t](C) <- d[t](C), p0[t].\n\
                 q1[t] <- d[t + 1](a), p1[t].\n\
                 q2[t](C) <- d[t](C), !dropped[t](C).\n",
            );
            RandomWorkload {
                source: src,
                edb_period: period,
                edb_offset: offset % period,
            }
        })
}

fn edb(rw: &RandomWorkload) -> Database {
    let mut db = Database::new();
    db.insert_parsed("e", &format!("({}n+{})", rw.edb_period, rw.edb_offset))
        .unwrap();
    db.insert_parsed("d", "(6n; a)\n(4n+1; b)").unwrap();
    db.insert_parsed("dropped", "(12n+1; b)").unwrap();
    db
}

/// One generated fact: (target predicate kind, period index, offset, datum).
type FactSpec = (u8, u8, i64, u8);

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<FactSpec>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..3, 0u8..3, 0i64..12, 0u8..2), 1..4),
        1..4,
    )
}

fn materialize(spec: &FactSpec) -> Fact {
    let (kind, period_idx, offset, datum) = spec;
    let period = [6i64, 8, 12][*period_idx as usize];
    let offset = offset % period;
    let c = if *datum == 0 { "a" } else { "b" };
    let (pred, text) = match kind {
        0 => ("e", format!("({period}n+{offset})")),
        1 => ("d", format!("({period}n+{offset}; {c})")),
        _ => ("dropped", format!("({period}n+{offset}; {c})")),
    };
    Fact {
        pred: pred.to_string(),
        tuple: parse_tuple(&text).unwrap(),
    }
}

fn opts() -> EvalOptions {
    EvalOptions {
        parallel: 1,
        grace_after_fe_safety: 32,
        ..EvalOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delta-applied model ≡ full re-evaluation, for random fact-batch
    /// sequences — with byte-identical replay on a second incremental
    /// model.
    #[test]
    fn incremental_equals_full_reeval(
        rw in workload_strategy(),
        batch_specs in batches_strategy(),
    ) {
        let program = parse_program(&rw.source).unwrap();
        let mut inc = ResidentModel::new(program.clone(), edb(&rw), opts()).unwrap();
        let mut oracle = ResidentModel::new(program.clone(), edb(&rw), opts()).unwrap();
        let mut replay = ResidentModel::new(program, edb(&rw), opts()).unwrap();

        for specs in &batch_specs {
            let batch: Vec<Fact> = specs.iter().map(materialize).collect();
            let a = inc.apply_batch(&batch).unwrap();
            let b = oracle.apply_batch_full_reeval(&batch).unwrap();
            let r = replay.apply_batch(&batch).unwrap();

            prop_assert_eq!(a.applied, b.applied, "applied counts agree");
            prop_assert_eq!(a.duplicates, b.duplicates, "duplicate counts agree");
            prop_assert_eq!(a, r, "replay outcome is identical");

            for (pred, rel) in inc.idb() {
                let other = &oracle.idb()[pred];
                prop_assert!(
                    rel.equivalent(other, 1_000_000).unwrap(),
                    "{}: {} differs between incremental and full re-eval\nincremental: {}\noracle: {}",
                    rw.source, pred, rel, other
                );
            }
            for (pred, rel) in inc.idb() {
                prop_assert_eq!(
                    rel.tuples(), replay.idb()[pred].tuples(),
                    "{}: replay of {} must be byte-identical", rw.source, pred
                );
            }
            for (pred, rel) in inc.edb().iter() {
                prop_assert_eq!(
                    rel.tuples(), replay.edb().get(pred).unwrap().tuples(),
                    "{}: EDB replay of {} must be byte-identical", rw.source, pred
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Re-sending a batch is always a pure duplicate: zero new EDB
    /// tuples, zero derived insertions, byte-identical relations.
    #[test]
    fn duplicate_batches_are_idempotent(
        rw in workload_strategy(),
        specs in proptest::collection::vec((0u8..3, 0u8..3, 0i64..12, 0u8..2), 1..4),
    ) {
        let program = parse_program(&rw.source).unwrap();
        let mut m = ResidentModel::new(program, edb(&rw), opts()).unwrap();
        let batch: Vec<Fact> = specs.iter().map(materialize).collect();
        m.apply_batch(&batch).unwrap();
        let before: Vec<(String, Vec<_>)> = m
            .idb()
            .iter()
            .map(|(p, r)| (p.clone(), r.tuples().to_vec()))
            .collect();
        let again = m.apply_batch(&batch).unwrap();
        prop_assert_eq!(again.applied, 0, "everything is a duplicate");
        prop_assert_eq!(again.derived_inserted, 0, "nothing re-derives");
        let after: Vec<(String, Vec<_>)> = m
            .idb()
            .iter()
            .map(|(p, r)| (p.clone(), r.tuples().to_vec()))
            .collect();
        prop_assert_eq!(before, after, "idempotent replay is byte-identical");
    }
}
