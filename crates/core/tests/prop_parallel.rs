//! Property-based equivalence: sharded parallel evaluation against the
//! sequential engine, byte for byte.
//!
//! The parallel derive phase (`--parallel N`) promises more than semantic
//! equivalence — it reconstructs the sequential emission order exactly, so
//! the merged model is the *same vector of tuples in the same order*, not
//! merely an equivalent set. These properties hold `==` (structural
//! equality over schemas and tuple vectors) over randomized programs for
//! N ∈ {2, 4, 8}, including under deterministic governor trips (fuel and
//! iteration caps), where the interrupted partial model must match the
//! sequential partial model at the same barrier.

use itdb_core::{evaluate_with, parse_program, Database, EvalOptions, EvalOutcome, Evaluation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomProgram {
    source: String,
    edb_period: i64,
    edb_offset: i64,
}

/// Shift-recursions over a periodic EDB (the always-converging family of
/// `prop_engine`), extended with data-carrying and negated rules so the
/// index ground-key narrowing and negation subtraction run in parallel
/// workers too.
fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (
        proptest::sample::select(vec![6i64, 8, 12]), // EDB period
        0i64..6,                                     // EDB offset
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 2..5),
    )
        .prop_map(|(period, offset, rules)| {
            let mut src = String::from("p0[t] <- e[t].\n");
            for (i, (kind, a, b)) in rules.iter().enumerate() {
                let (hi, bi) = ((i % 3), ((i + 1) % 3));
                // Keep causality: head shift ≥ body shift.
                let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
                match kind {
                    0 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}].\n")),
                    1 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}], e[t].\n")),
                    _ => src.push_str(&format!(
                        "p{hi}[t + {hs}] <- p{bi}[t + {bs}], p{}[t].\n",
                        (i + 2) % 3
                    )),
                }
            }
            src.push_str(
                "q0[t](C) <- d[t](C), p0[t].\n\
                 q1[t] <- d[t + 1](a), p1[t].\n\
                 q2[t](C) <- d[t](C), !dropped[t](C).\n",
            );
            RandomProgram {
                source: src,
                edb_period: period,
                edb_offset: offset % period,
            }
        })
}

fn edb(rp: &RandomProgram) -> Database {
    let mut db = Database::new();
    db.insert_parsed("e", &format!("({}n+{})", rp.edb_period, rp.edb_offset))
        .unwrap();
    db.insert_parsed("d", "(6n; a)\n(4n+1; b)").unwrap();
    db.insert_parsed("dropped", "(12n+1; b)").unwrap();
    db
}

/// Runs with an explicit worker count, pinning every other knob so the
/// only variable is the derive phase's sharding. (`parallel` is pinned
/// explicitly because `EvalOptions::default()` honours `ITDB_PARALLEL` —
/// the baseline must stay sequential even under the CI stress job.)
fn run(rp: &RandomProgram, workers: usize, patch: impl FnOnce(&mut EvalOptions)) -> Evaluation {
    let program = parse_program(&rp.source).unwrap();
    let mut opts = EvalOptions {
        parallel: workers,
        grace_after_fe_safety: 32,
        ..Default::default()
    };
    patch(&mut opts);
    evaluate_with(&program, &edb(rp), &opts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `--parallel N` produces the byte-identical model and outcome of the
    /// sequential engine on converging programs.
    #[test]
    fn parallel_is_byte_identical_to_sequential(
        rp in program_strategy(),
        n in proptest::sample::select(vec![2usize, 4, 8]),
    ) {
        let seq = run(&rp, 1, |_| {});
        let par = run(&rp, n, |_| {});
        prop_assert_eq!(&par.outcome, &seq.outcome, "{}: outcome at N={}", rp.source, n);
        prop_assert_eq!(&par.idb, &seq.idb, "{}: model at N={}", rp.source, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuel trips are deterministic (the coordinator's single-writer merge
    /// spends fuel in emission order), so an interrupted parallel run must
    /// leave the byte-identical partial model of the interrupted
    /// sequential run at the same barrier.
    #[test]
    fn fuel_tripped_partial_models_match(
        rp in program_strategy(),
        n in proptest::sample::select(vec![2usize, 4, 8]),
        fuel in 1u64..12,
    ) {
        let seq = run(&rp, 1, |o| o.max_derived_tuples = Some(fuel));
        let par = run(&rp, n, |o| o.max_derived_tuples = Some(fuel));
        prop_assert_eq!(&par.idb, &seq.idb,
            "{}: partial model at N={}, fuel={}", rp.source, n, fuel);
        match (&seq.outcome, &par.outcome) {
            (EvalOutcome::Interrupted(s), EvalOutcome::Interrupted(p)) => {
                prop_assert_eq!(
                    std::mem::discriminant(&s.reason),
                    std::mem::discriminant(&p.reason)
                );
                prop_assert_eq!(s.iterations, p.iterations);
            }
            (s, p) => prop_assert_eq!(s, p, "{}: outcome shape", rp.source),
        }
    }

    /// Iteration caps trip at the stratum barrier (`start_iteration`),
    /// before any worker fans out — partial models must again agree byte
    /// for byte.
    #[test]
    fn iteration_capped_partial_models_match(
        rp in program_strategy(),
        n in proptest::sample::select(vec![2usize, 4, 8]),
        cap in 1usize..6,
    ) {
        let seq = run(&rp, 1, |o| o.max_iterations = cap);
        let par = run(&rp, n, |o| o.max_iterations = cap);
        prop_assert_eq!(&par.idb, &seq.idb,
            "{}: partial model at N={}, cap={}", rp.source, n, cap);
        match (&seq.outcome, &par.outcome) {
            (EvalOutcome::Interrupted(s), EvalOutcome::Interrupted(p)) => {
                prop_assert_eq!(
                    std::mem::discriminant(&s.reason),
                    std::mem::discriminant(&p.reason)
                );
                prop_assert_eq!(s.iterations, p.iterations);
            }
            (s, p) => prop_assert_eq!(s, p, "{}: outcome shape", rp.source),
        }
    }
}
