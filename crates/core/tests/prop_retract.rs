//! Property-based equivalence for retraction maintenance: interleaved
//! insert/retract batches applied DRed-incrementally against the
//! full-re-evaluation oracle twin, over random workloads — the
//! retraction analogue of `prop_resident.rs`.
//!
//! Properties per generated case:
//!
//! 1. **Model equivalence** — after every batch, each maintained IDB
//!    relation is semantically equivalent to the oracle's (which
//!    re-evaluates from scratch over the walked EDB), in *both*
//!    over-delete modes: provenance cone and per-stratum wipe.
//! 2. **Accounting agreement** — the EDB walk is path-independent, so
//!    applied/duplicate/retracted/noop counts agree across all paths.
//! 3. **Replay determinism** — a second incremental model fed the same
//!    op sequence lands on *byte-identical* relations (tuple vectors,
//!    not just sets): the property WAL replay and crash recovery build
//!    on. (Byte-identity to the oracle itself is not claimed — the two
//!    paths legitimately produce different closed representations of
//!    the same infinite set; equivalence is the semantic contract, and
//!    determinism is the byte-level one. This matches the insert path.)
//! 4. **Transactional rollback** — under arbitrarily tight governor
//!    settings, a batch either applies identically on both incremental
//!    twins or rolls back on both, leaving byte-identical state; the
//!    final model always equals a fresh full evaluation over exactly
//!    the successfully applied batches.

use itdb_core::{parse_program, Database, EvalOptions, Fact, Op, ResidentModel};
use itdb_lrp::parser::parse_tuple;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomWorkload {
    source: String,
    edb_period: i64,
    edb_offset: i64,
}

/// The always-converging family of `prop_resident`: shift-recursions
/// over periodic EDBs (subsumption closes the orbit), plus
/// data-carrying joins and a negated rule so retraction exercises both
/// the provenance cone and the wipe fallback (negation inside the
/// affected region).
fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (
        proptest::sample::select(vec![6i64, 8, 12]),
        0i64..6,
        proptest::collection::vec((0u8..3, 0i64..7, 0i64..7), 2..5),
    )
        .prop_map(|(period, offset, rules)| {
            let mut src = String::from("p0[t] <- e[t].\n");
            for (i, (kind, a, b)) in rules.iter().enumerate() {
                let (hi, bi) = ((i % 3), ((i + 1) % 3));
                let (hs, bs) = if a >= b { (*a, *b) } else { (*b, *a) };
                match kind {
                    0 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}].\n")),
                    1 => src.push_str(&format!("p{hi}[t + {hs}] <- p{bi}[t + {bs}], e[t].\n")),
                    _ => src.push_str(&format!(
                        "p{hi}[t + {hs}] <- p{bi}[t + {bs}], p{}[t].\n",
                        (i + 2) % 3
                    )),
                }
            }
            src.push_str(
                "q0[t](C) <- d[t](C), p0[t].\n\
                 q1[t] <- d[t + 1](a), p1[t].\n\
                 q2[t](C) <- d[t](C), !dropped[t](C).\n",
            );
            RandomWorkload {
                source: src,
                edb_period: period,
                edb_offset: offset % period,
            }
        })
}

fn edb(rw: &RandomWorkload) -> Database {
    let mut db = Database::new();
    db.insert_parsed("e", &format!("({}n+{})", rw.edb_period, rw.edb_offset))
        .unwrap();
    db.insert_parsed("d", "(6n; a)\n(4n+1; b)").unwrap();
    db.insert_parsed("dropped", "(12n+1; b)").unwrap();
    db
}

/// One generated op: (retract flag 0/1, target predicate kind, period
/// index, offset, datum). Asserts and retracts draw from the same small spec
/// space, so retractions frequently hit previously asserted (or seed)
/// tuples exactly, as well as miss (no-op) and partially overlap.
type OpSpec = (u8, u8, u8, i64, u8);

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<OpSpec>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..2, 0u8..3, 0u8..3, 0i64..12, 0u8..2), 1..4),
        1..5,
    )
}

fn materialize(spec: &OpSpec) -> Op {
    let (retract, kind, period_idx, offset, datum) = spec;
    let period = [6i64, 8, 12][*period_idx as usize];
    let offset = offset % period;
    let c = if *datum == 0 { "a" } else { "b" };
    let (pred, text) = match kind {
        0 => ("e", format!("({period}n+{offset})")),
        1 => ("d", format!("({period}n+{offset}; {c})")),
        _ => ("dropped", format!("({period}n+{offset}; {c})")),
    };
    let fact = Fact {
        pred: pred.to_string(),
        tuple: parse_tuple(&text).unwrap(),
    };
    if *retract == 1 {
        Op::Retract(fact)
    } else {
        Op::Assert(fact)
    }
}

fn opts(provenance: bool) -> EvalOptions {
    EvalOptions {
        parallel: 1,
        grace_after_fe_safety: 32,
        provenance,
        ..EvalOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DRed-maintained model ≡ full re-evaluation for interleaved
    /// insert/retract sequences, in cone and wipe mode — with
    /// byte-identical replay on a second incremental model.
    #[test]
    fn interleaved_ops_equal_full_reeval(
        rw in workload_strategy(),
        batch_specs in batches_strategy(),
    ) {
        let program = parse_program(&rw.source).unwrap();
        let mut cone = ResidentModel::new(program.clone(), edb(&rw), opts(true)).unwrap();
        let mut wipe = ResidentModel::new(program.clone(), edb(&rw), opts(false)).unwrap();
        let mut oracle = ResidentModel::new(program.clone(), edb(&rw), opts(true)).unwrap();
        let mut replay = ResidentModel::new(program, edb(&rw), opts(true)).unwrap();

        for specs in &batch_specs {
            let ops: Vec<Op> = specs.iter().map(materialize).collect();
            let a = cone.apply_ops(&ops).unwrap();
            let w = wipe.apply_ops(&ops).unwrap();
            let b = oracle.apply_ops_full_reeval(&ops).unwrap();
            let r = replay.apply_ops(&ops).unwrap();

            // The EDB walk is shared: counts agree across every path.
            for (x, name) in [(&w, "wipe"), (&b, "oracle")] {
                prop_assert_eq!(a.applied, x.applied, "applied counts agree ({})", name);
                prop_assert_eq!(a.duplicates, x.duplicates, "duplicates agree ({})", name);
                prop_assert_eq!(a.retracted, x.retracted, "retracted agree ({})", name);
                prop_assert_eq!(a.retract_noops, x.retract_noops, "noops agree ({})", name);
            }
            prop_assert_eq!(a, r, "replay outcome is identical");

            for (pred, rel) in cone.idb() {
                let other = &oracle.idb()[pred];
                prop_assert!(
                    rel.equivalent(other, 1_000_000).unwrap(),
                    "{}: {} differs between cone-DRed and full re-eval\nincremental: {}\noracle: {}",
                    rw.source, pred, rel, other
                );
                let wrel = &wipe.idb()[pred];
                prop_assert!(
                    wrel.equivalent(other, 1_000_000).unwrap(),
                    "{}: {} differs between wipe-DRed and full re-eval\nincremental: {}\noracle: {}",
                    rw.source, pred, wrel, other
                );
            }
            for (pred, rel) in cone.idb() {
                prop_assert_eq!(
                    rel.tuples(), replay.idb()[pred].tuples(),
                    "{}: replay of {} must be byte-identical", rw.source, pred
                );
            }
            for (pred, rel) in cone.edb().iter() {
                prop_assert_eq!(
                    rel.tuples(), replay.edb().get(pred).unwrap().tuples(),
                    "{}: EDB replay of {} must be byte-identical", rw.source, pred
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Retract-then-reassert of the same tuples restores semantic
    /// equivalence with a model that never saw the churn.
    #[test]
    fn retract_then_reassert_round_trips(
        rw in workload_strategy(),
        specs in proptest::collection::vec((0u8..3, 0u8..3, 0i64..12, 0u8..2), 1..4),
    ) {
        let program = parse_program(&rw.source).unwrap();
        let mut churned = ResidentModel::new(program.clone(), edb(&rw), opts(true)).unwrap();
        let mut calm = ResidentModel::new(program, edb(&rw), opts(true)).unwrap();

        let asserts: Vec<Op> = specs
            .iter()
            .map(|(k, p, o, d)| materialize(&(0, *k, *p, *o, *d)))
            .collect();
        let retracts: Vec<Op> = specs
            .iter()
            .map(|(k, p, o, d)| materialize(&(1, *k, *p, *o, *d)))
            .collect();
        churned.apply_ops(&asserts).unwrap();
        churned.apply_ops(&retracts).unwrap();
        churned.apply_ops(&asserts).unwrap();
        calm.apply_ops(&asserts).unwrap();

        for (pred, rel) in churned.idb() {
            let other = &calm.idb()[pred];
            prop_assert!(
                rel.equivalent(other, 1_000_000).unwrap(),
                "{}: {} differs after retract/reassert churn\nchurned: {}\ncalm: {}",
                rw.source, pred, rel, other
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrarily tight governor settings every batch either
    /// applies on both incremental twins or rolls back on both, state
    /// stays byte-identical between twins throughout, and the final
    /// model equals a fresh full evaluation over exactly the applied
    /// batches — tripping a governor never wedges or corrupts the model.
    #[test]
    fn governor_trips_roll_back_cleanly(
        rw in workload_strategy(),
        batch_specs in batches_strategy(),
        max_iterations in 3usize..40,
        fuel in proptest::option::of(200u64..5_000),
    ) {
        let program = parse_program(&rw.source).unwrap();
        let tight = EvalOptions {
            max_iterations,
            max_derived_tuples: fuel,
            ..opts(true)
        };
        let Ok(mut inc) = ResidentModel::new(program.clone(), edb(&rw), tight.clone()) else {
            // Seed evaluation itself trips under these limits: nothing
            // resident to maintain — a valid, uninteresting case.
            return Ok(());
        };
        let mut replay = ResidentModel::new(program.clone(), edb(&rw), tight).unwrap();
        let mut survivors: Vec<Vec<Op>> = Vec::new();

        for specs in &batch_specs {
            let ops: Vec<Op> = specs.iter().map(materialize).collect();
            let a = inc.apply_ops(&ops);
            let r = replay.apply_ops(&ops);
            match (&a, &r) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x, y, "twin outcomes agree");
                    survivors.push(ops);
                }
                (Err(x), Err(y)) => {
                    prop_assert!(x.rolled_back() == y.rolled_back(), "twin errors agree");
                }
                _ => prop_assert!(false, "one twin applied, the other refused"),
            }
            for (pred, rel) in inc.idb() {
                prop_assert_eq!(
                    rel.tuples(), replay.idb()[pred].tuples(),
                    "{}: twins byte-identical at {} (incl. after rollback)", rw.source, pred
                );
            }
            for (pred, rel) in inc.edb().iter() {
                prop_assert_eq!(
                    rel.tuples(), replay.edb().get(pred).unwrap().tuples(),
                    "{}: twin EDBs byte-identical at {}", rw.source, pred
                );
            }
        }

        // The surviving prefix fully determines the model: a fresh
        // generously-governed oracle fed only the applied batches is
        // semantically identical.
        let mut oracle = ResidentModel::new(program, edb(&rw), opts(true)).unwrap();
        for ops in &survivors {
            oracle.apply_ops_full_reeval(ops).unwrap();
        }
        for (pred, rel) in inc.idb() {
            let other = &oracle.idb()[pred];
            prop_assert!(
                rel.equivalent(other, 1_000_000).unwrap(),
                "{}: {} differs from the applied-batch oracle\nmodel: {}\noracle: {}",
                rw.source, pred, rel, other
            );
        }
    }
}
