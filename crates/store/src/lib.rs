//! # itdb-store — durable, crash-safe snapshot storage
//!
//! A zero-dependency persistence layer for checkpoint/resume: versioned,
//! section-framed binary snapshots written atomically into a directory of
//! monotonically increasing *generations*.
//!
//! ## File format
//!
//! ```text
//! magic    8 bytes   "ITDBSNAP"
//! version  u32 LE    format version (currently 1)
//! count    u32 LE    number of sections
//! then, per section:
//!   tag    u8        section identifier (assigned by the caller)
//!   len    u64 LE    payload length in bytes
//!   crc    u32 LE    CRC-32 (IEEE) of the payload
//!   payload len bytes
//! ```
//!
//! Every payload is independently checksummed, so torn writes, truncation
//! and bit flips are detected per section and reported as typed
//! [`StoreError`]s — never deserialized into garbage state.
//!
//! ## Atomicity and recovery
//!
//! [`SnapshotStore::write`] stages the image in a `.tmp` file, fsyncs it,
//! renames it to its final `snap-<generation>.itdb` name, and fsyncs the
//! directory, so a crash at any point leaves either the previous
//! generation set intact or the new generation fully visible — never a
//! half-written current generation. [`SnapshotStore::load_latest`] walks
//! generations newest-first and *skips* (reporting, not panicking) any
//! snapshot that fails validation, so a corrupted latest generation falls
//! back to the last good one.
//!
//! The `fault` feature (test-only) injects torn writes, short writes, bit
//! flips, and crash-before-rename faults into [`SnapshotStore::write`],
//! mirroring the governor's fault-injection style.
//!
//! ## Background writes
//!
//! [`BackgroundWriter`] moves the fsync-heavy write path onto a dedicated
//! thread behind a coalescing depth-one queue (latest snapshot wins), so
//! hot paths hand off encoded sections and keep going.

#![warn(missing_docs)]

pub mod bg;
pub mod codec;
pub mod store;
pub mod wal;

pub use bg::{BackgroundWriter, BgWriterStats, PreWriteHook};
pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use store::{Recovery, Section, SnapshotStore, StoreError, Written, FORMAT_VERSION, MAGIC};
pub use wal::{FsyncPolicy, Wal, WalOptions, WalRecord, WalRecovery, WalStats};

#[cfg(feature = "fault")]
pub use store::fault;
