//! Append-only write-ahead log with CRC-framed records, segment rotation,
//! group-fsync batching, and torn-tail recovery.
//!
//! ## Why a WAL next to the snapshot store
//!
//! [`crate::SnapshotStore`] persists whole images atomically — ideal for
//! periodic checkpoints, far too heavy for a per-request ingestion path.
//! The WAL gives the dual: each accepted mutation is appended as one small
//! framed record, made durable according to the configured
//! [`FsyncPolicy`], and replayed in order after a crash. Periodically the
//! resident state is folded into a snapshot generation and the sealed
//! segments it covers are deleted ([`Wal::compact_through`]).
//!
//! ## Segment file format
//!
//! Segments are named `wal-<first-seq>.itdbw` (zero-padded, ascending) so
//! a lexical directory sort is also the log order.
//!
//! ```text
//! magic      8 bytes   "ITDBWAL1"
//! version    u32 LE    format version (currently 1)
//! first_seq  u64 LE    sequence number of the first record in this file
//! then, per record:
//!   len      u32 LE    payload length in bytes
//!   crc      u32 LE    CRC-32 (IEEE) of seq ++ payload
//!   seq      u64 LE    global record sequence number (monotonic from 1)
//!   payload  len bytes
//! ```
//!
//! ## Recovery contract
//!
//! On [`Wal::open`] every segment is scanned. A damaged record in a
//! *sealed* (non-final) segment is a hard [`StoreError`] — sealed
//! segments were fsynced before rotation, so damage there is real
//! corruption, not a crash artifact. A damaged or incomplete record at
//! the tail of the *final* segment is the expected signature of a torn
//! write: the file is truncated back to the last whole record, the event
//! is counted in [`WalStats::truncated_tails`], and the log continues
//! from there. Everything before the torn frame replays byte-identically.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::codec::{crc32, ByteReader, ByteWriter};
use crate::store::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"ITDBWAL1";

/// Current WAL segment format version.
pub const WAL_VERSION: u32 = 1;

/// Bytes of segment header preceding the first record.
const SEGMENT_HEADER_BYTES: u64 = 8 + 4 + 8;

/// Bytes of record framing preceding the payload (`len + crc + seq`).
const RECORD_HEADER_BYTES: usize = 4 + 4 + 8;

/// Upper bound on a single record payload — a sanity guard against
/// interpreting a damaged length frame as a multi-gigabyte allocation.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// When to force appended records onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append. Maximum durability: every record
    /// acknowledged to the caller survives power loss.
    Always,
    /// Group commit: `fsync` once every `n` appends (and on rotation,
    /// [`Wal::flush`], and drop). A crash may lose up to `n - 1` of the
    /// most recently acknowledged records.
    Batch(u32),
}

impl FsyncPolicy {
    /// Parses `always` or `batch:N` (N ≥ 1), the CLI surface syntax.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "always" {
            return Ok(FsyncPolicy::Always);
        }
        if let Some(n) = s.strip_prefix("batch:") {
            return match n.parse::<u32>() {
                Ok(n) if n >= 1 => Ok(FsyncPolicy::Batch(n)),
                _ => Err(format!("bad fsync batch size {n:?} (want an integer >= 1)")),
            };
        }
        Err(format!(
            "bad fsync policy {s:?} (want `always` or `batch:N`)"
        ))
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(n) => write!(f, "batch:{n}"),
        }
    }
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one reaches this size.
    pub segment_bytes: u64,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 * 1024 * 1024,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// One replayed log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Global sequence number (monotonic from 1).
    pub seq: u64,
    /// The record payload, exactly as appended.
    pub payload: Vec<u8>,
}

/// Counters describing the log's lifetime activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appends: u64,
    /// `fsync` calls issued for the active segment since open.
    pub fsyncs: u64,
    /// Records recovered by the opening scan.
    pub replayed_records: u64,
    /// Torn tails truncated by the opening scan (0 or 1 per open).
    pub truncated_tails: u64,
    /// Bytes currently in the active segment (header included).
    pub segment_bytes: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Highest sequence number ever appended (0 = empty log).
    pub last_seq: u64,
    /// Sealed segments deleted by compaction since open.
    pub compacted_segments: u64,
}

/// Outcome of the opening scan: everything the caller must replay.
#[derive(Debug)]
pub struct WalRecovery {
    /// All surviving records, in sequence order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from the final segment as a torn tail.
    pub truncated_tail_bytes: u64,
    /// Whether a torn tail was truncated.
    pub truncated_tail: bool,
}

struct Segment {
    path: PathBuf,
    first_seq: u64,
    /// Current size in bytes (header + records), tracked so rotation does
    /// not need to stat the file.
    bytes: u64,
}

/// An append-only, CRC-framed, segmented write-ahead log.
///
/// Not internally synchronized: callers wrap it in a `Mutex` (the serve
/// layer serializes the whole ingest path anyway, which is what gives
/// replay its determinism).
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    active: Segment,
    file: File,
    next_seq: u64,
    unflushed: u32,
    stats: WalStats,
    sealed: Vec<Segment>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("stats", &self.stats)
            .finish()
    }
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.itdbw"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".itdbw"))
        {
            if let Ok(seq) = num.parse::<u64>() {
                segs.push((seq, entry.path()));
            }
        }
    }
    segs.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segs)
}

fn fsync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.put_u64(seq);
    body.put_bytes(payload);
    let body = body.into_bytes();
    let mut w = ByteWriter::new();
    w.put_u32(payload.len() as u32);
    w.put_u32(crc32(&body));
    w.put_bytes(&body);
    w.into_bytes()
}

/// Result of scanning one segment's records.
struct SegmentScan {
    records: Vec<WalRecord>,
    /// Byte offset just past the last whole, CRC-valid record.
    good_bytes: u64,
    /// Error hit after `good_bytes` (None when the file ends cleanly).
    tail_error: Option<StoreError>,
}

fn scan_segment(path: &Path, expect_first_seq: u64) -> Result<SegmentScan, StoreError> {
    let image = fs::read(path)?;
    let mut r = ByteReader::new(&image);
    let magic = r
        .get_bytes(WAL_MAGIC.len())
        .map_err(|_| StoreError::Truncated)?;
    if magic != WAL_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.get_u32().map_err(|_| StoreError::Truncated)?;
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let first_seq = r.get_u64().map_err(|_| StoreError::Truncated)?;
    if first_seq != expect_first_seq {
        return Err(StoreError::Corrupt(format!(
            "segment {} declares first seq {first_seq}, name says {expect_first_seq}",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut good_bytes = SEGMENT_HEADER_BYTES;
    let mut expect_seq = first_seq;
    loop {
        if r.remaining() == 0 {
            return Ok(SegmentScan {
                records,
                good_bytes,
                tail_error: None,
            });
        }
        let frame = (|| -> Result<WalRecord, StoreError> {
            let len = r.get_u32().map_err(|_| StoreError::Truncated)?;
            if len > MAX_RECORD_BYTES {
                return Err(StoreError::Corrupt(format!(
                    "record length {len} exceeds the {MAX_RECORD_BYTES} limit"
                )));
            }
            let crc = r.get_u32().map_err(|_| StoreError::Truncated)?;
            let body = r
                .get_bytes(8 + len as usize)
                .map_err(|_| StoreError::Truncated)?;
            if crc32(body) != crc {
                return Err(StoreError::ChecksumMismatch { section: 0 });
            }
            let mut br = ByteReader::new(body);
            let seq = br.get_u64().map_err(|_| StoreError::Truncated)?;
            if seq != expect_seq {
                return Err(StoreError::Corrupt(format!(
                    "record seq {seq} where {expect_seq} expected"
                )));
            }
            Ok(WalRecord {
                seq,
                payload: body[8..].to_vec(),
            })
        })();
        match frame {
            Ok(rec) => {
                good_bytes += (RECORD_HEADER_BYTES + rec.payload.len()) as u64;
                expect_seq = rec.seq + 1;
                records.push(rec);
            }
            Err(e) => {
                return Ok(SegmentScan {
                    records,
                    good_bytes,
                    tail_error: Some(e),
                });
            }
        }
    }
}

impl Wal {
    /// Opens (creating if needed) the log directory, scans every segment,
    /// truncates a torn tail on the final segment, and returns the log
    /// positioned for appends plus everything to replay.
    pub fn open(
        dir: impl AsRef<Path>,
        opts: WalOptions,
    ) -> Result<(Self, WalRecovery), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let listed = list_segments(&dir)?;
        let mut records = Vec::new();
        let mut sealed = Vec::new();
        let mut truncated_tail = false;
        let mut truncated_tail_bytes = 0u64;
        // Compaction deletes prefix segments, so the log may legitimately
        // start at a seq > 1: trust the first surviving segment's name.
        let mut next_seq = listed.first().map(|(seq, _)| *seq).unwrap_or(1);
        let mut active: Option<Segment> = None;

        let last_idx = listed.len().checked_sub(1);
        for (idx, (first_seq, path)) in listed.iter().enumerate() {
            let is_last = Some(idx) == last_idx;
            if *first_seq != next_seq {
                return Err(StoreError::Corrupt(format!(
                    "segment {} starts at seq {first_seq} but {next_seq} expected (missing segment?)",
                    path.display()
                )));
            }
            let scan = match scan_segment(path, *first_seq) {
                Ok(scan) => scan,
                // A crash while creating a fresh segment can leave a torn
                // header on the *final* file; treat the whole file as the
                // torn tail and drop it.
                Err(StoreError::Truncated) | Err(StoreError::BadMagic) if is_last => {
                    truncated_tail_bytes = fs::metadata(path)?.len();
                    truncated_tail = true;
                    fs::remove_file(path)?;
                    fsync_dir(&dir);
                    continue;
                }
                Err(e) => return Err(e),
            };
            if let Some(err) = scan.tail_error {
                if !is_last {
                    // Sealed segments were fsynced before rotation; damage
                    // here is corruption, not a crash artifact.
                    return Err(StoreError::Corrupt(format!(
                        "sealed segment {} is damaged: {err}",
                        path.display()
                    )));
                }
                let total = fs::metadata(path)?.len();
                truncated_tail_bytes = total.saturating_sub(scan.good_bytes);
                truncated_tail = true;
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(scan.good_bytes)?;
                f.sync_all()?;
            }
            let bytes = scan.good_bytes;
            next_seq = scan.records.last().map(|r| r.seq + 1).unwrap_or(*first_seq);
            records.extend(scan.records);
            let seg = Segment {
                path: path.clone(),
                first_seq: *first_seq,
                bytes,
            };
            if is_last {
                active = Some(seg);
            } else {
                sealed.push(seg);
            }
        }

        let (active, file) = match active {
            Some(seg) => {
                let file = OpenOptions::new().append(true).open(&seg.path)?;
                (seg, file)
            }
            None => Self::new_segment(&dir, next_seq)?,
        };

        let stats = WalStats {
            replayed_records: records.len() as u64,
            truncated_tails: u64::from(truncated_tail),
            segment_bytes: active.bytes,
            segments: sealed.len() as u64 + 1,
            last_seq: next_seq.saturating_sub(1),
            ..WalStats::default()
        };
        let wal = Wal {
            dir,
            opts,
            active,
            file,
            next_seq,
            unflushed: 0,
            stats,
            sealed,
        };
        Ok((
            wal,
            WalRecovery {
                records,
                truncated_tail_bytes,
                truncated_tail,
            },
        ))
    }

    fn new_segment(dir: &Path, first_seq: u64) -> Result<(Segment, File), StoreError> {
        let path = segment_path(dir, first_seq);
        let mut header = ByteWriter::new();
        header.put_bytes(WAL_MAGIC);
        header.put_u32(WAL_VERSION);
        header.put_u64(first_seq);
        let header = header.into_bytes();
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        file.write_all(&header)?;
        file.sync_all()?;
        fsync_dir(dir);
        let seg = Segment {
            path,
            first_seq,
            bytes: header.len() as u64,
        };
        Ok((seg, file))
    }

    /// The directory this log appends into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime counters (see [`WalStats`]).
    pub fn stats(&self) -> WalStats {
        WalStats {
            segment_bytes: self.active.bytes,
            segments: self.sealed.len() as u64 + 1,
            last_seq: self.next_seq.saturating_sub(1),
            ..self.stats
        }
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record, applying the configured durability policy.
    /// Returns the record's sequence number.
    ///
    /// With the `fault` feature, an armed [`crate::fault::FaultPlan`] on
    /// this thread damages the encoded frame before it reaches the file —
    /// simulating torn, short, and bit-flipped appends. The in-memory
    /// cursor still advances, mirroring a process that crashed after the
    /// bad write: recovery behavior is then exercised by reopening.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(StoreError::Corrupt(format!(
                "record payload {} exceeds the {MAX_RECORD_BYTES} limit",
                payload.len()
            )));
        }
        if self.active.bytes >= self.opts.segment_bytes {
            self.rotate()?;
        }
        let seq = self.next_seq;
        #[allow(unused_mut)]
        let mut frame = encode_frame(seq, payload);
        #[cfg(feature = "fault")]
        {
            crate::fault::apply(&mut frame);
        }
        self.file.write_all(&frame)?;
        self.active.bytes += frame.len() as u64;
        self.next_seq = seq + 1;
        self.stats.appends += 1;
        match self.opts.fsync {
            FsyncPolicy::Always => {
                self.file.sync_all()?;
                self.stats.fsyncs += 1;
            }
            FsyncPolicy::Batch(n) => {
                self.unflushed += 1;
                if self.unflushed >= n {
                    self.file.sync_all()?;
                    self.stats.fsyncs += 1;
                    self.unflushed = 0;
                }
            }
        }
        Ok(seq)
    }

    /// Forces any batched appends onto stable storage.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.unflushed > 0 {
            self.file.sync_all()?;
            self.stats.fsyncs += 1;
            self.unflushed = 0;
        }
        Ok(())
    }

    /// Seals the active segment (fsync) and starts a fresh one.
    fn rotate(&mut self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        self.stats.fsyncs += 1;
        self.unflushed = 0;
        let (seg, file) = Self::new_segment(&self.dir, self.next_seq)?;
        let old = std::mem::replace(&mut self.active, seg);
        self.sealed.push(old);
        self.file = file;
        Ok(())
    }

    /// Deletes sealed segments whose records are all covered by a durable
    /// checkpoint through `seq` — the log-compaction half of the
    /// checkpoint+WAL pairing. The active segment is never deleted.
    /// Returns the number of segments removed.
    pub fn compact_through(&mut self, seq: u64) -> Result<u64, StoreError> {
        // A sealed segment covers [first_seq, next_first_seq - 1]; the
        // next segment's start is either the following sealed segment or
        // the active one.
        let mut removed = 0u64;
        while !self.sealed.is_empty() {
            let next_first = self
                .sealed
                .get(1)
                .map(|s| s.first_seq)
                .unwrap_or(self.active.first_seq);
            if next_first.saturating_sub(1) > seq {
                break;
            }
            let seg = self.sealed.remove(0);
            fs::remove_file(&seg.path)?;
            removed += 1;
        }
        if removed > 0 {
            fsync_dir(&self.dir);
            self.stats.compacted_segments += removed;
        }
        Ok(removed)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "itdb-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmpdir("roundtrip");
        let (mut wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(rec.records.is_empty());
        for i in 0..10u8 {
            let seq = wal.append(&[i; 3]).unwrap();
            assert_eq!(seq, u64::from(i) + 1);
        }
        assert_eq!(wal.stats().appends, 10);
        assert_eq!(wal.stats().fsyncs, 10);
        drop(wal);
        let (wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 10);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.payload, vec![i as u8; 3]);
        }
        assert_eq!(wal.next_seq(), 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_fsync_counts_group_commits() {
        let dir = tmpdir("batch");
        let opts = WalOptions {
            fsync: FsyncPolicy::Batch(4),
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for _ in 0..10 {
            wal.append(b"x").unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 2); // at 4 and 8
        wal.flush().unwrap();
        assert_eq!(wal.stats().fsyncs, 3);
        wal.flush().unwrap();
        assert_eq!(wal.stats().fsyncs, 3); // idempotent when clean
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_replay_spans_them() {
        let dir = tmpdir("rotate");
        let opts = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 16]).unwrap();
        }
        assert!(wal.stats().segments > 1, "expected rotation");
        drop(wal);
        let (_, rec) = Wal::open(&dir, opts).unwrap();
        assert_eq!(rec.records.len(), 20);
        assert_eq!(
            rec.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (1..=20).collect::<Vec<_>>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_deletes_covered_sealed_segments() {
        let dir = tmpdir("compact");
        let opts = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 16]).unwrap();
        }
        let before = wal.stats().segments;
        assert!(before > 2);
        let removed = wal.compact_through(wal.stats().last_seq).unwrap();
        assert_eq!(removed, before - 1, "all sealed segments removable");
        assert_eq!(wal.stats().segments, 1);
        // Replay still starts from the surviving segment without error.
        drop(wal);
        let (wal2, rec) = Wal::open(&dir, opts).unwrap();
        assert!(rec.records.iter().all(|r| r.seq <= 20));
        assert_eq!(wal2.next_seq(), 21);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_fsync_policy_surface() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch:8"), Ok(FsyncPolicy::Batch(8)));
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Batch(8).to_string(), "batch:8");
    }
}
