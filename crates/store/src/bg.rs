//! Background snapshot writing: a dedicated writer thread that takes
//! encoded sections off the submitting thread's hands, so durability
//! (serialization hand-off aside, the fsync-heavy [`SnapshotStore::write`]
//! path) never blocks evaluation or request handling.
//!
//! The queue is a **coalescing slot of depth one**: each [`submit`] call
//! replaces any still-pending snapshot with the newer one. Snapshots are
//! full images (not deltas), so the newest one subsumes everything queued
//! behind it — under a burst of checkpoints the writer persists the latest
//! state and counts the superseded submissions instead of falling behind
//! on an unbounded backlog. [`flush`] waits for the slot to drain (used on
//! graceful shutdown); dropping the writer drains the pending snapshot,
//! then joins the thread.
//!
//! [`submit`]: BackgroundWriter::submit
//! [`flush`]: BackgroundWriter::flush

use crate::store::{Section, SnapshotStore};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Counters describing what a [`BackgroundWriter`] has done so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BgWriterStats {
    /// Snapshots handed to [`BackgroundWriter::submit`].
    pub submitted: u64,
    /// Snapshots durably written.
    pub written: u64,
    /// Submissions superseded by a newer snapshot before they reached the
    /// disk (latest-wins coalescing).
    pub coalesced: u64,
    /// Writes that failed (the writer keeps going; failures are counted,
    /// never fatal).
    pub failed: u64,
    /// Generation of the most recent successful write.
    pub last_generation: Option<u64>,
    /// Image size of the most recent successful write, in bytes.
    pub last_bytes: u64,
}

/// A hook run on the writer thread immediately before each write, with the
/// 0-based index of that write. Exists so test harnesses (the chaos soak)
/// can arm thread-local fault plans on the thread that actually writes.
pub type PreWriteHook = Box<dyn Fn(u64) + Send>;

struct Slot {
    pending: Option<Vec<Section>>,
    /// The writer is between taking a job and finishing it.
    writing: bool,
    stop: bool,
    stats: BgWriterStats,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Signals the writer that work (or stop) arrived.
    ready: Condvar,
    /// Signals flushers that the slot drained.
    idle: Condvar,
}

impl Shared {
    /// A poisoned slot mutex only means some thread panicked mid-update;
    /// the slot state itself is always valid, so recover instead of
    /// wedging every subsequent submit/flush.
    fn lock(&self) -> MutexGuard<'_, Slot> {
        self.slot.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A dedicated snapshot-writing thread with a coalescing depth-one queue.
pub struct BackgroundWriter {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundWriter {
    /// Spawns the writer thread against `store`.
    pub fn spawn(store: Arc<SnapshotStore>) -> std::io::Result<Self> {
        Self::spawn_with_hook(store, None)
    }

    /// Like [`spawn`](Self::spawn), with a pre-write hook (see
    /// [`PreWriteHook`]).
    pub fn spawn_with_hook(
        store: Arc<SnapshotStore>,
        hook: Option<PreWriteHook>,
    ) -> std::io::Result<Self> {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                pending: None,
                writing: false,
                stop: false,
                stats: BgWriterStats::default(),
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("itdb-bg-writer".into())
            .spawn(move || writer_loop(&thread_shared, &store, hook))?;
        Ok(BackgroundWriter {
            shared,
            handle: Some(handle),
        })
    }

    /// Queues `sections` as the next snapshot to persist. Never blocks on
    /// I/O: if a previous submission is still pending, it is replaced
    /// (counted in [`BgWriterStats::coalesced`]).
    pub fn submit(&self, sections: Vec<Section>) {
        let mut slot = self.shared.lock();
        slot.stats.submitted += 1;
        if slot.pending.replace(sections).is_some() {
            slot.stats.coalesced += 1;
        }
        drop(slot);
        self.shared.ready.notify_one();
    }

    /// Waits until every submitted snapshot has reached the disk (or
    /// failed), up to `timeout`. Returns `false` on timeout.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.lock();
        while slot.pending.is_some() || slot.writing {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .shared
                .idle
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            slot = next;
        }
        true
    }

    /// A snapshot of the writer's counters.
    pub fn stats(&self) -> BgWriterStats {
        self.shared.lock().stats.clone()
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.lock();
            slot.stop = true;
        }
        self.shared.ready.notify_one();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn writer_loop(shared: &Shared, store: &SnapshotStore, hook: Option<PreWriteHook>) {
    let mut writes = 0u64;
    loop {
        let job = {
            let mut slot = shared.lock();
            loop {
                if let Some(job) = slot.pending.take() {
                    slot.writing = true;
                    break job;
                }
                if slot.stop {
                    return;
                }
                slot = shared.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
            }
        };
        if let Some(hook) = &hook {
            hook(writes);
        }
        writes += 1;
        let result = store.write(&job);
        let mut slot = shared.lock();
        slot.writing = false;
        match result {
            Ok(w) => {
                slot.stats.written += 1;
                slot.stats.last_generation = Some(w.generation);
                slot.stats.last_bytes = w.bytes;
            }
            Err(_) => slot.stats.failed += 1,
        }
        drop(slot);
        shared.idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_store(name: &str) -> Arc<SnapshotStore> {
        let dir = std::env::temp_dir().join(format!(
            "itdb_bg_{name}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Arc::new(SnapshotStore::open(&dir).unwrap())
    }

    fn sections(tag: u8) -> Vec<Section> {
        vec![Section::new(tag, vec![tag; 64])]
    }

    #[test]
    fn submitted_snapshots_reach_the_disk() {
        let store = temp_store("reach");
        let w = BackgroundWriter::spawn(Arc::clone(&store)).unwrap();
        w.submit(sections(1));
        assert!(w.flush(Duration::from_secs(10)));
        let stats = w.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.written, 1);
        assert_eq!(stats.failed, 0);
        let rec = store.load_latest().unwrap();
        assert_eq!(rec.snapshot.unwrap().1, sections(1));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn a_burst_coalesces_to_the_newest_snapshot() {
        let store = temp_store("coalesce");
        let w = BackgroundWriter::spawn(Arc::clone(&store)).unwrap();
        // Submit faster than the disk: latest-wins semantics mean the
        // final state always survives, and superseded ones are counted.
        for i in 0..50u8 {
            w.submit(sections(i));
        }
        assert!(w.flush(Duration::from_secs(10)));
        let stats = w.stats();
        assert_eq!(stats.submitted, 50);
        assert_eq!(stats.written + stats.coalesced, 50);
        assert!(stats.written >= 1);
        // The newest submission is always among the written ones.
        let rec = store.load_latest().unwrap();
        assert_eq!(rec.snapshot.unwrap().1, sections(49));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn drop_drains_the_pending_snapshot() {
        let store = temp_store("drop");
        {
            let w = BackgroundWriter::spawn(Arc::clone(&store)).unwrap();
            w.submit(sections(7));
            // No flush: Drop must still persist the pending snapshot.
        }
        let rec = store.load_latest().unwrap();
        assert_eq!(rec.snapshot.unwrap().1, sections(7));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn flush_on_idle_writer_returns_immediately() {
        let store = temp_store("idle");
        let w = BackgroundWriter::spawn(store.clone()).unwrap();
        assert!(w.flush(Duration::from_millis(10)));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn pre_write_hook_runs_on_the_writer_thread_per_write() {
        let store = temp_store("hook");
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_hook = Arc::clone(&seen);
        let hook: PreWriteHook = Box::new(move |i| {
            seen_hook.lock().unwrap().push(i);
        });
        let w = BackgroundWriter::spawn_with_hook(Arc::clone(&store), Some(hook)).unwrap();
        w.submit(sections(1));
        assert!(w.flush(Duration::from_secs(10)));
        w.submit(sections(2));
        assert!(w.flush(Duration::from_secs(10)));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1]);
        let _ = fs::remove_dir_all(store.dir());
    }
}
