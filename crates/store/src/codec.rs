//! Little-endian byte codec and CRC-32, shared by the snapshot container
//! and the section payload encoders that live in higher crates.
//!
//! The writer is infallible (it grows a `Vec<u8>`); the reader is fully
//! bounds-checked and returns a typed [`CodecError`] instead of panicking,
//! so corrupt payloads surface as recoverable errors.

use std::fmt;

/// A decode failure: truncated input, a bad tag byte, or invalid UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decode operations.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Appends fixed-width little-endian primitives to a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Has nothing been written?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Reads fixed-width little-endian primitives from a byte slice, fully
/// bounds-checked.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has the whole input been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "need {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> CodecResult<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting overflow.
    pub fn get_usize(&mut self) -> CodecResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError(format!("length {v} exceeds usize")))
    }

    /// Reads a one-byte `bool`, rejecting values other than 0/1.
    pub fn get_bool(&mut self) -> CodecResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError(format!("bad bool byte {v}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<String> {
        let n = self.get_usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| CodecError(format!("invalid UTF-8: {e}")))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.take(n)
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_usize(99);
        w.put_bool(true);
        w.put_str("héllo\nworld");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), 99);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo\nworld");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.get_u64().is_err());
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
        let mut w = ByteWriter::new();
        w.put_str("abc");
        let mut bytes = w.into_bytes();
        bytes.truncate(9); // length prefix says 3, only 1 byte present
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn bad_bool_is_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(r.get_bool().is_err());
    }
}
