//! The generation-based snapshot store: atomic writes, checksummed reads,
//! corruption fallback, and (feature-gated) fault injection.

use crate::codec::{crc32, ByteReader, ByteWriter};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const MAGIC: &[u8; 8] = b"ITDBSNAP";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound on the section count a file may declare — a sanity guard
/// against interpreting garbage as an enormous section table.
const MAX_SECTIONS: u32 = 1024;

/// How many good generations to retain after a successful write: the new
/// one plus one fallback.
const KEEP_GENERATIONS: usize = 2;

/// One tagged, checksummed byte payload inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Caller-assigned section identifier.
    pub tag: u8,
    /// The section's encoded payload.
    pub payload: Vec<u8>,
}

impl Section {
    /// A section with the given tag and payload.
    pub fn new(tag: u8, payload: Vec<u8>) -> Self {
        Section { tag, payload }
    }
}

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file declares a format version this build does not understand.
    UnsupportedVersion(u32),
    /// The file ends before its declared structure does (torn/short write).
    Truncated,
    /// A section's payload does not match its CRC-32 (bit rot, torn write).
    ChecksumMismatch {
        /// Tag of the damaged section.
        section: u8,
    },
    /// The container structure is inconsistent (bad counts, trailing bytes).
    Corrupt(String),
    /// No snapshot generation exists (or none survived validation).
    NoSnapshot,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o: {e}"),
            StoreError::BadMagic => write!(f, "bad magic (not a snapshot file)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::Truncated => write!(f, "truncated snapshot (torn or short write)"),
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StoreError::NoSnapshot => write!(f, "no valid snapshot generation"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Receipt for a successful [`SnapshotStore::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Written {
    /// The generation number the snapshot was written as.
    pub generation: u64,
    /// Size of the snapshot image in bytes.
    pub bytes: u64,
}

/// The result of a fallback-scanning load: the newest valid snapshot (if
/// any) plus every newer generation that had to be skipped as damaged.
#[derive(Debug)]
pub struct Recovery {
    /// The newest generation that passed structural validation, with its
    /// decoded sections.
    pub snapshot: Option<(u64, Vec<Section>)>,
    /// Generations that were present but damaged, newest first, each with
    /// the validation error that disqualified it.
    pub skipped: Vec<(u64, StoreError)>,
}

/// A directory of snapshot generations (`snap-<generation>.itdb`).
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("snap-{generation:020}.itdb"))
    }

    /// All generations present on disk, ascending. Temp files and foreign
    /// names are ignored.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".itdb"))
            {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Encodes `sections` into one snapshot image.
    fn encode(sections: &[Section]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(sections.len() as u32);
        for s in sections {
            w.put_u8(s.tag);
            w.put_u64(s.payload.len() as u64);
            w.put_u32(crc32(&s.payload));
            w.put_bytes(&s.payload);
        }
        w.into_bytes()
    }

    /// Decodes and validates one snapshot image.
    fn decode(image: &[u8]) -> Result<Vec<Section>, StoreError> {
        let mut r = ByteReader::new(image);
        let magic = r
            .get_bytes(MAGIC.len())
            .map_err(|_| StoreError::Truncated)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.get_u32().map_err(|_| StoreError::Truncated)?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let count = r.get_u32().map_err(|_| StoreError::Truncated)?;
        if count > MAX_SECTIONS {
            return Err(StoreError::Corrupt(format!(
                "section count {count} exceeds the {MAX_SECTIONS} limit"
            )));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let tag = r.get_u8().map_err(|_| StoreError::Truncated)?;
            let len = r.get_u64().map_err(|_| StoreError::Truncated)?;
            let crc = r.get_u32().map_err(|_| StoreError::Truncated)?;
            let len = usize::try_from(len)
                .map_err(|_| StoreError::Corrupt(format!("section {tag} length overflow")))?;
            let payload = r.get_bytes(len).map_err(|_| StoreError::Truncated)?;
            if crc32(payload) != crc {
                return Err(StoreError::ChecksumMismatch { section: tag });
            }
            sections.push(Section::new(tag, payload.to_vec()));
        }
        if !r.is_exhausted() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        Ok(sections)
    }

    /// Writes `sections` as the next generation: stage in a temp file,
    /// fsync, rename into place, fsync the directory. Crash-safe — a
    /// failure at any point leaves prior generations untouched. After a
    /// successful write, generations older than the newest
    /// [`KEEP_GENERATIONS`] are pruned (best-effort).
    pub fn write(&self, sections: &[Section]) -> Result<Written, StoreError> {
        let generation = self.generations()?.last().map_or(1, |g| g + 1);
        #[allow(unused_mut)]
        let mut image = Self::encode(sections);
        let bytes = image.len() as u64;

        #[cfg(feature = "fault")]
        let injected = fault::apply(&mut image);
        #[cfg(not(feature = "fault"))]
        let injected: Option<()> = None;
        #[cfg(feature = "fault")]
        if matches!(injected, Some(fault::FaultKind::CrashBeforeRename)) {
            // Simulated crash between staging and rename: the temp file is
            // all that exists; readers never see this generation.
            let tmp = self.dir.join(format!(".snap-{generation:020}.tmp"));
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
            return Ok(Written { generation, bytes });
        }
        let _ = injected;

        let tmp = self.dir.join(format!(".snap-{generation:020}.tmp"));
        let final_path = self.path_of(generation);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Persist the rename itself: fsync the directory (POSIX requires
        // this for the new directory entry to survive a crash).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.prune(generation);
        Ok(Written { generation, bytes })
    }

    /// Removes generations older than the newest [`KEEP_GENERATIONS`],
    /// best-effort (a failed unlink never fails the write that triggered
    /// it).
    fn prune(&self, newest: u64) {
        let Ok(gens) = self.generations() else {
            return;
        };
        let keep_from = gens.len().saturating_sub(KEEP_GENERATIONS).min(gens.len());
        for &g in &gens[..keep_from] {
            if g < newest {
                let _ = fs::remove_file(self.path_of(g));
            }
        }
    }

    /// Loads one specific generation, strictly: any structural damage is
    /// an error (no fallback).
    pub fn load_generation(&self, generation: u64) -> Result<Vec<Section>, StoreError> {
        let path = self.path_of(generation);
        let image = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NoSnapshot)
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        Self::decode(&image)
    }

    /// Loads the newest snapshot that passes validation, walking
    /// generations newest-first and collecting (not failing on) damaged
    /// ones. Only a filesystem-level failure to list the directory is an
    /// error.
    pub fn load_latest(&self) -> Result<Recovery, StoreError> {
        let mut skipped = Vec::new();
        for g in self.generations()?.into_iter().rev() {
            match self.load_generation(g) {
                Ok(sections) => {
                    return Ok(Recovery {
                        snapshot: Some((g, sections)),
                        skipped,
                    })
                }
                Err(e) => skipped.push((g, e)),
            }
        }
        Ok(Recovery {
            snapshot: None,
            skipped,
        })
    }
}

/// Deterministic write-fault injection (test-only, feature `fault`).
///
/// A [`FaultPlan`] is armed on the current thread and consumed by the next
/// [`SnapshotStore::write`], which then produces exactly the damage the
/// plan describes — the write itself reports success, modelling a crash or
/// silent corruption that the *next reader* must survive.
#[cfg(feature = "fault")]
pub mod fault {
    use std::cell::Cell;

    /// Which damage to synthesize on the next write.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultKind {
        /// Keep only the first `keep` bytes of the image (torn write: the
        /// rename happens, the content is a prefix).
        TornWrite {
            /// Bytes of the image that reach the disk.
            keep: usize,
        },
        /// Drop the last `drop` bytes of the image (short write).
        ShortWrite {
            /// Bytes missing from the end of the image.
            drop: usize,
        },
        /// Flip one bit at byte `offset` (modulo the image length).
        BitFlip {
            /// Byte offset of the flipped bit.
            offset: usize,
        },
        /// Crash after staging but before the rename: the generation never
        /// becomes visible; older generations are untouched.
        CrashBeforeRename,
    }

    thread_local! {
        static PLAN: Cell<Option<FaultKind>> = const { Cell::new(None) };
    }

    /// A one-shot fault armed on the current thread.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FaultPlan {
        /// The damage to inject into the next write.
        pub kind: FaultKind,
    }

    impl FaultPlan {
        /// Arms this plan (replacing any previous one). The next
        /// `SnapshotStore::write` on this thread consumes it.
        pub fn arm(self) {
            PLAN.with(|p| p.set(Some(self.kind)));
        }

        /// Disarms any pending plan on this thread.
        pub fn disarm() {
            PLAN.with(|p| p.set(None));
        }
    }

    /// Consumes and returns the plan armed on this thread, if any —
    /// lets test harnesses assert what a hook armed without performing a
    /// write.
    pub fn take_armed() -> Option<FaultKind> {
        PLAN.with(|p| p.take())
    }

    /// Consumes the armed plan, mutating `image` in place for the data
    /// faults; returns the kind so the writer can handle
    /// [`FaultKind::CrashBeforeRename`] specially.
    pub(crate) fn apply(image: &mut Vec<u8>) -> Option<FaultKind> {
        let kind = PLAN.with(|p| p.take())?;
        match kind {
            FaultKind::TornWrite { keep } => image.truncate(keep.min(image.len())),
            FaultKind::ShortWrite { drop } => {
                let new_len = image.len().saturating_sub(drop);
                image.truncate(new_len);
            }
            FaultKind::BitFlip { offset } => {
                if !image.is_empty() {
                    let i = offset % image.len();
                    image[i] ^= 0x01;
                }
            }
            FaultKind::CrashBeforeRename => {}
        }
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!(
            "itdb_store_{name}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(&dir).unwrap()
    }

    fn sections() -> Vec<Section> {
        vec![
            Section::new(1, b"meta".to_vec()),
            Section::new(2, vec![0u8; 100]),
        ]
    }

    #[test]
    fn write_then_load_round_trips() {
        let store = temp_store("roundtrip");
        let w = store.write(&sections()).unwrap();
        assert_eq!(w.generation, 1);
        assert!(w.bytes > 0);
        let rec = store.load_latest().unwrap();
        let (g, loaded) = rec.snapshot.unwrap();
        assert_eq!(g, 1);
        assert_eq!(loaded, sections());
        assert!(rec.skipped.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn generations_increase_and_old_ones_are_pruned() {
        let store = temp_store("prune");
        for _ in 0..5 {
            store.write(&sections()).unwrap();
        }
        let gens = store.generations().unwrap();
        assert_eq!(gens, vec![4, 5], "keeps the newest two");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_store_loads_nothing() {
        let store = temp_store("empty");
        let rec = store.load_latest().unwrap();
        assert!(rec.snapshot.is_none());
        assert!(matches!(
            store.load_generation(1),
            Err(StoreError::NoSnapshot)
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_file_is_detected_and_skipped() {
        let store = temp_store("trunc");
        store.write(&sections()).unwrap();
        let w2 = store.write(&sections()).unwrap();
        // Tear the newest file in half.
        let path = store.path_of(w2.generation);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.load_generation(w2.generation),
            Err(StoreError::Truncated)
        ));
        let rec = store.load_latest().unwrap();
        assert_eq!(rec.snapshot.unwrap().0, w2.generation - 1);
        assert_eq!(rec.skipped.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn flipped_payload_bit_fails_its_section_checksum() {
        let store = temp_store("bitflip");
        store.write(&sections()).unwrap();
        let w2 = store.write(&sections()).unwrap();
        let path = store.path_of(w2.generation);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1; // inside the final section's payload
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_generation(w2.generation),
            Err(StoreError::ChecksumMismatch { section: 2 })
        ));
        let rec = store.load_latest().unwrap();
        assert_eq!(rec.snapshot.unwrap().0, w2.generation - 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    /// The recovery walk must hold up mid-write: a corrupt newest
    /// generation, a valid older one, and an in-flight `.tmp` staging file
    /// (as left by a writer that has not yet renamed) coexist; the load
    /// lands on the older good generation, reports the damage, and never
    /// mistakes the staging file for a generation.
    #[test]
    fn corrupt_newest_with_inflight_staging_falls_back_to_valid_older() {
        let store = temp_store("inflight");
        let w1 = store.write(&sections()).unwrap();
        let w2 = store.write(&sections()).unwrap();
        // Damage the newest generation (bit flip in its payload).
        let newest = store.path_of(w2.generation);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        fs::write(&newest, &bytes).unwrap();
        // Simulate an in-flight write: a staged-but-unrenamed temp image
        // for the next generation, plus a half-written garbage temp.
        let staged = store
            .dir()
            .join(format!(".snap-{:020}.tmp", w2.generation + 1));
        fs::write(&staged, SnapshotStore::encode(&sections())).unwrap();
        fs::write(store.dir().join(".snap-junk.tmp"), b"partial").unwrap();

        let gens = store.generations().unwrap();
        assert_eq!(
            gens,
            vec![w1.generation, w2.generation],
            "temp files are not generations"
        );
        let rec = store.load_latest().unwrap();
        let (g, loaded) = rec.snapshot.unwrap();
        assert_eq!(g, w1.generation, "fell back past the damaged newest");
        assert_eq!(loaded, sections());
        assert_eq!(rec.skipped.len(), 1);
        assert_eq!(rec.skipped[0].0, w2.generation);
        assert!(matches!(
            rec.skipped[0].1,
            StoreError::ChecksumMismatch { .. }
        ));
        // A subsequent write allocates past the damaged generation and
        // becomes the new latest.
        let w3 = store.write(&sections()).unwrap();
        assert_eq!(w3.generation, w2.generation + 1);
        let rec = store.load_latest().unwrap();
        assert_eq!(rec.snapshot.unwrap().0, w3.generation);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn foreign_file_has_bad_magic() {
        let store = temp_store("magic");
        fs::write(store.path_of(7), b"definitely not a snapshot").unwrap();
        assert!(matches!(
            store.load_generation(7),
            Err(StoreError::BadMagic)
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn future_version_is_rejected_not_misread() {
        let store = temp_store("version");
        store.write(&sections()).unwrap();
        let path = store.path_of(1);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0xFF; // bump the version field
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_generation(1),
            Err(StoreError::UnsupportedVersion(_))
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_temp_files_survive_a_write() {
        let store = temp_store("tmpclean");
        store.write(&sections()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(store.dir());
    }
}
