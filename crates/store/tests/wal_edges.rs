//! WAL edge-case coverage: empty logs, records landing exactly on the
//! segment boundary, torn tails on the newest segment, and (with
//! `--features fault`) injected torn/short/bit-flip appends. Each test
//! asserts the recovery contract: replay returns exactly the records an
//! uninterrupted reader would have seen, minus any un-durable tail.

use itdb_store::{FsyncPolicy, Wal, WalOptions};
use std::fs::{self, OpenOptions};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itdb_wal_edge_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn payload(i: u64) -> Vec<u8> {
    // Varied, deterministic payloads so CRC coverage is non-trivial.
    (0..24)
        .map(|b| (i as u8).wrapping_mul(31).wrapping_add(b))
        .collect()
}

/// Appends `n` records and returns what an uninterrupted reference run
/// would replay.
fn reference(n: u64) -> Vec<(u64, Vec<u8>)> {
    (1..=n).map(|i| (i, payload(i))).collect()
}

fn replayed(dir: &PathBuf, opts: WalOptions) -> Vec<(u64, Vec<u8>)> {
    let (_, rec) = Wal::open(dir, opts).unwrap();
    rec.records
        .into_iter()
        .map(|r| (r.seq, r.payload))
        .collect()
}

#[test]
fn empty_log_opens_clean_and_replays_nothing() {
    let dir = temp_dir("empty");
    let (wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
    assert!(rec.records.is_empty());
    assert!(!rec.truncated_tail);
    assert_eq!(wal.next_seq(), 1);
    assert_eq!(wal.stats().segments, 1);
    drop(wal);
    // Reopening the still-empty log is also clean.
    let (wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
    assert!(rec.records.is_empty());
    assert_eq!(wal.next_seq(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn record_exactly_at_segment_boundary_rotates_and_replays() {
    let dir = temp_dir("boundary");
    // Header is 20 bytes; each frame is 16 + payload(24) = 40 bytes.
    // segment_bytes = 20 + 2*40 lands the rotation check exactly at the
    // boundary after the second record.
    let opts = WalOptions {
        segment_bytes: 20 + 2 * 40,
        fsync: FsyncPolicy::Always,
    };
    let (mut wal, _) = Wal::open(&dir, opts).unwrap();
    for i in 1..=6u64 {
        wal.append(&payload(i)).unwrap();
    }
    let stats = wal.stats();
    assert_eq!(stats.segments, 3, "two records per segment exactly");
    assert_eq!(stats.segment_bytes, 20 + 2 * 40);
    drop(wal);
    assert_eq!(replayed(&dir, opts), reference(6));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn newest_segment_missing_tail_truncates_and_replays_prefix() {
    let dir = temp_dir("torn_tail");
    let opts = WalOptions::default();
    let (mut wal, _) = Wal::open(&dir, opts).unwrap();
    for i in 1..=5u64 {
        wal.append(&payload(i)).unwrap();
    }
    drop(wal);
    // Chop 10 bytes off the newest segment: record 5's frame is torn.
    let seg = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .max()
        .unwrap();
    let len = fs::metadata(&seg).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 10)
        .unwrap();

    let (wal, rec) = Wal::open(&dir, opts).unwrap();
    assert!(rec.truncated_tail, "torn tail must be detected");
    assert_eq!(wal.stats().truncated_tails, 1);
    assert_eq!(
        rec.records
            .into_iter()
            .map(|r| (r.seq, r.payload))
            .collect::<Vec<_>>(),
        reference(4),
        "replay equals the uninterrupted run minus the torn record"
    );
    // The log continues: next append reuses seq 5 and a fresh reopen sees
    // a fully consistent history again.
    let mut wal = wal;
    assert_eq!(wal.next_seq(), 5);
    wal.append(&payload(5)).unwrap();
    drop(wal);
    assert_eq!(replayed(&dir, opts), reference(5));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_then_reopen_starts_at_surviving_segment() {
    let dir = temp_dir("compact_reopen");
    let opts = WalOptions {
        segment_bytes: 100,
        fsync: FsyncPolicy::Batch(8),
    };
    let (mut wal, _) = Wal::open(&dir, opts).unwrap();
    for i in 1..=12u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.flush().unwrap();
    let removed = wal.compact_through(6).unwrap();
    assert!(removed >= 1, "at least one sealed segment is covered");
    drop(wal);
    let survivors = replayed(&dir, opts);
    assert_eq!(survivors.last().unwrap().0, 12);
    assert!(
        survivors.iter().all(|(seq, p)| *p == payload(*seq)),
        "surviving records are byte-identical to the reference"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compact_through_never_deletes_a_needed_record() {
    // The checkpoint pipeline compacts through `applied_seq` after every
    // snapshot. Whatever that sequence is — mid-segment, the last record
    // of a sealed segment (the exact boundary), the first record of the
    // next one, or the newest record in the active segment — every
    // record *past* it must still replay, because the checkpoint does
    // not cover them. With 2 records per segment, seq 2/4/6 are exact
    // segment boundaries; sweep every cut to catch an off-by-one on
    // either side.
    for cut in 1..=12u64 {
        let dir = temp_dir(&format!("cut{cut}"));
        let opts = WalOptions {
            segment_bytes: 20 + 2 * 40,
            fsync: FsyncPolicy::Always,
        };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 1..=12u64 {
            wal.append(&payload(i)).unwrap();
        }
        wal.compact_through(cut).unwrap();
        drop(wal);
        let survivors = replayed(&dir, opts);
        for seq in cut + 1..=12 {
            assert!(
                survivors
                    .iter()
                    .any(|(s, p)| *s == seq && *p == payload(seq)),
                "compact_through({cut}) lost record {seq}, which no checkpoint covers"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[cfg(feature = "fault")]
mod injected {
    use super::*;
    use itdb_store::fault::{FaultKind, FaultPlan};

    /// Appends 4 good records, injects `kind` into the 5th append, then
    /// reopens: recovery must truncate the damaged tail and replay the
    /// 4-record prefix byte-identically.
    fn assert_tail_recovers(name: &str, kind: FaultKind) {
        let dir = temp_dir(name);
        let opts = WalOptions::default();
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 1..=4u64 {
            wal.append(&payload(i)).unwrap();
        }
        FaultPlan { kind }.arm();
        // The append itself "succeeds" from the process's point of view —
        // the damage models what actually reached the platter.
        let _ = wal.append(&payload(5));
        drop(wal);

        let (wal, rec) = Wal::open(&dir, opts).unwrap();
        assert_eq!(wal.stats().truncated_tails, 1, "damage detected");
        assert_eq!(
            rec.records
                .into_iter()
                .map(|r| (r.seq, r.payload))
                .collect::<Vec<_>>(),
            reference(4),
            "prefix replays byte-identically after {kind:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_truncates_to_last_good_record() {
        // Keep only 7 bytes of the 40-byte frame.
        assert_tail_recovers("inj_torn", FaultKind::TornWrite { keep: 7 });
    }

    #[test]
    fn short_append_truncates_to_last_good_record() {
        assert_tail_recovers("inj_short", FaultKind::ShortWrite { drop: 5 });
    }

    #[test]
    fn bit_flip_fails_crc_and_truncates() {
        assert_tail_recovers("inj_flip", FaultKind::BitFlip { offset: 21 });
    }
}
