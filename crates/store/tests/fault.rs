//! Fault-injected recovery: each synthetic write fault must leave the
//! store in a state where `load_latest` still returns the last good
//! generation. Run with `cargo test -p itdb-store --features fault`.

#![cfg(feature = "fault")]

use itdb_store::fault::{FaultKind, FaultPlan};
use itdb_store::{Section, SnapshotStore, StoreError};
use std::fs;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itdb_store_fault_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sections(marker: u8) -> Vec<Section> {
    vec![
        Section::new(1, vec![marker; 32]),
        Section::new(2, (0..200u8).collect()),
    ]
}

/// Writes a good generation, injects `kind` into the next write, and
/// asserts that recovery falls back to the good generation while the
/// damaged one is reported (or, for crash-before-rename, absent).
fn assert_recovers_from(name: &str, kind: FaultKind, expect_skipped: bool) {
    let dir = temp_dir(name);
    let store = SnapshotStore::open(&dir).unwrap();
    let good = store.write(&sections(0xAA)).unwrap();

    FaultPlan { kind }.arm();
    let bad = store.write(&sections(0xBB)).unwrap();
    assert_eq!(bad.generation, good.generation + 1);

    let rec = store.load_latest().unwrap();
    let (g, loaded) = rec.snapshot.expect("last good generation must survive");
    assert_eq!(g, good.generation, "fell back to the pre-fault generation");
    assert_eq!(
        loaded,
        sections(0xAA),
        "recovered content is the good image"
    );
    if expect_skipped {
        assert_eq!(rec.skipped.len(), 1, "damaged generation is reported");
        assert_eq!(rec.skipped[0].0, bad.generation);
    } else {
        assert!(
            rec.skipped.is_empty(),
            "crash-before-rename leaves no visible damaged file"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_falls_back_to_last_good_generation() {
    assert_recovers_from("torn", FaultKind::TornWrite { keep: 20 }, true);
}

#[test]
fn short_write_falls_back_to_last_good_generation() {
    assert_recovers_from("short", FaultKind::ShortWrite { drop: 5 }, true);
}

#[test]
fn bit_flip_falls_back_to_last_good_generation() {
    // Flip a bit inside the second section's payload.
    assert_recovers_from("bitflip", FaultKind::BitFlip { offset: 120 }, true);
}

#[test]
fn crash_before_rename_never_exposes_the_new_generation() {
    assert_recovers_from("crash", FaultKind::CrashBeforeRename, false);
}

#[test]
fn faults_are_one_shot() {
    let dir = temp_dir("oneshot");
    let store = SnapshotStore::open(&dir).unwrap();
    FaultPlan {
        kind: FaultKind::TornWrite { keep: 4 },
    }
    .arm();
    store.write(&sections(1)).unwrap(); // consumes the plan
    let ok = store.write(&sections(2)).unwrap(); // clean write
    let rec = store.load_latest().unwrap();
    assert_eq!(rec.snapshot.unwrap().0, ok.generation);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_is_a_checksum_mismatch_not_garbage() {
    let dir = temp_dir("typed");
    let store = SnapshotStore::open(&dir).unwrap();
    FaultPlan {
        kind: FaultKind::BitFlip { offset: 40 },
    }
    .arm();
    let w = store.write(&sections(3)).unwrap();
    match store.load_generation(w.generation) {
        Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Truncated) => {}
        other => panic!("expected typed corruption error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}
