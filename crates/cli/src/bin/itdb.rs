//! `itdb` — the workspace's command-line entry point.
//!
//! ```text
//! itdb serve --addr 127.0.0.1:7464 workload.itdb    # HTTP serve mode
//! itdb serve --addr 127.0.0.1:7464 --fuel 100000 --timeout-ms 2000 workload.itdb
//! ```
//!
//! `serve` keeps one workload (tuples + rules, the declarative subset of
//! the shell's script format) resident and answers `POST /query` requests
//! against it, each evaluation under its own resource governor. `GET
//! /healthz`, `GET /metrics` (Prometheus text), `GET /events` (live
//! JSONL trace stream) and the `GET /debug/*` introspection endpoints
//! ride along. Every request carries an `X-Itdb-Request-Id`; slow
//! queries are logged with a full span profile (`--slow-query-ms`), and
//! a per-worker flight recorder keeps the last events around for
//! post-mortem dumps. Ctrl-C drains in-flight requests and exits
//! cleanly.
//!
//! The interactive shell lives in its own binary, `itdb-shell`.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use itdb_core::parse_workload;
use itdb_serve::{FsyncPolicy, IngestConfig, ServeConfig, Server};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

const USAGE: &str = "\
usage: itdb serve --addr HOST:PORT [options] WORKLOAD
  --addr HOST:PORT  listen address, e.g. 127.0.0.1:7464 (required)
  --workers N       worker threads (default 8); /events streams run on
                    their own dedicated streamer threads
  --fuel N          default derivation-fuel ceiling per /query request
                    (overridable per request via the X-Itdb-Fuel header)
  --timeout-ms N    default wall-clock deadline per /query request
                    (overridable via the X-Itdb-Timeout-Ms header)
  --max-queued N    accepted connections held before answering 503 (default 64)
  --events-queue N  per-subscriber /events queue depth (default 1024)
  --queue-deadline-ms N
                    shed queued requests older than this with 503 +
                    Retry-After instead of serving them late (default 5000)
  --max-requests-per-conn N
                    keep-alive requests served per connection (default 32)
  --keepalive-idle-ms N
                    idle keep-alive connections are closed after this
                    (default 5000)
  --checkpoint DIR  persist service totals to DIR in the background and
                    resume them on restart (survives SIGKILL)
  --wal DIR         enable streaming ingestion (POST /facts): facts are
                    made durable in a write-ahead log under DIR, applied
                    to a resident incrementally-maintained model, and
                    replayed from checkpoint + log on restart
  --wal-fsync POLICY
                    WAL flush policy: `always` (default; every record is
                    durable before its 202) or `batch:N` (group commit,
                    a crash may lose up to N-1 acknowledged records)
  --dedup-window N  request ids remembered for idempotent POST /facts
                    retries (default 1024; must be at least 1)
  --slow-query-ms N log a full profile record for any /query slower than
                    N milliseconds (see --slow-log)
  --slow-log PATH   append slow-query records to PATH as JSONL (default:
                    stdout, one `{\"log\":\"slow_query\",…}` line each)
  --flight N        per-worker flight-recorder ring capacity in events
                    (default 256; 0 disables the recorder)
  --no-access-log   suppress the per-request JSONL access-log line
  WORKLOAD          file of `tuple NAME (…)` and `rule CLAUSE.` lines

The interactive shell is the separate `itdb-shell` binary.";

/// Parsed `itdb serve` invocation.
#[derive(Debug)]
struct ServeArgs {
    addr: SocketAddr,
    workload_path: String,
    config: ServeConfig,
}

/// Resolves `--addr`: must be `HOST:PORT` and resolvable. The error text
/// explains what was wrong instead of panicking or passing garbage to
/// `bind`.
fn parse_addr(value: &str) -> Result<SocketAddr, String> {
    if !value.contains(':') {
        return Err(format!(
            "--addr: `{value}` has no port; expected HOST:PORT, e.g. 127.0.0.1:7464"
        ));
    }
    match value.to_socket_addrs() {
        Ok(mut addrs) => addrs
            .next()
            .ok_or_else(|| format!("--addr: `{value}` resolved to no address")),
        Err(e) => Err(format!(
            "--addr: `{value}` is not a valid HOST:PORT address: {e}"
        )),
    }
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut workload_path: Option<String> = None;
    // The binary logs requests by default; tests and embedders that
    // construct `ServeConfig` directly stay quiet unless they opt in.
    let mut config = ServeConfig {
        access_log: true,
        ..ServeConfig::default()
    };
    // `--wal` / `--wal-fsync` combine order-independently; resolved after
    // the loop.
    let mut wal_dir: Option<std::path::PathBuf> = None;
    let mut wal_fsync: Option<FsyncPolicy> = None;
    let mut dedup_window: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--addr needs a HOST:PORT argument".to_string())?;
                addr = Some(parse_addr(value)?);
            }
            "--checkpoint" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--checkpoint needs a directory argument".to_string())?;
                config.checkpoint_dir = Some(std::path::PathBuf::from(value));
            }
            "--slow-log" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--slow-log needs a file argument".to_string())?;
                config.slow_log = Some(std::path::PathBuf::from(value));
            }
            "--wal" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--wal needs a directory argument".to_string())?;
                wal_dir = Some(std::path::PathBuf::from(value));
            }
            "--wal-fsync" => {
                let value = it.next().ok_or_else(|| {
                    "--wal-fsync needs a policy: `always` or `batch:N`".to_string()
                })?;
                wal_fsync =
                    Some(FsyncPolicy::parse(value).map_err(|e| format!("--wal-fsync: {e}"))?);
            }
            "--dedup-window" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--dedup-window needs a numeric argument".to_string())?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--dedup-window: `{value}` is not a number"))?;
                if n == 0 {
                    return Err(
                        "--dedup-window: 0 would disable idempotent replay of retried \
                         batches; use at least 1"
                            .to_string(),
                    );
                }
                dedup_window = Some(n);
            }
            "--no-access-log" => config.access_log = false,
            "--workers"
            | "--fuel"
            | "--timeout-ms"
            | "--max-queued"
            | "--events-queue"
            | "--queue-deadline-ms"
            | "--max-requests-per-conn"
            | "--keepalive-idle-ms"
            | "--slow-query-ms"
            | "--flight" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a numeric argument"))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("{arg}: `{value}` is not a number"))?;
                match arg.as_str() {
                    "--workers" => {
                        if n == 0 {
                            return Err("--workers: need at least one worker".to_string());
                        }
                        config.workers = n as usize;
                    }
                    "--fuel" => config.defaults.fuel = Some(n),
                    "--timeout-ms" => config.defaults.timeout = Some(Duration::from_millis(n)),
                    "--max-queued" => config.max_queued = (n as usize).max(1),
                    "--queue-deadline-ms" => config.queue_deadline = Duration::from_millis(n),
                    "--max-requests-per-conn" => config.max_requests_per_conn = (n as usize).max(1),
                    "--keepalive-idle-ms" => {
                        config.keepalive_idle = Duration::from_millis(n.max(1))
                    }
                    "--slow-query-ms" => config.slow_query_ms = Some(n),
                    "--flight" => config.flight_capacity = n as usize,
                    _ => config.events_queue_cap = (n as usize).max(1),
                }
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if workload_path.is_some() {
                    return Err("at most one workload file".to_string());
                }
                workload_path = Some(path.to_string());
            }
        }
    }
    match (wal_dir, wal_fsync, dedup_window) {
        (Some(dir), fsync, window) => {
            let mut ingest = IngestConfig::new(dir);
            if let Some(policy) = fsync {
                ingest.wal.fsync = policy;
            }
            if let Some(window) = window {
                ingest.dedup_window = window;
            }
            config.ingest = Some(ingest);
        }
        (None, Some(_), _) => {
            return Err("--wal-fsync needs --wal DIR (no WAL to apply the policy to)".to_string())
        }
        (None, None, Some(_)) => {
            return Err(
                "--dedup-window needs --wal DIR (no ingest pipeline to configure)".to_string(),
            )
        }
        (None, None, None) => {}
    }
    Ok(ServeArgs {
        addr: addr.ok_or_else(|| "serve needs --addr HOST:PORT".to_string())?,
        workload_path: workload_path.ok_or_else(|| "serve needs a workload file".to_string())?,
        config,
    })
}

/// Cancellation token shared between the SIGINT handler and the server:
/// the handler flips an atomic flag; the accept loop notices and drains.
static SHUTDOWN: std::sync::OnceLock<itdb_core::CancelToken> = std::sync::OnceLock::new();

fn shutdown_token() -> &'static itdb_core::CancelToken {
    SHUTDOWN.get_or_init(itdb_core::CancelToken::new)
}

#[cfg(unix)]
fn install_sigint_handler() {
    // Same no-libc trick as itdb-shell: `signal` is in the C runtime
    // already linked into every Rust binary.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        if let Some(token) = SHUTDOWN.get() {
            token.cancel();
        }
    }
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

fn fail(msg: &str) -> ! {
    if msg.is_empty() {
        println!("{USAGE}");
        std::process::exit(0);
    }
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => fail("expected a command (try `itdb serve --addr HOST:PORT WORKLOAD`)"),
    };
    match command {
        "serve" => {
            let parsed = match parse_serve_args(rest) {
                Ok(p) => p,
                Err(msg) => fail(&msg),
            };
            serve(parsed);
        }
        "--help" | "-h" | "help" => fail(""),
        other => fail(&format!(
            "unknown command `{other}` (the interactive shell is the `itdb-shell` binary)"
        )),
    }
}

fn serve(args: ServeArgs) {
    #[cfg(feature = "chaos")]
    let args = {
        let mut args = args;
        args.config.chaos = itdb_serve::chaos::ChaosConfig::from_env();
        if args.config.chaos.is_some() {
            eprintln!("itdb-serve: CHAOS INJECTION ENABLED (ITDB_CHAOS_* set)");
        }
        args
    };
    let text = match std::fs::read_to_string(&args.workload_path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read `{}`: {e}", args.workload_path)),
    };
    let workload = match parse_workload(&text) {
        Ok(w) => w,
        Err(e) => fail(&format!("`{}`: {e}", args.workload_path)),
    };
    let rules = workload.program.clauses.len();
    let relations = workload.edb.len();
    let checkpoint_dir = args.config.checkpoint_dir.clone();
    let ingest_config = args.config.ingest.clone();
    let server = match Server::bind(args.addr, workload, args.config) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot bind {}: {e}", args.addr)),
    };
    install_sigint_handler();
    println!(
        "itdb-serve: {} rules, {} extensional relations, listening on http://{}",
        rules,
        relations,
        server.local_addr()
    );
    if let Some(dir) = &checkpoint_dir {
        println!("durability: background checkpoints in {}", dir.display());
    }
    if let Some(ic) = &ingest_config {
        println!(
            "ingestion: WAL in {} (fsync {})",
            ic.wal_dir.display(),
            ic.wal.fsync
        );
        if let Some(ingest) = server.ingest() {
            let boot = ingest.boot_report();
            println!(
                "recovery: checkpoint {}, {} WAL records replayed, last seq {}",
                if boot.restored_checkpoint {
                    "restored"
                } else {
                    "absent"
                },
                boot.replayed_records,
                boot.last_seq
            );
        }
    }
    let facts = if ingest_config.is_some() {
        " /facts"
    } else {
        ""
    };
    println!(
        "endpoints: /healthz /metrics /query{facts} /events /debug/flight /debug/profile \
         /debug/requests  (Ctrl-C to drain and exit)"
    );
    if let Err(e) = server.run(shutdown_token()) {
        eprintln!("error: serve loop failed: {e}");
        std::process::exit(1);
    }
    println!("itdb-serve: drained, bye");
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_serve_invocation() {
        let p = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:7464",
            "--workers",
            "4",
            "--fuel",
            "100000",
            "--timeout-ms",
            "2000",
            "--queue-deadline-ms",
            "750",
            "--max-requests-per-conn",
            "8",
            "--keepalive-idle-ms",
            "1250",
            "--checkpoint",
            "/tmp/itdb-ck",
            "--slow-query-ms",
            "250",
            "--slow-log",
            "/tmp/itdb-slow.jsonl",
            "--flight",
            "512",
            "--no-access-log",
            "workload.itdb",
        ]))
        .unwrap();
        assert_eq!(p.addr.port(), 7464);
        assert_eq!(p.workload_path, "workload.itdb");
        assert_eq!(p.config.workers, 4);
        assert_eq!(p.config.defaults.fuel, Some(100_000));
        assert_eq!(p.config.defaults.timeout, Some(Duration::from_millis(2000)));
        assert_eq!(p.config.queue_deadline, Duration::from_millis(750));
        assert_eq!(p.config.max_requests_per_conn, 8);
        assert_eq!(p.config.keepalive_idle, Duration::from_millis(1250));
        assert_eq!(
            p.config.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/itdb-ck"))
        );
        assert_eq!(p.config.slow_query_ms, Some(250));
        assert_eq!(
            p.config.slow_log.as_deref(),
            Some(std::path::Path::new("/tmp/itdb-slow.jsonl"))
        );
        assert_eq!(p.config.flight_capacity, 512);
        assert!(!p.config.access_log);
    }

    #[test]
    fn observability_defaults_for_the_binary() {
        // The binary turns the access log on by default; the recorder and
        // slow-query log keep their library defaults.
        let p = parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "w"])).unwrap();
        assert!(p.config.access_log);
        assert_eq!(p.config.slow_query_ms, None);
        assert_eq!(p.config.slow_log, None);
        assert_eq!(p.config.flight_capacity, 256);
        // `--flight 0` disables the recorder entirely.
        let p = parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "--flight", "0", "w"])).unwrap();
        assert_eq!(p.config.flight_capacity, 0);
        // --slow-log without a path is an error, not a silent default.
        let err = parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "--slow-log"])).unwrap_err();
        assert!(err.contains("--slow-log"), "{err}");
    }

    #[test]
    fn wal_flags_enable_ingestion() {
        // No --wal: ingestion stays off.
        let p = parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "w"])).unwrap();
        assert!(p.config.ingest.is_none());
        // --wal alone: defaults to fsync always.
        let p = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal",
            "/tmp/itdb-wal",
            "w",
        ]))
        .unwrap();
        let ic = p.config.ingest.unwrap();
        assert_eq!(ic.wal_dir, std::path::PathBuf::from("/tmp/itdb-wal"));
        assert_eq!(ic.wal.fsync, FsyncPolicy::Always);
        // Order-independent combination with --wal-fsync.
        let p = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal-fsync",
            "batch:8",
            "--wal",
            "/tmp/itdb-wal",
            "w",
        ]))
        .unwrap();
        assert_eq!(p.config.ingest.unwrap().wal.fsync, FsyncPolicy::Batch(8));
        // --wal-fsync without --wal is an error, not silently ignored.
        let err = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal-fsync",
            "always",
            "w",
        ]))
        .unwrap_err();
        assert!(err.contains("--wal"), "{err}");
        // Bad policies are reported with the flag name.
        let err = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal",
            "d",
            "--wal-fsync",
            "sometimes",
            "w",
        ]))
        .unwrap_err();
        assert!(err.contains("--wal-fsync"), "{err}");
        let err = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal",
            "d",
            "--wal-fsync",
            "batch:0",
            "w",
        ]))
        .unwrap_err();
        assert!(err.contains("--wal-fsync"), "{err}");
        // Missing values keep the usage-shaped errors.
        let err = parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "--wal"])).unwrap_err();
        assert!(err.contains("--wal"), "{err}");
    }

    #[test]
    fn dedup_window_flag_is_validated() {
        // Default stands when the flag is absent.
        let p = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal",
            "/tmp/itdb-wal",
            "w",
        ]))
        .unwrap();
        assert_eq!(p.config.ingest.unwrap().dedup_window, 1024);
        // Boundary: 1 is the smallest accepted window.
        let p = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal",
            "/tmp/itdb-wal",
            "--dedup-window",
            "1",
            "w",
        ]))
        .unwrap();
        assert_eq!(p.config.ingest.unwrap().dedup_window, 1);
        // 0 is refused with an explanation, not silently clamped.
        let err = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal",
            "/tmp/itdb-wal",
            "--dedup-window",
            "0",
            "w",
        ]))
        .unwrap_err();
        assert!(err.contains("--dedup-window"), "{err}");
        assert!(err.contains("idempotent"), "{err}");
        // The flag is meaningless without a WAL.
        let err = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--dedup-window",
            "8",
            "w",
        ]))
        .unwrap_err();
        assert!(err.contains("--wal"), "{err}");
        // Non-numeric values name the flag.
        let err = parse_serve_args(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--wal",
            "d",
            "--dedup-window",
            "lots",
            "w",
        ]))
        .unwrap_err();
        assert!(err.contains("--dedup-window"), "{err}");
    }

    #[test]
    fn checkpoint_needs_a_directory() {
        let err = parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "--checkpoint"])).unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
    }

    #[test]
    fn addr_is_required_and_validated() {
        let err = parse_serve_args(&strs(&["workload.itdb"])).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        // No port.
        let err = parse_serve_args(&strs(&["--addr", "127.0.0.1", "w"])).unwrap_err();
        assert!(err.contains("no port"), "{err}");
        // Port out of range / garbage: an error message, not a panic.
        let err = parse_serve_args(&strs(&["--addr", "127.0.0.1:99999", "w"])).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = parse_serve_args(&strs(&["--addr", "not an addr:x", "w"])).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        // Missing value.
        let err = parse_serve_args(&strs(&["--addr"])).unwrap_err();
        assert!(err.contains("HOST:PORT"), "{err}");
    }

    #[test]
    fn numeric_flags_are_validated() {
        assert!(
            parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "--workers", "0", "w"])).is_err()
        );
        assert!(
            parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "--fuel", "lots", "w"])).is_err()
        );
        assert!(parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "--frobnicate", "w"])).is_err());
        assert!(parse_serve_args(&strs(&["--addr", "127.0.0.1:0", "a", "b"])).is_err());
        assert!(parse_serve_args(&strs(&["--addr", "127.0.0.1:0"])).is_err());
    }
}
