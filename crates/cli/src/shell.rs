//! The command interpreter behind the `itdb` shell.
//!
//! Each line is one command; [`Shell::execute`] returns the text to print,
//! which makes the interpreter directly testable. State covers all four
//! query surfaces of the workspace: a generalized database (EDB), a
//! deductive program (`itdb-core`), a Datalog1S program, and a Templog
//! program.

use itdb_core as core;
use itdb_core::{CancelToken, Completeness, Governor, GovernorConfig, Interruption};
use itdb_datalog1s as dl;
use itdb_foquery as fo;
use itdb_lrp::{parser as lrp_parser, Error, Result, DEFAULT_RESIDUE_BUDGET};
use itdb_templog as tl;
use itdb_trace::{fmt_duration, Profile, RingSink, SinkId, SpanKind};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Capacity of the in-memory event ring behind `trace on`.
const TRACE_RING_CAPACITY: usize = 4096;

/// Default `checkpoint every N` interval when a checkpoint directory is
/// set without choosing one.
const DEFAULT_CHECKPOINT_EVERY: u64 = 64;

/// Session-level resource limits applied to every evaluation command.
#[derive(Debug, Clone, Default)]
pub struct Limits {
    /// Fuel: maximum derived generalized tuples per evaluation.
    pub fuel: Option<u64>,
    /// Wall-clock deadline per evaluation, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Memory ceiling: maximum generalized tuples held at once.
    pub max_held: Option<u64>,
}

/// Interactive shell state.
#[derive(Default)]
pub struct Shell {
    edb: core::Database,
    /// Raw relation text per name (so `show` can reprint and `fo` can
    /// rebuild its database).
    relations: Vec<(String, itdb_lrp::GeneralizedRelation)>,
    program: core::Program,
    model: Option<core::Evaluation>,
    dl_program: dl::Program,
    tl_program: tl::TlProgram,
    limits: Limits,
    /// Derive-phase worker threads per evaluation (`parallel N` /
    /// `--parallel`). `None` inherits the engine default (which honours
    /// the `ITDB_PARALLEL` environment variable).
    parallel: Option<usize>,
    cancel: CancelToken,
    /// Append evaluation statistics to every `eval` output (`--stats`).
    auto_stats: bool,
    /// Append JSON statistics to every `eval` output (`--stats-json`).
    stats_json: bool,
    /// In-memory event ring installed by `trace on` (sink + registry id).
    ring: Option<(Arc<RingSink>, SinkId)>,
    /// Where to write a Prometheus metrics snapshot after each evaluation
    /// (`--metrics file.prom`).
    metrics_path: Option<PathBuf>,
    /// Durable checkpoint directory (`checkpoint DIR` / `--checkpoint`).
    checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every N iterations (0 = only on governor trips).
    checkpoint_every: u64,
    /// The next `eval` resumes from the latest checkpoint (one-shot).
    resume_pending: bool,
}

/// Which limit a `fuel`/`timeout` command adjusts.
#[derive(Clone, Copy)]
enum LimitKind {
    Fuel,
    Timeout,
}

impl LimitKind {
    fn command_name(self) -> &'static str {
        match self {
            LimitKind::Fuel => "fuel",
            LimitKind::Timeout => "timeout",
        }
    }
}

/// The outcome of one command.
pub enum Step {
    /// Print this text and continue.
    Continue(String),
    /// Exit the shell.
    Quit,
}

const HELP: &str = "\
commands:
  tuple NAME (lrp, ...; data, ...) [: constraints]   add a generalized tuple
  show [NAME]                list relations / print one
  rule CLAUSE.               add a deductive clause (itdb-core syntax)
  program                    print the deductive program
  eval                       run the closed-form bottom-up evaluation
  stats [--json]             statistics for the last eval (tuple flow, caches, index, timings)
  explain ATOM               derivation tree for a ground atom, e.g. explain p[10](a)
  profile                    re-run eval with span profiling; per-rule self-time table
  trace on|off|dump          buffer typed trace events in memory and inspect them
  query ATOM                 goal query against the last model (and the EDB)
  fo FORMULA                 first-order query over EDB + derived relations
  ask FORMULA                yes/no first-order query
  dl1s CLAUSE.               add a Datalog1S clause
  dl1s-eval                  detect the eventually periodic minimal model
  templog CLAUSE.            add a Templog clause
  templog-eval               evaluate the Templog program
  fuel N|off                 cap derived tuples per evaluation
  timeout MS|off             wall-clock deadline per evaluation
  parallel N|off             derive-phase worker threads (bare: status);
                             models are byte-identical for every N
  limits                     show current resource limits
  checkpoint DIR|every N|every trips|off
                             durable crash-safe snapshots of `eval` (bare: status)
  resume                     re-run `eval` from the latest checkpoint
  reset                      clear all state (limits survive)
  help                       this text
  quit                       leave";

impl Shell {
    /// A fresh shell.
    pub fn new() -> Self {
        Shell {
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            ..Shell::default()
        }
    }

    /// Replaces the session resource limits (used by `--fuel`/`--timeout-ms`).
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Sets the derive-phase worker count for every evaluation (used by
    /// the `--parallel` flag; the `parallel` command works regardless).
    /// `None` inherits the engine default.
    pub fn set_parallel(&mut self, workers: Option<usize>) {
        self.parallel = workers;
    }

    /// Installs the cancellation token shared with the Ctrl-C handler.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Appends evaluation statistics to every `eval` output (used by the
    /// `--stats` flag; the `stats` command works regardless).
    pub fn set_auto_stats(&mut self, on: bool) {
        self.auto_stats = on;
    }

    /// Appends statistics as one JSON object to every `eval` output (used
    /// by the `--stats-json` flag; `stats --json` works regardless).
    pub fn set_stats_json(&mut self, on: bool) {
        self.stats_json = on;
    }

    /// After every evaluation, writes a Prometheus text-format metrics
    /// snapshot (statistics plus a span profile) to `path` (used by the
    /// `--metrics` flag).
    pub fn set_metrics_path(&mut self, path: Option<PathBuf>) {
        self.metrics_path = path;
    }

    /// Enables durable checkpointing of `eval` into `dir` (used by the
    /// `--checkpoint` flag; the `checkpoint` command works regardless).
    pub fn set_checkpoint_dir(&mut self, dir: Option<PathBuf>) {
        self.checkpoint_dir = dir;
    }

    /// Sets the every-N-iterations checkpoint cadence; 0 means checkpoint
    /// only when the governor trips (used by `--checkpoint-every`).
    pub fn set_checkpoint_every(&mut self, n: u64) {
        self.checkpoint_every = n;
    }

    /// Makes the next `eval` resume from the latest checkpoint in the
    /// checkpoint directory (used by the `--resume` flag).
    pub fn set_resume_pending(&mut self, on: bool) {
        self.resume_pending = on;
    }

    /// Executes one command line.
    pub fn execute(&mut self, line: &str) -> Step {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            return Step::Continue(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let out = match cmd {
            "help" => Ok(HELP.to_string()),
            "quit" | "exit" => return Step::Quit,
            "reset" => {
                // Limits and the cancellation token are session
                // configuration, not evaluation state: keep them so the
                // Ctrl-C handler installed by `main` stays wired up.
                let limits = self.limits.clone();
                let parallel = self.parallel;
                let cancel = self.cancel.clone();
                let auto_stats = self.auto_stats;
                let stats_json = self.stats_json;
                let ring = self.ring.take();
                let metrics_path = self.metrics_path.take();
                let checkpoint_dir = self.checkpoint_dir.take();
                let checkpoint_every = self.checkpoint_every;
                *self = Shell::new();
                self.limits = limits;
                self.parallel = parallel;
                self.cancel = cancel;
                self.auto_stats = auto_stats;
                self.stats_json = stats_json;
                self.ring = ring;
                self.metrics_path = metrics_path;
                self.checkpoint_dir = checkpoint_dir;
                self.checkpoint_every = checkpoint_every;
                Ok("state cleared".to_string())
            }
            "fuel" => self.cmd_limit(rest, LimitKind::Fuel),
            "timeout" => self.cmd_limit(rest, LimitKind::Timeout),
            "parallel" => self.cmd_parallel(rest),
            "limits" => Ok(self.fmt_limits()),
            "tuple" => self.cmd_tuple(rest),
            "show" => self.cmd_show(rest),
            "rule" => self.cmd_rule(rest),
            "program" => Ok(format!("{}", self.program)),
            "eval" => self.cmd_eval(),
            "stats" => self.cmd_stats(rest),
            "explain" => self.cmd_explain(rest),
            "profile" => self.cmd_profile(),
            "trace" => self.cmd_trace(rest),
            "query" => self.cmd_query(rest),
            "fo" => self.cmd_fo(rest, false),
            "ask" => self.cmd_fo(rest, true),
            "dl1s" => self.cmd_dl1s(rest),
            "dl1s-eval" => self.cmd_dl1s_eval(),
            "templog" => self.cmd_templog(rest),
            "templog-eval" => self.cmd_templog_eval(),
            "checkpoint" => self.cmd_checkpoint(rest),
            "resume" => self.cmd_resume(),
            other => Err(Error::Eval(format!(
                "unknown command `{other}` (try `help`)"
            ))),
        };
        Step::Continue(match out {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        })
    }

    fn cmd_limit(&mut self, rest: &str, kind: LimitKind) -> Result<String> {
        let slot = match kind {
            LimitKind::Fuel => &mut self.limits.fuel,
            LimitKind::Timeout => &mut self.limits.timeout_ms,
        };
        *slot = match rest {
            "off" | "none" => None,
            "" => return Err(Error::Eval(format!("usage: {} N|off", kind.command_name()))),
            n => Some(n.parse::<u64>().map_err(|_| {
                Error::Eval(format!("{}: `{n}` is not a number", kind.command_name()))
            })?),
        };
        Ok(self.fmt_limits())
    }

    fn cmd_parallel(&mut self, rest: &str) -> Result<String> {
        match rest {
            "" | "show" => {}
            "off" | "none" => self.parallel = None,
            n => {
                let n: usize = n
                    .parse()
                    .map_err(|_| Error::Eval(format!("parallel: `{n}` is not a number")))?;
                if n == 0 {
                    return Err(Error::Eval("parallel: need at least one worker".into()));
                }
                self.parallel = Some(n);
            }
        }
        Ok(match self.parallel {
            Some(1) => "parallel: 1 worker (sequential)".to_string(),
            Some(n) => format!("parallel: {n} workers (model stays byte-identical)"),
            None => format!(
                "parallel: default ({} worker{})",
                core::EvalOptions::default().parallel,
                if core::EvalOptions::default().parallel == 1 {
                    ""
                } else {
                    "s"
                }
            ),
        })
    }

    fn fmt_limits(&self) -> String {
        let show = |v: Option<u64>, unit: &str| match v {
            Some(n) => format!("{n}{unit}"),
            None => "unlimited".to_string(),
        };
        format!(
            "fuel: {}  timeout: {}",
            show(self.limits.fuel, " derived tuples"),
            show(self.limits.timeout_ms, " ms"),
        )
    }

    /// Governor configuration shared by all evaluation commands.
    fn governor_config(&self) -> GovernorConfig {
        let mut cfg = GovernorConfig::default().with_cancel(self.cancel.clone());
        if let Some(fuel) = self.limits.fuel {
            cfg = cfg.with_max_derived_tuples(fuel);
        }
        if let Some(ms) = self.limits.timeout_ms {
            cfg = cfg.with_timeout(Duration::from_millis(ms));
        }
        if let Some(held) = self.limits.max_held {
            cfg = cfg.with_max_held_tuples(held);
        }
        cfg
    }

    fn cmd_tuple(&mut self, rest: &str) -> Result<String> {
        let (name, tuple_text) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| Error::Eval("usage: tuple NAME (…)".into()))?;
        let tuple = lrp_parser::parse_tuple(tuple_text.trim())?;
        let schema = itdb_lrp::Schema::new(tuple.temporal_arity(), tuple.data_arity());
        let idx = match self.relations.iter().position(|(n, _)| n == name) {
            Some(idx) => {
                self.relations[idx].1.insert(tuple)?;
                idx
            }
            None => {
                let rel = itdb_lrp::GeneralizedRelation::from_tuples(schema, vec![tuple])?;
                self.relations.push((name.to_string(), rel));
                self.relations.len() - 1
            }
        };
        let rel = &self.relations[idx].1;
        self.edb.insert(name, rel.clone());
        self.model = None;
        Ok(format!("{name}: {} generalized tuple(s)", rel.len()))
    }

    fn cmd_show(&self, rest: &str) -> Result<String> {
        if rest.is_empty() {
            let mut out = String::new();
            for (name, rel) in &self.relations {
                let _ = writeln!(out, "{name} {} ({} tuples)", rel.schema(), rel.len());
            }
            if let Some(eval) = &self.model {
                for (name, rel) in &eval.idb {
                    let _ = writeln!(
                        out,
                        "{name} {} ({} tuples, derived)",
                        rel.schema(),
                        rel.len()
                    );
                }
            }
            if out.is_empty() {
                out = "no relations".to_string();
            }
            return Ok(out.trim_end().to_string());
        }
        if let Some((_, rel)) = self.relations.iter().find(|(n, _)| n == rest) {
            return Ok(format!("{rel}"));
        }
        if let Some(rel) = self.model.as_ref().and_then(|m| m.relation(rest)) {
            return Ok(format!("{rel}"));
        }
        Err(Error::Eval(format!("unknown relation `{rest}`")))
    }

    fn cmd_rule(&mut self, rest: &str) -> Result<String> {
        let clause = core::parse_clause(rest)?;
        self.program.clauses.push(clause);
        self.model = None;
        Ok(format!(
            "{} clause(s) in the program",
            self.program.clauses.len()
        ))
    }

    /// Opens the session's checkpoint store, if a directory is configured.
    fn checkpoint_store(&self) -> Result<Option<Arc<core::SnapshotStore>>> {
        match &self.checkpoint_dir {
            Some(dir) => {
                let store = core::SnapshotStore::open(dir).map_err(|e| {
                    Error::Eval(format!("checkpoint: cannot open {}: {e}", dir.display()))
                })?;
                Ok(Some(Arc::new(store)))
            }
            None => Ok(None),
        }
    }

    /// Runs one deductive evaluation under the session limits, honoring
    /// the observability configuration: profiles when requested (or when a
    /// metrics snapshot is due), flushes trace sinks so `--trace` files
    /// are complete per evaluation, and writes the metrics file. When a
    /// checkpoint directory is set, the run writes durable snapshots; when
    /// a resume is pending, it restarts from the latest readable one.
    ///
    /// The returned string carries machine-greppable checkpoint/resume
    /// notes (`resumed: generation N`, recovery lines) for the caller to
    /// prepend to its output.
    fn run_eval(
        &mut self,
        provenance: bool,
        want_profile: bool,
    ) -> Result<(core::Evaluation, Option<Profile>, String)> {
        // A Ctrl-C that arrived while the shell was idle must not abort the
        // next evaluation: the token only counts once armed mid-flight.
        self.cancel.reset();
        let mut notes = String::new();
        let store = self.checkpoint_store()?;
        let mut opts = core::EvalOptions {
            coalesce: true,
            provenance,
            max_derived_tuples: self.limits.fuel,
            timeout: self.limits.timeout_ms.map(Duration::from_millis),
            max_held_tuples: self.limits.max_held,
            cancel: Some(self.cancel.clone()),
            checkpoint: store
                .clone()
                .map(|s| core::CheckpointPolicy::every(s, self.checkpoint_every)),
            ..Default::default()
        };
        if let Some(workers) = self.parallel {
            opts.parallel = workers;
        }
        // Resolve a pending resume before evaluating: load the newest
        // readable snapshot, reporting any damaged generations skipped on
        // the way. A missing checkpoint degrades to a fresh run.
        let mut resume_from: Option<(u64, core::Checkpoint)> = None;
        if std::mem::take(&mut self.resume_pending) {
            let store = store.as_ref().ok_or_else(|| {
                Error::Eval("resume: no checkpoint directory (use `checkpoint DIR` first)".into())
            })?;
            match core::load_latest(store) {
                Ok(rec) => {
                    for (generation, err) in &rec.skipped {
                        let _ = writeln!(
                            notes,
                            "recovery: generation {generation} unreadable ({err}); skipped"
                        );
                    }
                    resume_from = Some((rec.generation, rec.checkpoint));
                }
                Err(core::CheckpointError::NoCheckpoint) => {
                    let _ = writeln!(notes, "resume: no checkpoint found; running fresh");
                }
                Err(e) => return Err(Error::Eval(format!("resume: {e}"))),
            }
        }
        let profiling = want_profile || self.metrics_path.is_some();
        if profiling {
            itdb_trace::set_profiling(true);
        }
        let result = match resume_from {
            Some((generation, cp)) => {
                match core::resume_with(&self.program, &self.edb, &opts, &cp) {
                    // A snapshot of a different program or EDB is rejected
                    // by the engine's hash check; never load stale state —
                    // note it and evaluate from scratch.
                    Err(Error::Eval(msg)) if msg.starts_with("checkpoint:") => {
                        let _ = writeln!(notes, "resume: {msg}; running fresh");
                        core::evaluate_with(&self.program, &self.edb, &opts)
                    }
                    r => {
                        let _ = writeln!(notes, "resumed: generation {generation}");
                        r
                    }
                }
            }
            None => core::evaluate_with(&self.program, &self.edb, &opts),
        };
        if profiling {
            itdb_trace::set_profiling(false);
        }
        itdb_trace::flush_sinks();
        // Taken even on the error path, so a failed run cannot leak its
        // partial profile into the next one.
        let profile = profiling.then(itdb_trace::take_profile);
        let eval = result?;
        if let Some(path) = &self.metrics_path {
            let text =
                core::render_metrics_full(&eval.stats, profile.as_ref(), Some(&eval.checkpoints));
            std::fs::write(path, text).map_err(|e| {
                Error::Eval(format!("metrics: cannot write {}: {e}", path.display()))
            })?;
        }
        Ok((eval, profile, notes))
    }

    fn cmd_eval(&mut self) -> Result<String> {
        let (eval, _, notes) = self.run_eval(false, false)?;
        let mut out = notes;
        out += &match eval.outcome.interruption() {
            Some(int) => format_interruption(int),
            None => format!("outcome: {:?}\n", eval.outcome),
        };
        if let Some(generation) = eval.checkpoints.last_generation {
            let _ = writeln!(
                out,
                "checkpoint: generation {generation} ({} bytes)",
                eval.checkpoints.last_bytes
            );
        }
        if eval.checkpoints.failed > 0 {
            let _ = writeln!(
                out,
                "checkpoint failures: {} (evaluation continued)",
                eval.checkpoints.failed
            );
        }
        for (name, rel) in &eval.idb {
            let _ = writeln!(out, "{name} = {rel}");
        }
        if self.auto_stats {
            let _ = writeln!(out, "{}", eval.stats);
        }
        if self.stats_json {
            let _ = writeln!(out, "{}", eval.stats.to_json());
        }
        self.model = Some(eval);
        Ok(out.trim_end().to_string())
    }

    fn cmd_stats(&self, rest: &str) -> Result<String> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| Error::Eval("no model yet (run `eval` first)".into()))?;
        match rest {
            "" => Ok(format!("{}", model.stats)),
            "--json" | "json" => Ok(model.stats.to_json()),
            other => Err(Error::Eval(format!(
                "usage: stats [--json] (got `{other}`)"
            ))),
        }
    }

    /// `explain ATOM` — prints the derivation tree of a ground point.
    ///
    /// Provenance is not recorded by plain `eval` (it costs allocations per
    /// derived tuple), so the first `explain` after a model change re-runs
    /// the evaluation with provenance on and keeps the enriched model.
    fn cmd_explain(&mut self, rest: &str) -> Result<String> {
        let atom = core::parse_atom(rest)?;
        let mut temporal = Vec::new();
        for t in &atom.temporal {
            match t {
                core::TemporalTerm::Const(c) => temporal.push(*c),
                core::TemporalTerm::Var { .. } => {
                    return Err(Error::Eval(
                        "explain needs a ground atom, e.g. `explain p[10](a)`".into(),
                    ))
                }
            }
        }
        let mut data = Vec::new();
        for d in &atom.data {
            match d {
                core::DataTerm::Const(v) => data.push(v.clone()),
                core::DataTerm::Var(_) => {
                    return Err(Error::Eval(
                        "explain needs a ground atom, e.g. `explain p[10](a)`".into(),
                    ))
                }
            }
        }
        let needs_rerun = match &self.model {
            Some(m) => m.derivations.is_empty(),
            None => true,
        };
        if needs_rerun {
            let (eval, _, _) = self.run_eval(true, false)?;
            self.model = Some(eval);
        }
        let model = match &self.model {
            Some(m) => m,
            None => return Err(Error::Eval("no model (run `eval` first)".into())),
        };
        match core::explain(model, &atom.pred, &temporal, &data) {
            Some(tree) => Ok(tree.render(&model.rule_labels).trim_end().to_string()),
            None => Err(Error::Eval(format!(
                "no derivation recorded for `{rest}` (not in the model?)"
            ))),
        }
    }

    /// `profile` — re-runs the evaluation with span profiling and prints
    /// per-rule (and per-operation) self-time tables, costliest first.
    fn cmd_profile(&mut self) -> Result<String> {
        let (eval, profile, _) = self.run_eval(false, true)?;
        let profile = profile.unwrap_or_default();
        self.model = Some(eval);
        let mut out = String::new();
        render_profile_table(&mut out, "rule", profile.of_kind(SpanKind::Rule));
        let ops: Vec<&itdb_trace::ProfileEntry> = profile.of_kind(SpanKind::Op).collect();
        if !ops.is_empty() {
            let _ = writeln!(out);
            render_profile_table(&mut out, "op", ops.into_iter());
        }
        if out.is_empty() {
            out = "no spans profiled (empty program?)".to_string();
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_trace(&mut self, rest: &str) -> Result<String> {
        match rest {
            "on" => {
                if self.ring.is_some() {
                    return Ok("tracing already on".to_string());
                }
                let ring = Arc::new(RingSink::with_capacity(TRACE_RING_CAPACITY));
                let id = itdb_trace::add_sink(ring.clone());
                self.ring = Some((ring, id));
                Ok(format!(
                    "tracing on (ring of {TRACE_RING_CAPACITY} events; `trace dump` to inspect)"
                ))
            }
            "off" => match self.ring.take() {
                Some((_, id)) => {
                    itdb_trace::remove_sink(id);
                    Ok("tracing off".to_string())
                }
                None => Ok("tracing already off".to_string()),
            },
            "dump" => {
                let (ring, _) = self
                    .ring
                    .as_ref()
                    .ok_or_else(|| Error::Eval("tracing is off (`trace on` first)".into()))?;
                let (events, dropped) = ring.drain();
                if events.is_empty() {
                    return Ok("no events buffered".to_string());
                }
                let mut out = String::new();
                for e in &events {
                    let _ = writeln!(out, "{}", e.to_json());
                }
                if dropped > 0 {
                    let _ = writeln!(out, "({dropped} older event(s) dropped)");
                }
                Ok(out.trim_end().to_string())
            }
            "" => Ok(format!(
                "tracing: {}",
                if self.ring.is_some() { "on" } else { "off" }
            )),
            other => Err(Error::Eval(format!(
                "usage: trace on|off|dump (got `{other}`)"
            ))),
        }
    }

    fn cmd_query(&mut self, rest: &str) -> Result<String> {
        let atom = core::parse_atom(rest)?;
        let rel = self
            .model
            .as_ref()
            .and_then(|m| m.relation(&atom.pred))
            .or_else(|| self.edb.get(&atom.pred))
            .ok_or_else(|| {
                Error::Eval(format!(
                    "unknown predicate `{}` (run `eval` first for derived ones)",
                    atom.pred
                ))
            })?;
        let ans = core::query(rel, &atom, DEFAULT_RESIDUE_BUDGET)?;
        Ok(format!("{ans}"))
    }

    fn fo_db(&self) -> fo::FoDatabase {
        let mut db = fo::FoDatabase::new();
        for (name, rel) in &self.relations {
            db.insert(name, rel.clone());
        }
        if let Some(eval) = &self.model {
            for (name, rel) in &eval.idb {
                db.insert(name, rel.clone());
            }
        }
        db
    }

    fn cmd_fo(&self, rest: &str, yesno: bool) -> Result<String> {
        let f = fo::parse_formula(rest)?;
        let db = self.fo_db();
        let opts = fo::FoOptions::default();
        if yesno {
            return Ok(format!("{}", fo::ask(&f, &db, &opts)?));
        }
        let r = fo::evaluate(&f, &db, &opts)?;
        let mut out = String::new();
        if !r.tvars.is_empty() || !r.dvars.is_empty() {
            let _ = writeln!(
                out,
                "columns: [{}] ({})",
                r.tvars.join(", "),
                r.dvars.join(", ")
            );
        }
        let _ = write!(out, "{}", r.relation);
        Ok(out)
    }

    /// `checkpoint DIR | every N | every trips | off | (bare)` — configures
    /// durable snapshots of `eval`: where they go and how often they are
    /// taken.
    fn cmd_checkpoint(&mut self, rest: &str) -> Result<String> {
        let (word, arg) = match rest.split_once(char::is_whitespace) {
            Some((w, a)) => (w, a.trim()),
            None => (rest, ""),
        };
        match (word, arg) {
            ("", _) => Ok(self.fmt_checkpoint()),
            ("off", _) => {
                self.checkpoint_dir = None;
                Ok("checkpointing off".to_string())
            }
            ("every", "trips") => {
                self.checkpoint_every = 0;
                Ok(self.fmt_checkpoint())
            }
            ("every", n) => {
                let parsed = n
                    .parse::<u64>()
                    .map_err(|_| Error::Eval(format!("checkpoint every: `{n}` is not a number")))?;
                if parsed == 0 {
                    return Err(Error::Eval(
                        "checkpoint every: 0 would never snapshot mid-run; \
                         say `checkpoint every trips` for trip-only snapshots"
                            .into(),
                    ));
                }
                self.checkpoint_every = parsed;
                Ok(self.fmt_checkpoint())
            }
            (dir, "") => {
                self.checkpoint_dir = Some(PathBuf::from(dir));
                // Open eagerly so a bad directory fails here, not mid-eval.
                self.checkpoint_store()?;
                Ok(self.fmt_checkpoint())
            }
            _ => Err(Error::Eval(
                "usage: checkpoint DIR|every N|every trips|off".into(),
            )),
        }
    }

    fn fmt_checkpoint(&self) -> String {
        match &self.checkpoint_dir {
            Some(dir) => {
                let cadence = match self.checkpoint_every {
                    0 => "only on governor trips".to_string(),
                    n => format!("every {n} iterations and on governor trips"),
                };
                format!("checkpointing to {} ({cadence})", dir.display())
            }
            None => "checkpointing off".to_string(),
        }
    }

    /// `resume` — runs `eval` starting from the latest readable checkpoint.
    fn cmd_resume(&mut self) -> Result<String> {
        if self.checkpoint_dir.is_none() {
            return Err(Error::Eval(
                "resume: no checkpoint directory (use `checkpoint DIR` first)".into(),
            ));
        }
        self.resume_pending = true;
        self.cmd_eval()
    }

    fn cmd_dl1s(&mut self, rest: &str) -> Result<String> {
        let p = dl::parse_program(rest)?;
        self.dl_program.clauses.extend(p.clauses);
        Ok(format!(
            "{} Datalog1S clause(s)",
            self.dl_program.clauses.len()
        ))
    }

    fn cmd_dl1s_eval(&self) -> Result<String> {
        self.cancel.reset();
        let governor = std::sync::Arc::new(Governor::new(self.governor_config()));
        let ev = dl::evaluate_governed(
            &self.dl_program,
            &dl::ExternalEdb::new(),
            &dl::DetectOptions::default(),
            &governor,
        )?;
        let m = &ev.model;
        let mut out = match &ev.outcome {
            dl::DlOutcome::Complete => format!(
                "eventually periodic (offset {}, period {}, detected at {})\n",
                m.offset, m.period, m.detected_at
            ),
            dl::DlOutcome::Interrupted {
                reason,
                completed_strata,
                total_strata,
                simulated_to,
            } => format!(
                "interrupted: {reason}\n\
                 strata: {completed_strata}/{total_strata} complete; tripped stratum \
                 simulated to t={simulated_to} (partial model below: exact on completed \
                 strata, finite prefix on the rest; raise `fuel`/`timeout` for the full \
                 periodic model)\n"
            ),
        };
        if m.sets.is_empty() {
            out.push_str("empty model\n");
        }
        for ((pred, data), set) in &m.sets {
            let data_txt = if data.is_empty() {
                String::new()
            } else {
                format!(
                    "({})",
                    data.iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let _ = writeln!(out, "{pred}{data_txt} = {set}");
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_templog(&mut self, rest: &str) -> Result<String> {
        let p = tl::parse_program(rest)?;
        self.tl_program.clauses.extend(p.clauses);
        Ok(format!(
            "{} Templog clause(s)",
            self.tl_program.clauses.len()
        ))
    }

    fn cmd_templog_eval(&self) -> Result<String> {
        self.cancel.reset();
        let governor = std::sync::Arc::new(Governor::new(self.governor_config()));
        let ev = tl::evaluate_governed(
            &self.tl_program,
            &dl::ExternalEdb::new(),
            &dl::DetectOptions::default(),
            &governor,
        )?;
        let mut out = String::new();
        if let tl::TlOutcome::Interrupted {
            reason,
            completed_strata,
            total_strata,
        } = &ev.outcome
        {
            let _ = writeln!(out, "interrupted: {reason}");
            let _ = writeln!(
                out,
                "strata: {completed_strata}/{total_strata} complete \
                 (the partial model below is exact on completed strata)"
            );
        }
        let mut printed = 0usize;
        for ((pred, data), set) in &ev.model.sets {
            let data_txt = if data.is_empty() {
                String::new()
            } else {
                format!(
                    "({})",
                    data.iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let _ = writeln!(out, "{pred}{data_txt} = {set}");
            printed += 1;
        }
        if printed == 0 {
            let _ = writeln!(out, "empty model");
        }
        Ok(out.trim_end().to_string())
    }
}

/// Renders one profile table (`rule` or `op` spans) with aligned columns,
/// in the order the profile delivers entries (costliest self-time first).
fn render_profile_table<'a>(
    out: &mut String,
    what: &str,
    entries: impl Iterator<Item = &'a itdb_trace::ProfileEntry>,
) {
    let entries: Vec<&itdb_trace::ProfileEntry> = entries.collect();
    if entries.is_empty() {
        return;
    }
    let width = entries
        .iter()
        .map(|e| e.label.len())
        .max()
        .unwrap_or(0)
        .max(what.len());
    let _ = writeln!(
        out,
        "{:<width$}  {:>7}  {:>10}  {:>10}",
        what, "count", "total", "self"
    );
    for e in entries {
        let _ = writeln!(
            out,
            "{:<width$}  {:>7}  {:>10}  {:>10}",
            e.label,
            e.count,
            fmt_duration(e.total),
            fmt_duration(e.self_time)
        );
    }
}

/// Renders an [`Interruption`] as a human-readable block.
///
/// The first line is machine-greppable (`interrupted: <reason>`); the
/// completeness line states whether the partial model is already a complete
/// free extension (Theorem 4.2) or a plain under-approximation.
fn format_interruption(int: &Interruption) -> String {
    let mut out = format!("interrupted: {}\n", int.reason);
    match &int.completeness {
        Completeness::FreeExtensionComplete { fe_safe_at } => {
            let _ = writeln!(
                out,
                "completeness: free-extension complete (safe since iteration {fe_safe_at}); \
                 the partial model below contains every fact of the free extension"
            );
        }
        Completeness::Partial => {
            let _ = writeln!(
                out,
                "completeness: partial (sound under-approximation; every tuple shown is derivable)"
            );
        }
    }
    let _ = writeln!(out, "iterations: {}", int.iterations);
    // Machine-greppable governor counter snapshot at the moment of the trip.
    let c = &int.counters;
    let _ = writeln!(
        out,
        "governor: iterations={} derived={} held={} checks={} elapsed_ms={}",
        c.iterations, c.derived, c.held, c.checks, c.elapsed_ms
    );
    if !int.growing.is_empty() {
        let _ = writeln!(out, "still growing: {}", int.growing.join(", "));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, line: &str) -> String {
        match shell.execute(line) {
            Step::Continue(s) => s,
            Step::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn parallel_command_controls_workers_and_survives_reset() {
        let mut sh = Shell::new();
        let out = run(&mut sh, "parallel 4");
        assert!(out.contains("4 workers"), "{out}");
        let out = run(&mut sh, "parallel");
        assert!(out.contains("4 workers"), "{out}");
        let out = run(&mut sh, "reset");
        assert!(out.contains("state cleared"), "{out}");
        let out = run(&mut sh, "parallel");
        assert!(
            out.contains("4 workers"),
            "session config survives reset: {out}"
        );
        let out = run(&mut sh, "parallel off");
        assert!(out.contains("default"), "{out}");
        let out = run(&mut sh, "parallel nope");
        assert!(out.contains("not a number"), "{out}");
        let out = run(&mut sh, "parallel 0");
        assert!(out.contains("at least one"), "{out}");
    }

    #[test]
    fn parallel_eval_output_matches_sequential() {
        let mut seq = Shell::new();
        let mut par = Shell::new();
        for sh in [&mut seq, &mut par] {
            run(sh, "tuple course (168n+8, 168n+10; database) : T2 = T1 + 2");
            run(sh, "rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).");
            run(
                sh,
                "rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
            );
        }
        run(&mut seq, "parallel 1");
        run(&mut par, "parallel 4");
        let a = run(&mut seq, "eval");
        let b = run(&mut par, "eval");
        assert!(a.contains("Converged"), "{a}");
        assert_eq!(a, b, "parallel eval output must be byte-identical");
    }

    #[test]
    fn full_session() {
        let mut sh = Shell::new();
        let out = run(
            &mut sh,
            "tuple course (168n+8, 168n+10; database) : T2 = T1 + 2",
        );
        assert!(out.contains("1 generalized tuple"), "{out}");

        let out = run(
            &mut sh,
            "rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).",
        );
        assert!(out.contains("1 clause"), "{out}");
        run(
            &mut sh,
            "rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        );

        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
        assert!(out.contains("problems"), "{out}");

        let out = run(&mut sh, "query problems[t, t + 2](database)");
        assert!(out.contains("n+10"), "{out}");

        let out = run(&mut sh, "ask exists t1, t2. course[t1, t2](database)");
        assert_eq!(out, "true");

        let out = run(&mut sh, "show");
        assert!(out.contains("course"), "{out}");
        assert!(out.contains("derived"), "{out}");
    }

    #[test]
    fn datalog1s_session() {
        let mut sh = Shell::new();
        run(&mut sh, "dl1s leaves[5]. leaves[t + 40] <- leaves[t].");
        let out = run(&mut sh, "dl1s-eval");
        assert!(out.contains("period 40"), "{out}");
        assert!(out.contains("leaves"), "{out}");
    }

    #[test]
    fn templog_session() {
        let mut sh = Shell::new();
        run(&mut sh, "templog next^5 ev. always (next^7 ev <- ev).");
        let out = run(&mut sh, "templog-eval");
        assert!(out.contains("ev"), "{out}");
        assert!(out.contains("+7k"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = Shell::new();
        let out = run(&mut sh, "rule this is not a clause");
        assert!(out.starts_with("error:"), "{out}");
        let out = run(&mut sh, "frobnicate");
        assert!(out.contains("unknown command"), "{out}");
        let out = run(&mut sh, "show nothing");
        assert!(out.contains("unknown relation"), "{out}");
        // The shell still works afterwards.
        let out = run(&mut sh, "help");
        assert!(out.contains("commands"), "{out}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut sh = Shell::new();
        assert_eq!(run(&mut sh, ""), "");
        assert_eq!(run(&mut sh, "# a comment"), "");
        assert_eq!(run(&mut sh, "% another"), "");
    }

    #[test]
    fn reset_clears_state() {
        let mut sh = Shell::new();
        run(&mut sh, "tuple r (2n)");
        run(&mut sh, "reset");
        let out = run(&mut sh, "show");
        assert_eq!(out, "no relations");
    }

    #[test]
    fn quit_exits() {
        let mut sh = Shell::new();
        assert!(matches!(sh.execute("quit"), Step::Quit));
        assert!(matches!(sh.execute("exit"), Step::Quit));
    }

    #[test]
    fn negation_and_mod_in_session() {
        let mut sh = Shell::new();
        run(&mut sh, "tuple sched (24n) : T1 >= 0");
        run(&mut sh, "rule service[t] <- sched[t].");
        run(&mut sh, "rule service[t + 12] <- service[t].");
        run(&mut sh, "rule gap[t] <- !service[t], 0 <= t.");
        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
        let out = run(&mut sh, "ask exists t. gap[t]");
        assert_eq!(out, "true");
        // Periodicity predicate in a first-order query.
        let out = run(&mut sh, "fo gap[t] & t mod 12 = 1");
        assert!(out.contains("12n+1"), "{out}");
    }

    #[test]
    fn limits_commands_round_trip() {
        let mut sh = Shell::new();
        let out = run(&mut sh, "limits");
        assert!(out.contains("unlimited"), "{out}");
        let out = run(&mut sh, "fuel 100");
        assert!(out.contains("100 derived tuples"), "{out}");
        let out = run(&mut sh, "timeout 2000");
        assert!(out.contains("2000 ms"), "{out}");
        let out = run(&mut sh, "fuel off");
        assert!(out.contains("fuel: unlimited"), "{out}");
        let out = run(&mut sh, "fuel pancakes");
        assert!(out.starts_with("error:"), "{out}");
        let out = run(&mut sh, "timeout");
        assert!(out.contains("usage"), "{out}");
    }

    #[test]
    fn stats_command_reports_last_eval() {
        let mut sh = Shell::new();
        let out = run(&mut sh, "stats");
        assert!(out.starts_with("error:"), "{out}");
        run(
            &mut sh,
            "tuple course (168n+8, 168n+10; database) : T2 = T1 + 2",
        );
        run(
            &mut sh,
            "rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).",
        );
        run(
            &mut sh,
            "rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        );
        run(&mut sh, "eval");
        let out = run(&mut sh, "stats");
        assert!(out.contains("tuples derived"), "{out}");
        assert!(out.contains("subsumption checks"), "{out}");
        assert!(out.contains("stratum 0 (problems)"), "{out}");
        assert!(out.contains("elapsed:"), "{out}");
    }

    #[test]
    fn auto_stats_appends_to_eval_output_and_survives_reset() {
        let mut sh = Shell::new();
        sh.set_auto_stats(true);
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
        assert!(out.contains("tuples derived"), "{out}");
        run(&mut sh, "reset");
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("tuples derived"), "{out}");
    }

    #[test]
    fn reset_preserves_limits() {
        let mut sh = Shell::new();
        run(&mut sh, "fuel 7");
        run(&mut sh, "reset");
        let out = run(&mut sh, "limits");
        assert!(out.contains("7 derived tuples"), "{out}");
    }

    #[test]
    fn diverging_eval_interrupts_and_shell_survives() {
        let mut sh = Shell::new();
        // Small enough to trip before the free-extension grace window ends.
        run(&mut sh, "fuel 5");
        // Point-based successor recursion: unbounded unless governed.
        run(&mut sh, "tuple p (n) : T1 = 0");
        run(&mut sh, "rule q[t] <- p[t].");
        run(&mut sh, "rule q[t + 5] <- q[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("interrupted:"), "{out}");
        assert!(out.contains("tuple fuel exhausted"), "{out}");
        assert!(out.contains("still growing: q"), "{out}");
        // The partial model is visible and the shell keeps working.
        assert!(out.contains("q = "), "{out}");
        let out = run(&mut sh, "show");
        assert!(out.contains("derived"), "{out}");
        let out = run(&mut sh, "help");
        assert!(out.contains("commands"), "{out}");
    }

    #[test]
    fn pre_armed_cancel_token_is_cleared_before_eval() {
        let mut sh = Shell::new();
        let token = CancelToken::new();
        sh.set_cancel(token.clone());
        token.cancel();
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        // A stale Ctrl-C from idle time must not abort the evaluation.
        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
    }

    #[test]
    fn governed_dl1s_eval_times_out_gracefully() {
        let mut sh = Shell::new();
        sh.set_limits(Limits {
            timeout_ms: Some(0),
            ..Limits::default()
        });
        run(&mut sh, "dl1s leaves[5]. leaves[t + 40] <- leaves[t].");
        let out = run(&mut sh, "dl1s-eval");
        // A trip is reported, not treated as a shell error, and whatever
        // simulation prefix existed is kept rather than discarded.
        assert!(out.starts_with("interrupted:"), "{out}");
        assert!(out.contains("tripped stratum simulated to"), "{out}");
        // Shell still alive afterwards.
        let out = run(&mut sh, "help");
        assert!(out.contains("commands"), "{out}");
    }

    #[test]
    fn governed_templog_eval_reports_partial_strata_on_trip() {
        let mut sh = Shell::new();
        sh.set_limits(Limits {
            timeout_ms: Some(0),
            ..Limits::default()
        });
        run(
            &mut sh,
            "templog power. always (next^4 power <- power). always (dark <- !power).",
        );
        let out = run(&mut sh, "templog-eval");
        assert!(out.starts_with("interrupted:"), "{out}");
        assert!(out.contains("strata:"), "{out}");
        assert!(out.contains("complete"), "{out}");
        let out = run(&mut sh, "help");
        assert!(out.contains("commands"), "{out}");
    }

    fn recursive_session(sh: &mut Shell) {
        run(sh, "tuple e (15n) : T1 >= 0");
        run(sh, "rule p[t + 5] <- e[t].");
        run(sh, "rule p[t + 5] <- p[t].");
    }

    #[test]
    fn stats_json_variant_is_parseable() {
        let mut sh = Shell::new();
        recursive_session(&mut sh);
        run(&mut sh, "eval");
        let out = run(&mut sh, "stats --json");
        let v = itdb_trace::json::parse(&out).expect("stats --json parses");
        assert!(v.get("tuples_inserted").and_then(|x| x.as_f64()).unwrap() > 0.0);
        assert!(v.get("strata").and_then(|s| s.as_array()).is_some());
        let out = run(&mut sh, "stats --yaml");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn stats_json_flag_appends_json_to_eval() {
        let mut sh = Shell::new();
        sh.set_stats_json(true);
        recursive_session(&mut sh);
        let out = run(&mut sh, "eval");
        let json_line = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("eval output carries a JSON stats line");
        itdb_trace::json::parse(json_line).expect("stats line parses");
    }

    #[test]
    fn explain_prints_edb_grounded_tree() {
        let mut sh = Shell::new();
        recursive_session(&mut sh);
        // No prior `eval`: explain runs its own provenance evaluation.
        let out = run(&mut sh, "explain p[10]");
        assert!(out.contains("[EDB]"), "{out}");
        assert!(out.contains("e "), "{out}");
        assert!(out.contains("r1:"), "{out}");
        // Non-ground and absent atoms are errors, not crashes.
        let out = run(&mut sh, "explain p[t]");
        assert!(out.contains("ground atom"), "{out}");
        let out = run(&mut sh, "explain p[7]");
        assert!(out.contains("no derivation"), "{out}");
    }

    #[test]
    fn profile_lists_rules_by_self_time() {
        let mut sh = Shell::new();
        recursive_session(&mut sh);
        let out = run(&mut sh, "profile");
        assert!(out.contains("rule"), "{out}");
        assert!(out.contains("count"), "{out}");
        assert!(out.contains("r0:"), "{out}");
        assert!(out.contains("r1:"), "{out}");
    }

    #[test]
    fn trace_ring_buffers_and_dumps_events() {
        let mut sh = Shell::new();
        recursive_session(&mut sh);
        let out = run(&mut sh, "trace");
        assert_eq!(out, "tracing: off");
        let out = run(&mut sh, "trace dump");
        assert!(out.starts_with("error:"), "{out}");
        run(&mut sh, "trace on");
        run(&mut sh, "eval");
        let out = run(&mut sh, "trace dump");
        assert!(out.contains("\"event\":\"span_enter\""), "{out}");
        assert!(out.contains("\"event\":\"tuple_inserted\""), "{out}");
        // Dump drains the ring.
        let out = run(&mut sh, "trace dump");
        assert_eq!(out, "no events buffered");
        let out = run(&mut sh, "trace off");
        assert_eq!(out, "tracing off");
        assert!(!itdb_trace::enabled());
    }

    #[test]
    fn trace_survives_reset() {
        let mut sh = Shell::new();
        run(&mut sh, "trace on");
        run(&mut sh, "reset");
        let out = run(&mut sh, "trace");
        assert_eq!(out, "tracing: on");
        run(&mut sh, "trace off");
        assert!(!itdb_trace::enabled());
    }

    #[test]
    fn metrics_snapshot_written_after_eval() {
        let path = std::env::temp_dir().join(format!(
            "itdb_shell_metrics_{}_{:?}.prom",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut sh = Shell::new();
        sh.set_metrics_path(Some(path.clone()));
        recursive_session(&mut sh);
        run(&mut sh, "eval");
        let text = std::fs::read_to_string(&path).expect("metrics file written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("itdb_tuples_inserted_total"), "{text}");
        // The snapshot profile includes per-rule self time.
        assert!(text.contains("itdb_rule_self_seconds"), "{text}");
    }

    #[test]
    fn interruption_report_carries_governor_counters() {
        let mut sh = Shell::new();
        run(&mut sh, "fuel 5");
        run(&mut sh, "tuple p (n) : T1 = 0");
        run(&mut sh, "rule q[t] <- p[t].");
        run(&mut sh, "rule q[t + 5] <- q[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("interrupted:"), "{out}");
        // Machine-greppable counter snapshot from the governor.
        let gov = out
            .lines()
            .find(|l| l.starts_with("governor: "))
            .expect("governor line present");
        for key in ["iterations=", "derived=", "held=", "checks=", "elapsed_ms="] {
            assert!(gov.contains(key), "{gov}");
        }
        // The trip actually consumed budget checks.
        assert!(!gov.contains("checks=0"), "{gov}");
    }

    fn temp_checkpoint_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "itdb_shell_ckpt_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn checkpoint_command_round_trips_configuration() {
        let dir = temp_checkpoint_dir("cfg");
        let mut sh = Shell::new();
        let out = run(&mut sh, "checkpoint");
        assert_eq!(out, "checkpointing off");
        let out = run(&mut sh, "resume");
        assert!(out.starts_with("error:"), "{out}");
        let out = run(&mut sh, &format!("checkpoint {}", dir.display()));
        assert!(out.contains("checkpointing to"), "{out}");
        assert!(out.contains("every 64 iterations"), "{out}");
        let out = run(&mut sh, "checkpoint every 2");
        assert!(out.contains("every 2 iterations"), "{out}");
        let out = run(&mut sh, "checkpoint every trips");
        assert!(out.contains("only on governor trips"), "{out}");
        // `every 0` is rejected with a pointer at the explicit spelling.
        let out = run(&mut sh, "checkpoint every 0");
        assert!(out.starts_with("error:"), "{out}");
        assert!(out.contains("every trips"), "{out}");
        let out = run(&mut sh, "checkpoint every pancakes");
        assert!(out.starts_with("error:"), "{out}");
        // Configuration survives `reset`, like limits.
        run(&mut sh, "reset");
        let out = run(&mut sh, "checkpoint");
        assert!(out.contains("checkpointing to"), "{out}");
        let out = run(&mut sh, "checkpoint off");
        assert_eq!(out, "checkpointing off");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tripped_eval_checkpoints_and_resume_reaches_the_full_model() {
        let dir = temp_checkpoint_dir("resume");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sh = Shell::new();
        run(&mut sh, &format!("checkpoint {}", dir.display()));
        run(&mut sh, "fuel 5");
        run(&mut sh, "tuple p (n) : T1 = 0");
        run(&mut sh, "rule q[t] <- p[t].");
        run(&mut sh, "rule q[t + 5] <- q[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("interrupted:"), "{out}");
        assert!(out.contains("checkpoint: generation"), "{out}");
        // Lift the budget and resume: the run completes from the snapshot.
        run(&mut sh, "fuel off");
        let out = run(&mut sh, "resume");
        assert!(out.contains("resumed: generation"), "{out}");
        assert!(
            out.contains("Converged") || out.contains("Diverged"),
            "{out}"
        );
        assert!(out.contains("q = "), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_no_snapshot_runs_fresh_with_a_note() {
        let dir = temp_checkpoint_dir("fresh");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sh = Shell::new();
        run(&mut sh, &format!("checkpoint {}", dir.display()));
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        let out = run(&mut sh, "resume");
        assert!(out.contains("no checkpoint found; running fresh"), "{out}");
        assert!(out.contains("Converged"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_stale_checkpoint_and_runs_fresh() {
        let dir = temp_checkpoint_dir("stale");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sh = Shell::new();
        run(&mut sh, &format!("checkpoint {}", dir.display()));
        run(&mut sh, "fuel 5");
        run(&mut sh, "tuple p (n) : T1 = 0");
        run(&mut sh, "rule q[t] <- p[t].");
        run(&mut sh, "rule q[t + 5] <- q[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("checkpoint: generation"), "{out}");
        // Change the program: the snapshot's program hash no longer
        // matches, so resume must not load it.
        run(&mut sh, "rule r[t] <- q[t].");
        run(&mut sh, "fuel off");
        let out = run(&mut sh, "resume");
        assert!(out.contains("running fresh"), "{out}");
        assert!(!out.contains("resumed: generation"), "{out}");
        assert!(out.contains("q = "), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fo_queries_reach_derived_relations() {
        let mut sh = Shell::new();
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        run(&mut sh, "eval");
        let out = run(&mut sh, "ask exists t. late[t]");
        assert_eq!(out, "true");
        let out = run(&mut sh, "fo late[t] & t < 10");
        assert!(out.contains("6n+1"), "{out}");
    }
}
