//! The command interpreter behind the `itdb` shell.
//!
//! Each line is one command; [`Shell::execute`] returns the text to print,
//! which makes the interpreter directly testable. State covers all four
//! query surfaces of the workspace: a generalized database (EDB), a
//! deductive program (`itdb-core`), a Datalog1S program, and a Templog
//! program.

use itdb_core as core;
use itdb_core::{CancelToken, Completeness, Governor, GovernorConfig, Interruption};
use itdb_datalog1s as dl;
use itdb_foquery as fo;
use itdb_lrp::{parser as lrp_parser, Error, Result, DEFAULT_RESIDUE_BUDGET};
use itdb_templog as tl;
use std::fmt::Write as _;
use std::time::Duration;

/// Session-level resource limits applied to every evaluation command.
#[derive(Debug, Clone, Default)]
pub struct Limits {
    /// Fuel: maximum derived generalized tuples per evaluation.
    pub fuel: Option<u64>,
    /// Wall-clock deadline per evaluation, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Memory ceiling: maximum generalized tuples held at once.
    pub max_held: Option<u64>,
}

/// Interactive shell state.
#[derive(Default)]
pub struct Shell {
    edb: core::Database,
    /// Raw relation text per name (so `show` can reprint and `fo` can
    /// rebuild its database).
    relations: Vec<(String, itdb_lrp::GeneralizedRelation)>,
    program: core::Program,
    model: Option<core::Evaluation>,
    dl_program: dl::Program,
    tl_program: tl::TlProgram,
    limits: Limits,
    cancel: CancelToken,
    /// Append evaluation statistics to every `eval` output (`--stats`).
    auto_stats: bool,
}

/// Which limit a `fuel`/`timeout` command adjusts.
#[derive(Clone, Copy)]
enum LimitKind {
    Fuel,
    Timeout,
}

impl LimitKind {
    fn command_name(self) -> &'static str {
        match self {
            LimitKind::Fuel => "fuel",
            LimitKind::Timeout => "timeout",
        }
    }
}

/// The outcome of one command.
pub enum Step {
    /// Print this text and continue.
    Continue(String),
    /// Exit the shell.
    Quit,
}

const HELP: &str = "\
commands:
  tuple NAME (lrp, ...; data, ...) [: constraints]   add a generalized tuple
  show [NAME]                list relations / print one
  rule CLAUSE.               add a deductive clause (itdb-core syntax)
  program                    print the deductive program
  eval                       run the closed-form bottom-up evaluation
  stats                      statistics for the last eval (tuple flow, caches, index, timings)
  query ATOM                 goal query against the last model (and the EDB)
  fo FORMULA                 first-order query over EDB + derived relations
  ask FORMULA                yes/no first-order query
  dl1s CLAUSE.               add a Datalog1S clause
  dl1s-eval                  detect the eventually periodic minimal model
  templog CLAUSE.            add a Templog clause
  templog-eval               evaluate the Templog program
  fuel N|off                 cap derived tuples per evaluation
  timeout MS|off             wall-clock deadline per evaluation
  limits                     show current resource limits
  reset                      clear all state (limits survive)
  help                       this text
  quit                       leave";

impl Shell {
    /// A fresh shell.
    pub fn new() -> Self {
        Shell::default()
    }

    /// Replaces the session resource limits (used by `--fuel`/`--timeout-ms`).
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Installs the cancellation token shared with the Ctrl-C handler.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Appends evaluation statistics to every `eval` output (used by the
    /// `--stats` flag; the `stats` command works regardless).
    pub fn set_auto_stats(&mut self, on: bool) {
        self.auto_stats = on;
    }

    /// Executes one command line.
    pub fn execute(&mut self, line: &str) -> Step {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            return Step::Continue(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let out = match cmd {
            "help" => Ok(HELP.to_string()),
            "quit" | "exit" => return Step::Quit,
            "reset" => {
                // Limits and the cancellation token are session
                // configuration, not evaluation state: keep them so the
                // Ctrl-C handler installed by `main` stays wired up.
                let limits = self.limits.clone();
                let cancel = self.cancel.clone();
                let auto_stats = self.auto_stats;
                *self = Shell::new();
                self.limits = limits;
                self.cancel = cancel;
                self.auto_stats = auto_stats;
                Ok("state cleared".to_string())
            }
            "fuel" => self.cmd_limit(rest, LimitKind::Fuel),
            "timeout" => self.cmd_limit(rest, LimitKind::Timeout),
            "limits" => Ok(self.fmt_limits()),
            "tuple" => self.cmd_tuple(rest),
            "show" => self.cmd_show(rest),
            "rule" => self.cmd_rule(rest),
            "program" => Ok(format!("{}", self.program)),
            "eval" => self.cmd_eval(),
            "stats" => self.cmd_stats(),
            "query" => self.cmd_query(rest),
            "fo" => self.cmd_fo(rest, false),
            "ask" => self.cmd_fo(rest, true),
            "dl1s" => self.cmd_dl1s(rest),
            "dl1s-eval" => self.cmd_dl1s_eval(),
            "templog" => self.cmd_templog(rest),
            "templog-eval" => self.cmd_templog_eval(),
            other => Err(Error::Eval(format!(
                "unknown command `{other}` (try `help`)"
            ))),
        };
        Step::Continue(match out {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        })
    }

    fn cmd_limit(&mut self, rest: &str, kind: LimitKind) -> Result<String> {
        let slot = match kind {
            LimitKind::Fuel => &mut self.limits.fuel,
            LimitKind::Timeout => &mut self.limits.timeout_ms,
        };
        *slot = match rest {
            "off" | "none" => None,
            "" => return Err(Error::Eval(format!("usage: {} N|off", kind.command_name()))),
            n => Some(n.parse::<u64>().map_err(|_| {
                Error::Eval(format!("{}: `{n}` is not a number", kind.command_name()))
            })?),
        };
        Ok(self.fmt_limits())
    }

    fn fmt_limits(&self) -> String {
        let show = |v: Option<u64>, unit: &str| match v {
            Some(n) => format!("{n}{unit}"),
            None => "unlimited".to_string(),
        };
        format!(
            "fuel: {}  timeout: {}",
            show(self.limits.fuel, " derived tuples"),
            show(self.limits.timeout_ms, " ms"),
        )
    }

    /// Governor configuration shared by all evaluation commands.
    fn governor_config(&self) -> GovernorConfig {
        let mut cfg = GovernorConfig::default().with_cancel(self.cancel.clone());
        if let Some(fuel) = self.limits.fuel {
            cfg = cfg.with_max_derived_tuples(fuel);
        }
        if let Some(ms) = self.limits.timeout_ms {
            cfg = cfg.with_timeout(Duration::from_millis(ms));
        }
        if let Some(held) = self.limits.max_held {
            cfg = cfg.with_max_held_tuples(held);
        }
        cfg
    }

    fn cmd_tuple(&mut self, rest: &str) -> Result<String> {
        let (name, tuple_text) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| Error::Eval("usage: tuple NAME (…)".into()))?;
        let tuple = lrp_parser::parse_tuple(tuple_text.trim())?;
        let schema = itdb_lrp::Schema::new(tuple.temporal_arity(), tuple.data_arity());
        let idx = match self.relations.iter().position(|(n, _)| n == name) {
            Some(idx) => {
                self.relations[idx].1.insert(tuple)?;
                idx
            }
            None => {
                let rel = itdb_lrp::GeneralizedRelation::from_tuples(schema, vec![tuple])?;
                self.relations.push((name.to_string(), rel));
                self.relations.len() - 1
            }
        };
        let rel = &self.relations[idx].1;
        self.edb.insert(name, rel.clone());
        self.model = None;
        Ok(format!("{name}: {} generalized tuple(s)", rel.len()))
    }

    fn cmd_show(&self, rest: &str) -> Result<String> {
        if rest.is_empty() {
            let mut out = String::new();
            for (name, rel) in &self.relations {
                let _ = writeln!(out, "{name} {} ({} tuples)", rel.schema(), rel.len());
            }
            if let Some(eval) = &self.model {
                for (name, rel) in &eval.idb {
                    let _ = writeln!(
                        out,
                        "{name} {} ({} tuples, derived)",
                        rel.schema(),
                        rel.len()
                    );
                }
            }
            if out.is_empty() {
                out = "no relations".to_string();
            }
            return Ok(out.trim_end().to_string());
        }
        if let Some((_, rel)) = self.relations.iter().find(|(n, _)| n == rest) {
            return Ok(format!("{rel}"));
        }
        if let Some(rel) = self.model.as_ref().and_then(|m| m.relation(rest)) {
            return Ok(format!("{rel}"));
        }
        Err(Error::Eval(format!("unknown relation `{rest}`")))
    }

    fn cmd_rule(&mut self, rest: &str) -> Result<String> {
        let clause = core::parse_clause(rest)?;
        self.program.clauses.push(clause);
        self.model = None;
        Ok(format!(
            "{} clause(s) in the program",
            self.program.clauses.len()
        ))
    }

    fn cmd_eval(&mut self) -> Result<String> {
        // A Ctrl-C that arrived while the shell was idle must not abort the
        // next evaluation: the token only counts once armed mid-flight.
        self.cancel.reset();
        let opts = core::EvalOptions {
            coalesce: true,
            max_derived_tuples: self.limits.fuel,
            timeout: self.limits.timeout_ms.map(Duration::from_millis),
            max_held_tuples: self.limits.max_held,
            cancel: Some(self.cancel.clone()),
            ..Default::default()
        };
        let eval = core::evaluate_with(&self.program, &self.edb, &opts)?;
        let mut out = match eval.outcome.interruption() {
            Some(int) => format_interruption(int),
            None => format!("outcome: {:?}\n", eval.outcome),
        };
        for (name, rel) in &eval.idb {
            let _ = writeln!(out, "{name} = {rel}");
        }
        if self.auto_stats {
            let _ = writeln!(out, "{}", eval.stats);
        }
        self.model = Some(eval);
        Ok(out.trim_end().to_string())
    }

    fn cmd_stats(&self) -> Result<String> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| Error::Eval("no model yet (run `eval` first)".into()))?;
        Ok(format!("{}", model.stats))
    }

    fn cmd_query(&mut self, rest: &str) -> Result<String> {
        let atom = core::parse_atom(rest)?;
        let rel = self
            .model
            .as_ref()
            .and_then(|m| m.relation(&atom.pred))
            .or_else(|| self.edb.get(&atom.pred))
            .ok_or_else(|| {
                Error::Eval(format!(
                    "unknown predicate `{}` (run `eval` first for derived ones)",
                    atom.pred
                ))
            })?;
        let ans = core::query(rel, &atom, DEFAULT_RESIDUE_BUDGET)?;
        Ok(format!("{ans}"))
    }

    fn fo_db(&self) -> fo::FoDatabase {
        let mut db = fo::FoDatabase::new();
        for (name, rel) in &self.relations {
            db.insert(name, rel.clone());
        }
        if let Some(eval) = &self.model {
            for (name, rel) in &eval.idb {
                db.insert(name, rel.clone());
            }
        }
        db
    }

    fn cmd_fo(&self, rest: &str, yesno: bool) -> Result<String> {
        let f = fo::parse_formula(rest)?;
        let db = self.fo_db();
        let opts = fo::FoOptions::default();
        if yesno {
            return Ok(format!("{}", fo::ask(&f, &db, &opts)?));
        }
        let r = fo::evaluate(&f, &db, &opts)?;
        let mut out = String::new();
        if !r.tvars.is_empty() || !r.dvars.is_empty() {
            let _ = writeln!(
                out,
                "columns: [{}] ({})",
                r.tvars.join(", "),
                r.dvars.join(", ")
            );
        }
        let _ = write!(out, "{}", r.relation);
        Ok(out)
    }

    fn cmd_dl1s(&mut self, rest: &str) -> Result<String> {
        let p = dl::parse_program(rest)?;
        self.dl_program.clauses.extend(p.clauses);
        Ok(format!(
            "{} Datalog1S clause(s)",
            self.dl_program.clauses.len()
        ))
    }

    fn cmd_dl1s_eval(&self) -> Result<String> {
        self.cancel.reset();
        let governor = std::sync::Arc::new(Governor::new(self.governor_config()));
        let m = dl::evaluate_governed(
            &self.dl_program,
            &dl::ExternalEdb::new(),
            &dl::DetectOptions::default(),
            &governor,
        )?;
        let mut out = format!(
            "eventually periodic (offset {}, period {}, detected at {})\n",
            m.offset, m.period, m.detected_at
        );
        for ((pred, data), set) in &m.sets {
            let data_txt = if data.is_empty() {
                String::new()
            } else {
                format!(
                    "({})",
                    data.iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let _ = writeln!(out, "{pred}{data_txt} = {set}");
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_templog(&mut self, rest: &str) -> Result<String> {
        let p = tl::parse_program(rest)?;
        self.tl_program.clauses.extend(p.clauses);
        Ok(format!(
            "{} Templog clause(s)",
            self.tl_program.clauses.len()
        ))
    }

    fn cmd_templog_eval(&self) -> Result<String> {
        self.cancel.reset();
        let governor = std::sync::Arc::new(Governor::new(self.governor_config()));
        let m = tl::evaluate_governed(
            &self.tl_program,
            &dl::ExternalEdb::new(),
            &dl::DetectOptions::default(),
            &governor,
        )?;
        let mut out = String::new();
        for ((pred, data), set) in &m.sets {
            let data_txt = if data.is_empty() {
                String::new()
            } else {
                format!(
                    "({})",
                    data.iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let _ = writeln!(out, "{pred}{data_txt} = {set}");
        }
        if out.is_empty() {
            out = "empty model".to_string();
        }
        Ok(out.trim_end().to_string())
    }
}

/// Renders an [`Interruption`] as a human-readable block.
///
/// The first line is machine-greppable (`interrupted: <reason>`); the
/// completeness line states whether the partial model is already a complete
/// free extension (Theorem 4.2) or a plain under-approximation.
fn format_interruption(int: &Interruption) -> String {
    let mut out = format!("interrupted: {}\n", int.reason);
    match &int.completeness {
        Completeness::FreeExtensionComplete { fe_safe_at } => {
            let _ = writeln!(
                out,
                "completeness: free-extension complete (safe since iteration {fe_safe_at}); \
                 the partial model below contains every fact of the free extension"
            );
        }
        Completeness::Partial => {
            let _ = writeln!(
                out,
                "completeness: partial (sound under-approximation; every tuple shown is derivable)"
            );
        }
    }
    let _ = writeln!(out, "iterations: {}", int.iterations);
    if !int.growing.is_empty() {
        let _ = writeln!(out, "still growing: {}", int.growing.join(", "));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, line: &str) -> String {
        match shell.execute(line) {
            Step::Continue(s) => s,
            Step::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn full_session() {
        let mut sh = Shell::new();
        let out = run(
            &mut sh,
            "tuple course (168n+8, 168n+10; database) : T2 = T1 + 2",
        );
        assert!(out.contains("1 generalized tuple"), "{out}");

        let out = run(
            &mut sh,
            "rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).",
        );
        assert!(out.contains("1 clause"), "{out}");
        run(
            &mut sh,
            "rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        );

        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
        assert!(out.contains("problems"), "{out}");

        let out = run(&mut sh, "query problems[t, t + 2](database)");
        assert!(out.contains("n+10"), "{out}");

        let out = run(&mut sh, "ask exists t1, t2. course[t1, t2](database)");
        assert_eq!(out, "true");

        let out = run(&mut sh, "show");
        assert!(out.contains("course"), "{out}");
        assert!(out.contains("derived"), "{out}");
    }

    #[test]
    fn datalog1s_session() {
        let mut sh = Shell::new();
        run(&mut sh, "dl1s leaves[5]. leaves[t + 40] <- leaves[t].");
        let out = run(&mut sh, "dl1s-eval");
        assert!(out.contains("period 40"), "{out}");
        assert!(out.contains("leaves"), "{out}");
    }

    #[test]
    fn templog_session() {
        let mut sh = Shell::new();
        run(&mut sh, "templog next^5 ev. always (next^7 ev <- ev).");
        let out = run(&mut sh, "templog-eval");
        assert!(out.contains("ev"), "{out}");
        assert!(out.contains("+7k"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = Shell::new();
        let out = run(&mut sh, "rule this is not a clause");
        assert!(out.starts_with("error:"), "{out}");
        let out = run(&mut sh, "frobnicate");
        assert!(out.contains("unknown command"), "{out}");
        let out = run(&mut sh, "show nothing");
        assert!(out.contains("unknown relation"), "{out}");
        // The shell still works afterwards.
        let out = run(&mut sh, "help");
        assert!(out.contains("commands"), "{out}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut sh = Shell::new();
        assert_eq!(run(&mut sh, ""), "");
        assert_eq!(run(&mut sh, "# a comment"), "");
        assert_eq!(run(&mut sh, "% another"), "");
    }

    #[test]
    fn reset_clears_state() {
        let mut sh = Shell::new();
        run(&mut sh, "tuple r (2n)");
        run(&mut sh, "reset");
        let out = run(&mut sh, "show");
        assert_eq!(out, "no relations");
    }

    #[test]
    fn quit_exits() {
        let mut sh = Shell::new();
        assert!(matches!(sh.execute("quit"), Step::Quit));
        assert!(matches!(sh.execute("exit"), Step::Quit));
    }

    #[test]
    fn negation_and_mod_in_session() {
        let mut sh = Shell::new();
        run(&mut sh, "tuple sched (24n) : T1 >= 0");
        run(&mut sh, "rule service[t] <- sched[t].");
        run(&mut sh, "rule service[t + 12] <- service[t].");
        run(&mut sh, "rule gap[t] <- !service[t], 0 <= t.");
        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
        let out = run(&mut sh, "ask exists t. gap[t]");
        assert_eq!(out, "true");
        // Periodicity predicate in a first-order query.
        let out = run(&mut sh, "fo gap[t] & t mod 12 = 1");
        assert!(out.contains("12n+1"), "{out}");
    }

    #[test]
    fn limits_commands_round_trip() {
        let mut sh = Shell::new();
        let out = run(&mut sh, "limits");
        assert!(out.contains("unlimited"), "{out}");
        let out = run(&mut sh, "fuel 100");
        assert!(out.contains("100 derived tuples"), "{out}");
        let out = run(&mut sh, "timeout 2000");
        assert!(out.contains("2000 ms"), "{out}");
        let out = run(&mut sh, "fuel off");
        assert!(out.contains("fuel: unlimited"), "{out}");
        let out = run(&mut sh, "fuel pancakes");
        assert!(out.starts_with("error:"), "{out}");
        let out = run(&mut sh, "timeout");
        assert!(out.contains("usage"), "{out}");
    }

    #[test]
    fn stats_command_reports_last_eval() {
        let mut sh = Shell::new();
        let out = run(&mut sh, "stats");
        assert!(out.starts_with("error:"), "{out}");
        run(
            &mut sh,
            "tuple course (168n+8, 168n+10; database) : T2 = T1 + 2",
        );
        run(
            &mut sh,
            "rule problems[t1 + 2, t2 + 2](C) <- course[t1, t2](C).",
        );
        run(
            &mut sh,
            "rule problems[t1 + 48, t2 + 48](C) <- problems[t1, t2](C).",
        );
        run(&mut sh, "eval");
        let out = run(&mut sh, "stats");
        assert!(out.contains("tuples derived"), "{out}");
        assert!(out.contains("subsumption checks"), "{out}");
        assert!(out.contains("stratum 0 (problems)"), "{out}");
        assert!(out.contains("elapsed:"), "{out}");
    }

    #[test]
    fn auto_stats_appends_to_eval_output_and_survives_reset() {
        let mut sh = Shell::new();
        sh.set_auto_stats(true);
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
        assert!(out.contains("tuples derived"), "{out}");
        run(&mut sh, "reset");
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("tuples derived"), "{out}");
    }

    #[test]
    fn reset_preserves_limits() {
        let mut sh = Shell::new();
        run(&mut sh, "fuel 7");
        run(&mut sh, "reset");
        let out = run(&mut sh, "limits");
        assert!(out.contains("7 derived tuples"), "{out}");
    }

    #[test]
    fn diverging_eval_interrupts_and_shell_survives() {
        let mut sh = Shell::new();
        // Small enough to trip before the free-extension grace window ends.
        run(&mut sh, "fuel 5");
        // Point-based successor recursion: unbounded unless governed.
        run(&mut sh, "tuple p (n) : T1 = 0");
        run(&mut sh, "rule q[t] <- p[t].");
        run(&mut sh, "rule q[t + 5] <- q[t].");
        let out = run(&mut sh, "eval");
        assert!(out.contains("interrupted:"), "{out}");
        assert!(out.contains("tuple fuel exhausted"), "{out}");
        assert!(out.contains("still growing: q"), "{out}");
        // The partial model is visible and the shell keeps working.
        assert!(out.contains("q = "), "{out}");
        let out = run(&mut sh, "show");
        assert!(out.contains("derived"), "{out}");
        let out = run(&mut sh, "help");
        assert!(out.contains("commands"), "{out}");
    }

    #[test]
    fn pre_armed_cancel_token_is_cleared_before_eval() {
        let mut sh = Shell::new();
        let token = CancelToken::new();
        sh.set_cancel(token.clone());
        token.cancel();
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        // A stale Ctrl-C from idle time must not abort the evaluation.
        let out = run(&mut sh, "eval");
        assert!(out.contains("Converged"), "{out}");
    }

    #[test]
    fn governed_dl1s_eval_times_out_gracefully() {
        let mut sh = Shell::new();
        sh.set_limits(Limits {
            timeout_ms: Some(0),
            ..Limits::default()
        });
        run(&mut sh, "dl1s leaves[5]. leaves[t + 40] <- leaves[t].");
        let out = run(&mut sh, "dl1s-eval");
        assert!(out.starts_with("error:"), "{out}");
        assert!(out.contains("interrupted"), "{out}");
        // Shell still alive afterwards.
        let out = run(&mut sh, "help");
        assert!(out.contains("commands"), "{out}");
    }

    #[test]
    fn fo_queries_reach_derived_relations() {
        let mut sh = Shell::new();
        run(&mut sh, "tuple e (6n) : T1 >= 0");
        run(&mut sh, "rule late[t + 1] <- e[t].");
        run(&mut sh, "eval");
        let out = run(&mut sh, "ask exists t. late[t]");
        assert_eq!(out, "true");
        let out = run(&mut sh, "fo late[t] & t < 10");
        assert!(out.contains("6n+1"), "{out}");
    }
}
