//! `itdb` — an interactive shell for infinite temporal databases.
//!
//! ```text
//! cargo run -p itdb-cli --bin itdb-shell              # interactive
//! cargo run -p itdb-cli --bin itdb-shell -- script    # run a command file
//! cargo run -p itdb-cli --bin itdb-shell -- --fuel 10000 --timeout-ms 5000
//! ```
//!
//! Type `help` inside the shell for the command list; every surface of the
//! workspace is reachable: generalized relations, the deductive language,
//! first-order queries, Datalog1S and Templog.
//!
//! `--fuel N` caps the number of generalized tuples any single evaluation
//! may derive; `--timeout-ms N` is a per-evaluation wall-clock deadline.
//! In interactive mode Ctrl-C cancels the in-flight evaluation (the engine
//! returns its sound partial model) without leaving the shell.

#![deny(clippy::unwrap_used, clippy::expect_used)]

mod shell;

use shell::{Limits, Shell, Step};
use std::io::{BufRead, Write};

const USAGE: &str = "\
usage: itdb-shell [--fuel N] [--timeout-ms N] [--parallel N] [--stats]
                  [--stats-json] [--trace FILE] [--metrics FILE]
                  [--checkpoint DIR] [--checkpoint-every N] [--resume] [SCRIPT]
  --fuel N        cap derived generalized tuples per evaluation
  --timeout-ms N  wall-clock deadline per evaluation, in milliseconds
  --parallel N    derive-phase worker threads per evaluation (N >= 1;
                  models are byte-identical for every N)
  --stats         print evaluation statistics after every `eval`
  --stats-json    print statistics as one JSON object after every `eval`
  --trace FILE    stream typed trace events to FILE as JSON lines
  --metrics FILE  write a Prometheus metrics snapshot after every `eval`
  --checkpoint DIR      write durable crash-safe snapshots of `eval` to DIR
  --checkpoint-every N  snapshot cadence in iterations (N >= 1, or `trips`
                        to snapshot only when the governor trips)
  --resume              first `eval` resumes from the latest checkpoint
  SCRIPT          run a command file instead of the interactive shell";

/// Cancellation token shared between the SIGINT handler and the shell.
///
/// The handler only flips an atomic flag (async-signal-safe); the governor
/// observes it at the next loop boundary and the evaluation returns its
/// partial model instead of the process dying.
static CANCEL: std::sync::OnceLock<itdb_core::CancelToken> = std::sync::OnceLock::new();

fn cancel_token() -> &'static itdb_core::CancelToken {
    CANCEL.get_or_init(itdb_core::CancelToken::new)
}

#[cfg(unix)]
fn install_sigint_handler() {
    // No `libc` dependency: `signal` is part of the C runtime already
    // linked into every Rust binary. glibc's `signal` gives BSD semantics
    // (SA_RESTART), so the blocking stdin read survives the interrupt and
    // the REPL keeps running.
    const SIGINT: i32 = 2;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = CANCEL.get() {
            token.cancel();
        }
    }
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

#[derive(Debug)]
struct Cli {
    limits: Limits,
    parallel: Option<usize>,
    script: Option<String>,
    stats: bool,
    stats_json: bool,
    trace: Option<String>,
    metrics: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: Option<u64>,
    resume: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        limits: Limits::default(),
        parallel: None,
        script: None,
        stats: false,
        stats_json: false,
        trace: None,
        metrics: None,
        checkpoint: None,
        checkpoint_every: None,
        resume: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fuel" | "--timeout-ms" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a numeric argument"))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("{arg}: `{value}` is not a number"))?;
                match arg.as_str() {
                    "--fuel" => cli.limits.fuel = Some(n),
                    _ => cli.limits.timeout_ms = Some(n),
                }
            }
            "--parallel" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a numeric argument"))?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("{arg}: `{value}` is not a number"))?;
                if n == 0 {
                    return Err(format!("{arg}: need at least one worker"));
                }
                cli.parallel = Some(n);
            }
            "--checkpoint-every" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs an argument (N or `trips`)"))?;
                if value == "trips" {
                    cli.checkpoint_every = Some(0);
                } else {
                    let n: u64 = value
                        .parse()
                        .map_err(|_| format!("{arg}: `{value}` is not a number"))?;
                    if n == 0 {
                        return Err(format!(
                            "{arg}: 0 would never snapshot mid-run; \
                             use `--checkpoint-every trips` for trip-only snapshots"
                        ));
                    }
                    cli.checkpoint_every = Some(n);
                }
            }
            "--trace" | "--metrics" | "--checkpoint" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a file argument"))?;
                match arg.as_str() {
                    "--trace" => cli.trace = Some(value.clone()),
                    "--metrics" => cli.metrics = Some(value.clone()),
                    _ => cli.checkpoint = Some(value.clone()),
                }
            }
            "--stats" => cli.stats = true,
            "--stats-json" => cli.stats_json = true,
            "--resume" => cli.resume = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if cli.script.is_some() {
                    return Err("at most one script file".to_string());
                }
                cli.script = Some(path.to_string());
            }
        }
    }
    Ok(cli)
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            let code = if msg.is_empty() {
                println!("{USAGE}");
                0
            } else {
                eprintln!("error: {msg}\n{USAGE}");
                2
            };
            std::process::exit(code);
        }
    };

    let mut shell = Shell::new();
    shell.set_limits(cli.limits);
    shell.set_parallel(cli.parallel);
    shell.set_cancel(cancel_token().clone());
    shell.set_auto_stats(cli.stats);
    shell.set_stats_json(cli.stats_json);
    shell.set_metrics_path(cli.metrics.map(std::path::PathBuf::from));
    shell.set_checkpoint_dir(cli.checkpoint.map(std::path::PathBuf::from));
    if let Some(n) = cli.checkpoint_every {
        shell.set_checkpoint_every(n);
    }
    shell.set_resume_pending(cli.resume);

    // `--trace file.jsonl`: stream every trace event of this thread to the
    // file. The sink stays installed for the whole session; it is flushed
    // after each evaluation and again (via `clear_sinks`) at exit.
    let jsonl: Option<std::sync::Arc<itdb_trace::JsonlSink>> = match cli.trace {
        Some(path) => match itdb_trace::JsonlSink::create(&path) {
            Ok(sink) => {
                let sink = std::sync::Arc::new(sink);
                itdb_trace::add_sink(sink.clone());
                Some(sink)
            }
            Err(e) => {
                eprintln!("error: --trace: cannot create `{path}`: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let finish_trace = |jsonl: Option<std::sync::Arc<itdb_trace::JsonlSink>>| {
        itdb_trace::clear_sinks();
        if let Some(e) = jsonl.and_then(|s| s.take_error()) {
            eprintln!("warning: --trace: write failed: {e}");
        }
    };
    let stdout = std::io::stdout();

    if let Some(path) = cli.script {
        // Script mode: run the file, print non-empty outputs. SIGINT keeps
        // its default disposition here so Ctrl-C aborts the whole run.
        let text = std::fs::read_to_string(path)?;
        let mut out = stdout.lock();
        for line in text.lines() {
            match shell.execute(line) {
                Step::Continue(s) if s.is_empty() => {}
                Step::Continue(s) => writeln!(out, "{s}")?,
                Step::Quit => break,
            }
        }
        finish_trace(jsonl);
        return Ok(());
    }

    // Interactive mode: Ctrl-C cancels the running evaluation, not the REPL.
    install_sigint_handler();
    let stdin = std::io::stdin();
    let mut out = stdout.lock();
    writeln!(out, "itdb — infinite temporal databases (type `help`)")?;
    write!(out, "> ")?;
    out.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        match shell.execute(&line) {
            Step::Continue(s) => {
                if !s.is_empty() {
                    writeln!(out, "{s}")?;
                }
            }
            Step::Quit => break,
        }
        write!(out, "> ")?;
        out.flush()?;
    }
    finish_trace(jsonl);
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_limits_and_script() {
        let cli = parse_args(&strs(&[
            "--fuel",
            "500",
            "--timeout-ms",
            "250",
            "--stats",
            "run.itdb",
        ]))
        .unwrap();
        assert_eq!(cli.limits.fuel, Some(500));
        assert_eq!(cli.limits.timeout_ms, Some(250));
        assert!(cli.stats);
        assert_eq!(cli.script.as_deref(), Some("run.itdb"));
    }

    #[test]
    fn parses_parallel_flag() {
        let cli = parse_args(&strs(&["--parallel", "4"])).unwrap();
        assert_eq!(cli.parallel, Some(4));
        assert!(parse_args(&strs(&["--parallel"])).is_err());
        assert!(parse_args(&strs(&["--parallel", "many"])).is_err());
        assert!(parse_args(&strs(&["--parallel", "0"])).is_err());
        assert_eq!(parse_args(&[]).unwrap().parallel, None);
    }

    #[test]
    fn parses_observability_flags() {
        let cli = parse_args(&strs(&[
            "--trace",
            "run.jsonl",
            "--metrics",
            "run.prom",
            "--stats-json",
        ]))
        .unwrap();
        assert_eq!(cli.trace.as_deref(), Some("run.jsonl"));
        assert_eq!(cli.metrics.as_deref(), Some("run.prom"));
        assert!(cli.stats_json);
        assert!(!cli.stats);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&strs(&["--fuel"])).is_err());
        assert!(parse_args(&strs(&["--fuel", "many"])).is_err());
        assert!(parse_args(&strs(&["--frobnicate"])).is_err());
        assert!(parse_args(&strs(&["a", "b"])).is_err());
        assert!(parse_args(&strs(&["--trace"])).is_err());
        assert!(parse_args(&strs(&["--metrics"])).is_err());
        assert!(parse_args(&strs(&["--checkpoint"])).is_err());
        assert!(parse_args(&strs(&["--checkpoint-every"])).is_err());
        assert!(parse_args(&strs(&["--checkpoint-every", "often"])).is_err());
        // 0 is rejected with a pointer at the explicit spelling …
        let err = parse_args(&strs(&["--checkpoint-every", "0"])).unwrap_err();
        assert!(err.contains("trips"), "{err}");
        // … which parses to the trips-only cadence.
        let cli = parse_args(&strs(&["--checkpoint-every", "trips"])).unwrap();
        assert_eq!(cli.checkpoint_every, Some(0));
    }

    #[test]
    fn parses_checkpoint_flags() {
        let cli = parse_args(&strs(&[
            "--checkpoint",
            "ckpts",
            "--checkpoint-every",
            "16",
            "--resume",
            "run.itdb",
        ]))
        .unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("ckpts"));
        assert_eq!(cli.checkpoint_every, Some(16));
        assert!(cli.resume);
        assert_eq!(cli.script.as_deref(), Some("run.itdb"));
        let cli = parse_args(&[]).unwrap();
        assert!(cli.checkpoint.is_none());
        assert!(cli.checkpoint_every.is_none());
        assert!(!cli.resume);
    }

    #[test]
    fn defaults_are_unlimited() {
        let cli = parse_args(&[]).unwrap();
        assert_eq!(cli.limits.fuel, None);
        assert_eq!(cli.limits.timeout_ms, None);
        assert!(!cli.stats);
        assert!(!cli.stats_json);
        assert!(cli.trace.is_none());
        assert!(cli.metrics.is_none());
        assert!(cli.script.is_none());
    }
}
