//! `itdb` — an interactive shell for infinite temporal databases.
//!
//! ```text
//! cargo run -p itdb-cli --bin itdb              # interactive
//! cargo run -p itdb-cli --bin itdb -- script    # run a command file
//! ```
//!
//! Type `help` inside the shell for the command list; every surface of the
//! workspace is reachable: generalized relations, the deductive language,
//! first-order queries, Datalog1S and Templog.

mod shell;

use shell::{Shell, Step};
use std::io::{BufRead, Write};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = Shell::new();
    let stdout = std::io::stdout();

    if let Some(path) = args.first() {
        // Script mode: run the file, print non-empty outputs.
        let text = std::fs::read_to_string(path)?;
        let mut out = stdout.lock();
        for line in text.lines() {
            match shell.execute(line) {
                Step::Continue(s) if s.is_empty() => {}
                Step::Continue(s) => writeln!(out, "{s}")?,
                Step::Quit => break,
            }
        }
        return Ok(());
    }

    // Interactive mode.
    let stdin = std::io::stdin();
    let mut out = stdout.lock();
    writeln!(out, "itdb — infinite temporal databases (type `help`)")?;
    write!(out, "> ")?;
    out.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        match shell.execute(&line) {
            Step::Continue(s) => {
                if !s.is_empty() {
                    writeln!(out, "{s}")?;
                }
            }
            Step::Quit => break,
        }
        write!(out, "> ")?;
        out.flush()?;
    }
    Ok(())
}
