//! # itdb — infinite temporal databases with linear repeating points
//!
//! A complete implementation of *“On the Representation of Infinite
//! Temporal Data and Queries”* (Baudinet, Niézette & Wolper, PODS 1991)
//! and the systems it builds on:
//!
//! * [`lrp`] — generalized databases with linear repeating points and
//!   difference constraints \[KSW90\], with a closed relational algebra;
//! * [`core`] — the paper's temporal deductive language (Datalog over ℤ
//!   with multiple temporal arguments) and its closed-form bottom-up
//!   evaluation with free-extension / constraint safety (§4);
//! * [`datalog1s`] — the Chomicki–Imieliński one-temporal-argument
//!   language with eventual-periodicity detection (§2.2);
//! * [`templog`] — Templog (○/□/◇ logic programming) and its reduction to
//!   Datalog1S (§2.3);
//! * [`omega`] — the ω-automata toolkit behind the expressiveness results
//!   of §3 (finite-acceptance automata, Büchi automata, LTL);
//! * [`foquery`] — the \[KSW90\] first-order query language evaluated in
//!   closed form (star-free query expressiveness).
//!
//! Start with the examples: `cargo run --example quickstart`.

#![warn(missing_docs)]

pub use itdb_core as core;
pub use itdb_datalog1s as datalog1s;
pub use itdb_foquery as foquery;
pub use itdb_lrp as lrp;
pub use itdb_omega as omega;
pub use itdb_templog as templog;
